//! [`Slab<T>`]: owned-or-mapped contiguous typed storage.

use std::ops::Deref;
use std::sync::Arc;

use crate::Mapping;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
    impl Sealed for super::Interval {}
}

/// A closed interval `[lo, hi]` of doubles — the 16-byte plain-old-data
/// element type behind interval-weighted slabs. The arena crate only
/// defines the storage layout (two consecutive little-endian `f64`s, so a
/// mapped section can be reinterpreted in place); the outward-rounded
/// arithmetic lives in `mdl-linalg`'s `Weight` machinery.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The degenerate point interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval is a single point (`lo == hi` bitwise-safe
    /// comparison is unnecessary: equal values suffice for width zero).
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl Pod for Interval {
    const WIDTH: usize = 16;

    fn write_le(values: &[Self], out: &mut Vec<u8>) {
        out.reserve(values.len() * 16);
        for v in values {
            out.extend_from_slice(&v.lo.to_le_bytes());
            out.extend_from_slice(&v.hi.to_le_bytes());
        }
    }

    fn read_le(bytes: &[u8]) -> Vec<Self> {
        debug_assert_eq!(bytes.len() % 16, 0);
        bytes
            .chunks_exact(16)
            .map(|c| Interval {
                lo: f64::from_le_bytes(c[..8].try_into().expect("exact chunk")),
                hi: f64::from_le_bytes(c[8..].try_into().expect("exact chunk")),
            })
            .collect()
    }
}

/// Plain-old-data element types a [`Slab`] can hold: fixed-width numeric
/// types whose little-endian byte image is their storage format. Sealed —
/// exactly `u32`, `u64`, `f64` and [`Interval`].
pub trait Pod: sealed::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Element width in bytes.
    const WIDTH: usize;

    /// Appends the slice's little-endian byte image to `out`.
    fn write_le(values: &[Self], out: &mut Vec<u8>);

    /// Decodes a little-endian byte image (length a multiple of
    /// [`Pod::WIDTH`]) into owned values.
    fn read_le(bytes: &[u8]) -> Vec<Self>;
}

macro_rules! impl_pod {
    ($t:ty, $w:expr) => {
        impl Pod for $t {
            const WIDTH: usize = $w;

            fn write_le(values: &[Self], out: &mut Vec<u8>) {
                if cfg!(target_endian = "little") {
                    // One memcpy: the native image is the wire image.
                    out.reserve(values.len() * $w);
                    for v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                } else {
                    for v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }

            fn read_le(bytes: &[u8]) -> Vec<Self> {
                debug_assert_eq!(bytes.len() % $w, 0);
                bytes
                    .chunks_exact($w)
                    .map(|c| <$t>::from_le_bytes(c.try_into().expect("exact chunk")))
                    .collect()
            }
        }
    };
}

impl_pod!(u32, 4);
impl_pod!(u64, 8);
impl_pod!(f64, 8);

/// Contiguous typed storage that is either owned or a zero-copy view
/// into a shared read-only [`Mapping`]. Derefs to `&[T]` either way, so
/// consumers index it exactly like a `Vec<T>`.
pub struct Slab<T: Pod>(Repr<T>);

enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        /// Keeps the region alive for as long as the view exists.
        region: Arc<Mapping>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: the mapped variant points into an immutable `MAP_SHARED`
// read-only region owned (shared) via the Arc; see `Mapping`'s
// `Send`/`Sync` justification.
unsafe impl<T: Pod> Send for Slab<T> {}
unsafe impl<T: Pod> Sync for Slab<T> {}

impl<T: Pod> Slab<T> {
    /// An empty owned slab.
    pub fn new() -> Self {
        Slab(Repr::Owned(Vec::new()))
    }

    /// Wraps a byte range of `region` as a typed view **without
    /// copying**.
    ///
    /// `bytes` must be a subslice of `region.bytes()` (checked), with a
    /// length that is a multiple of the element width (checked) and a
    /// properly aligned start (checked). Only meaningful on little-endian
    /// targets — callers gate on endianness and fall back to
    /// [`Slab::from`] + [`Pod::read_le`] otherwise.
    ///
    /// Returns `None` when any check fails; this is a fallback signal,
    /// not an error.
    pub fn from_mapped(region: &Arc<Mapping>, bytes: &[u8]) -> Option<Self> {
        if !cfg!(target_endian = "little") {
            return None;
        }
        let region_range = region.bytes().as_ptr_range();
        let range = bytes.as_ptr_range();
        let contained = range.start >= region_range.start && range.end <= region_range.end;
        if !contained || bytes.len() % T::WIDTH != 0 {
            return None;
        }
        let ptr = bytes.as_ptr();
        if (ptr as usize) % std::mem::align_of::<T>() != 0 {
            return None;
        }
        Some(Slab(Repr::Mapped {
            region: Arc::clone(region),
            ptr: ptr.cast::<T>(),
            len: bytes.len() / T::WIDTH,
        }))
    }

    /// Whether the slab borrows a mapping (as opposed to owning a `Vec`).
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }

    /// The contents as an owned `Vec`, copying only if mapped.
    pub fn into_vec(self) -> Vec<T> {
        match self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => self.as_slice().to_vec(),
        }
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Owned(v) => v.as_slice(),
            Repr::Mapped { ptr, len, .. } => {
                // SAFETY: constructed only by `from_mapped`, which checked
                // containment, alignment and width; the region is alive
                // via the Arc.
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts(*ptr, *len)
                }
            }
        }
    }

    /// Heap bytes owned by this slab (zero when mapped — the mapping is
    /// shared and accounted once at the store layer).
    pub fn owned_bytes(&self) -> usize {
        match &self.0 {
            Repr::Owned(v) => v.len() * T::WIDTH,
            Repr::Mapped { .. } => 0,
        }
    }
}

impl<T: Pod> Deref for Slab<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Slab(Repr::Owned(v))
    }
}

impl<T: Pod> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T: Pod> Clone for Slab<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Owned(v) => Slab(Repr::Owned(v.clone())),
            Repr::Mapped { region, ptr, len } => Slab(Repr::Mapped {
                region: Arc::clone(region),
                ptr: *ptr,
                len: *len,
            }),
        }
    }
}

impl<T: Pod> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("mapped", &self.is_mapped())
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Pod> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_slab_behaves_like_a_vec() {
        let s: Slab<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_mapped());
        assert_eq!(s.owned_bytes(), 12);
        let t = s.clone();
        assert_eq!(s, t);
        assert_eq!(t.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn interval_pod_round_trips_le_and_maps() {
        assert_eq!(std::mem::size_of::<Interval>(), 16);
        assert_eq!(std::mem::align_of::<Interval>(), 8);
        let vals = [
            Interval { lo: 1.5, hi: 2.5 },
            Interval::point(-0.0),
            Interval {
                lo: f64::MIN_POSITIVE,
                hi: f64::MAX,
            },
        ];
        let mut bytes = Vec::new();
        Interval::write_le(&vals, &mut bytes);
        assert_eq!(bytes.len(), 48);
        let back = Interval::read_le(&bytes);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
        assert!(Interval::point(3.0).is_point());
        assert_eq!(Interval { lo: 1.0, hi: 4.0 }.width(), 3.0);
    }

    #[test]
    fn pod_round_trips_le() {
        let vals = [1.5f64, -0.0, f64::MIN_POSITIVE];
        let mut bytes = Vec::new();
        f64::write_le(&vals, &mut bytes);
        assert_eq!(bytes.len(), 24);
        let back = f64::read_le(&bytes);
        assert_eq!(back.len(), 3);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[cfg(unix)]
    #[test]
    fn mapped_slab_views_file_bytes() {
        let path = std::env::temp_dir().join(format!("mdl-arena-slab-{}", std::process::id()));
        let mut bytes = Vec::new();
        u64::write_le(&[7, 8, 9], &mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let region = Arc::new(Mapping::open(&path).unwrap());
        let slab = Slab::<u64>::from_mapped(&region, region.bytes()).unwrap();
        assert!(slab.is_mapped());
        assert_eq!(&slab[..], &[7, 8, 9]);
        assert_eq!(slab.owned_bytes(), 0);
        // A clone shares the region; dropping the original keeps it valid.
        let keep = slab.clone();
        drop(slab);
        drop(region);
        assert_eq!(&keep[..], &[7, 8, 9]);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn from_mapped_rejects_foreign_and_misaligned_slices() {
        let path = std::env::temp_dir().join(format!("mdl-arena-slab2-{}", std::process::id()));
        std::fs::write(&path, vec![0u8; 32]).unwrap();
        let region = Arc::new(Mapping::open(&path).unwrap());
        let foreign = vec![0u8; 16];
        assert!(Slab::<u32>::from_mapped(&region, &foreign).is_none());
        // Length not a multiple of the width.
        assert!(Slab::<u64>::from_mapped(&region, &region.bytes()[..12]).is_none());
        // Misaligned start (mappings are page-aligned, +1 is odd).
        assert!(Slab::<u32>::from_mapped(&region, &region.bytes()[1..17]).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
