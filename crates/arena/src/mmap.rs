//! Read-only whole-file memory mappings without a `libc` dependency.

use crate::ArenaError;

/// A read-only `mmap(2)` of an entire file.
///
/// The mapping is page-aligned (the kernel guarantees it), shared
/// (`MAP_SHARED`) and read-only (`PROT_READ`); it is unmapped on drop.
/// Share it across threads and consumers via `Arc<Mapping>` — the slabs
/// built over a mapping hold such an `Arc`, so the region outlives every
/// view into it.
///
/// On non-Unix platforms [`Mapping::open`] returns
/// [`ArenaError::Unsupported`]; callers fall back to copy-decoding.
#[derive(Debug)]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable for the lifetime of the mapping (the
// file is opened read-only, mapped PROT_READ, and the store never
// truncates or rewrites a published artifact in place — replacement goes
// through rename(2), which leaves the mapped inode untouched). Shared
// read-only memory is safe to access from any thread.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps the file at `path` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// [`ArenaError::Io`] when the file cannot be opened, is empty, or
    /// the mapping fails; [`ArenaError::Unsupported`] off Unix.
    pub fn open(path: &std::path::Path) -> Result<Mapping, ArenaError> {
        imp::open(path)
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` readable bytes for the lifetime
        // of `self` (see `Send`/`Sync` justification above).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful open).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        imp::unmap(self.ptr, self.len);
    }
}

#[cfg(unix)]
mod imp {
    //! The raw mmap binding: `mmap(2)`/`munmap(2)` are in every
    //! Linux/macOS libc that std already links; no crate dependency
    //! needed. The file descriptor comes from `std::fs::File`, so only
    //! the two mapping calls are foreign.
    #![allow(unsafe_code)]

    use std::os::unix::io::AsRawFd;

    use super::Mapping;
    use crate::ArenaError;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    pub fn open(path: &std::path::Path) -> Result<Mapping, ArenaError> {
        let io = |e: std::io::Error| ArenaError::Io(format!("{}: {e}", path.display()));
        let file = std::fs::File::open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        if len == 0 {
            return Err(ArenaError::Io(format!("{}: empty file", path.display())));
        }
        let len = usize::try_from(len).map_err(|_| {
            ArenaError::Io(format!("{}: file exceeds address space", path.display()))
        })?;
        // SAFETY: fd is a valid open descriptor; len is non-zero; a
        // read-only shared mapping of a regular file has no aliasing
        // hazards. MAP_FAILED is (usize::MAX as *mut u8).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(ArenaError::Io(format!("{}: mmap failed", path.display())));
        }
        // The descriptor can close now: the mapping keeps the inode alive.
        drop(file);
        Ok(Mapping { ptr, len })
    }

    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned; unmapping
        // once on drop cannot race any access (drop requires exclusive
        // ownership of the last reference).
        unsafe {
            munmap(ptr as *mut u8, len);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Mapping;
    use crate::ArenaError;

    pub fn open(_path: &std::path::Path) -> Result<Mapping, ArenaError> {
        Err(ArenaError::Unsupported(
            "mmap is only wired up on Unix; use the copy-decode path".into(),
        ))
    }

    pub fn unmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn maps_whole_file_and_reads_back() {
        let path = std::env::temp_dir().join(format!("mdl-arena-mmap-{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let m = Mapping::open(&path).unwrap();
        assert_eq!(m.bytes(), b"hello mapping");
        assert_eq!(m.len(), 13);
        assert!(!m.is_empty());
        drop(m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_and_empty_files_error() {
        let missing = std::path::Path::new("/nonexistent/mdl-arena-test");
        assert!(matches!(Mapping::open(missing), Err(ArenaError::Io(_))));
        let path = std::env::temp_dir().join(format!("mdl-arena-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(Mapping::open(&path), Err(ArenaError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }
}
