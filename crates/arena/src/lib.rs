//! Index-based arena primitives shared by `mdl-mdd`, `mdl-md` and
//! `mdl-store`.
//!
//! The decision-diagram crates store their nodes as **typed slabs**:
//! contiguous `u32`/`u64`/`f64` arrays, one per level, addressed by node
//! index instead of by pointer. This crate provides the three pieces that
//! make those slabs persistable without a decode step:
//!
//! * [`Slab<T>`] — a contiguous array that is either owned (a `Vec<T>`)
//!   or a zero-copy view into an [`Mapping`] (an `mmap(2)`-backed
//!   read-only region). Both deref to `&[T]`; consumers cannot tell the
//!   difference.
//! * [`Mapping`] — a read-only memory mapping of a whole file, created
//!   with raw `libc`-free FFI (the same idiom as `mdl-serve`'s signal
//!   handler). Dropped mappings are unmapped; clones share the region via
//!   `Arc`.
//! * [`ImageWriter`] / [`ImageView`] — a tiny fixed-endian section
//!   format: a directory of `(tag, element kind, count, offset)` entries
//!   followed by 8-byte-aligned section bodies. The payload written by
//!   [`ImageWriter`] *is* the in-memory slab layout (little-endian), so a
//!   little-endian reader can borrow sections in place; any reader can
//!   copy-decode them.
//!
//! All `unsafe` in the workspace's arena path is confined to this crate
//! (the mapping FFI and the mapped-slab views); `mdl-mdd` and `mdl-md`
//! keep `#![forbid(unsafe_code)]`.
//!
//! # Safety argument for mapped slabs
//!
//! A mapped slab is only ever constructed over a region that (a) was
//! mapped `PROT_READ` / `MAP_SHARED` from a file the store has already
//! checksum-validated, (b) is kept alive by the `Arc<Mapping>` stored in
//! the slab itself, and (c) is verified to *contain* the requested byte
//! range and to be properly aligned for the element type. The store's
//! write discipline (temp file + `rename(2)`, never in-place truncation)
//! means the mapped inode's bytes are immutable for the lifetime of the
//! mapping. See DESIGN.md §17 for the full argument.

#![deny(missing_docs)]

mod image;
mod mmap;
mod slab;

pub use image::{ImageView, ImageWriter, SectionElem, SlabSource};
pub use mmap::Mapping;
pub use slab::{Interval, Pod, Slab};

use std::fmt;

/// Errors from arena image parsing and mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArenaError {
    /// The image payload violates the section-directory layout.
    Layout(String),
    /// A requested section tag is absent from the image.
    MissingSection(u32),
    /// A section holds a different element kind than requested.
    WrongElem {
        /// The section tag.
        tag: u32,
        /// Element kind found in the directory.
        found: SectionElem,
        /// Element kind the caller asked for.
        expected: SectionElem,
    },
    /// Memory mapping is unavailable or failed on this platform.
    Unsupported(String),
    /// An I/O failure while opening or mapping a file.
    Io(String),
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Layout(detail) => write!(f, "malformed arena image: {detail}"),
            ArenaError::MissingSection(tag) => write!(f, "arena image is missing section {tag}"),
            ArenaError::WrongElem {
                tag,
                found,
                expected,
            } => write!(
                f,
                "arena image section {tag} holds {found:?} elements, expected {expected:?}"
            ),
            ArenaError::Unsupported(detail) => write!(f, "mapping unsupported: {detail}"),
            ArenaError::Io(detail) => write!(f, "mapping I/O failure: {detail}"),
        }
    }
}

impl std::error::Error for ArenaError {}
