//! The fixed-endian section format carried inside arena artifacts.
//!
//! An image is a flat byte payload laid out as:
//!
//! ```text
//! u64  section_count                     (little-endian, like all of it)
//! per section: u64 tag_and_elem          (tag in low 32 bits, elem in high 32)
//!              u64 count                 (element count, not bytes)
//!              u64 offset                (byte offset of the body, 8-aligned)
//! ... 8-aligned section bodies ...
//! ```
//!
//! Bodies are the little-endian element images back to back; because every
//! body starts 8-aligned and elements are 4 or 8 bytes wide, a
//! little-endian reader whose payload itself sits at an 8-aligned address
//! (the store guarantees this) can borrow each body in place as a typed
//! slice. Everything else copy-decodes.

use std::sync::Arc;

use crate::slab::{Pod, Slab};
use crate::{ArenaError, Mapping};

/// Element kind of a section, as recorded in the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionElem {
    /// 4-byte unsigned integers.
    U32,
    /// 8-byte unsigned integers.
    U64,
    /// 8-byte IEEE-754 doubles.
    F64,
    /// 16-byte `[lo, hi]` interval pairs (two consecutive doubles).
    Interval,
}

impl SectionElem {
    fn code(self) -> u32 {
        match self {
            SectionElem::U32 => 0,
            SectionElem::U64 => 1,
            SectionElem::F64 => 2,
            SectionElem::Interval => 3,
        }
    }

    fn from_code(code: u32) -> Option<SectionElem> {
        match code {
            0 => Some(SectionElem::U32),
            1 => Some(SectionElem::U64),
            2 => Some(SectionElem::F64),
            3 => Some(SectionElem::Interval),
            _ => None,
        }
    }

    fn width(self) -> usize {
        match self {
            SectionElem::U32 => 4,
            SectionElem::U64 | SectionElem::F64 => 8,
            SectionElem::Interval => 16,
        }
    }
}

/// How to materialize a section when reading an image.
#[derive(Clone, Copy)]
pub enum SlabSource<'a> {
    /// Copy the section bytes into an owned slab.
    Copy,
    /// Borrow the section in place from the given mapping when possible
    /// (little-endian target, aligned, contained); silently falls back to
    /// copying otherwise.
    Mapped(&'a Arc<Mapping>),
}

/// Accumulates typed sections and assembles the image payload.
#[derive(Default)]
pub struct ImageWriter {
    sections: Vec<(u32, SectionElem, u64, Vec<u8>)>,
}

impl ImageWriter {
    /// An empty writer.
    pub fn new() -> ImageWriter {
        ImageWriter::default()
    }

    /// Appends a `u32` section under `tag`.
    pub fn put_u32(&mut self, tag: u32, values: &[u32]) {
        self.put(tag, SectionElem::U32, values);
    }

    /// Appends a `u64` section under `tag`.
    pub fn put_u64(&mut self, tag: u32, values: &[u64]) {
        self.put(tag, SectionElem::U64, values);
    }

    /// Appends an `f64` section under `tag`.
    pub fn put_f64(&mut self, tag: u32, values: &[f64]) {
        self.put(tag, SectionElem::F64, values);
    }

    /// Appends an [`Interval`](crate::Interval) section under `tag`.
    pub fn put_interval(&mut self, tag: u32, values: &[crate::Interval]) {
        self.put(tag, SectionElem::Interval, values);
    }

    fn put<T: Pod>(&mut self, tag: u32, elem: SectionElem, values: &[T]) {
        debug_assert!(
            !self.sections.iter().any(|(t, ..)| *t == tag),
            "duplicate section tag {tag}"
        );
        let mut bytes = Vec::with_capacity(values.len() * T::WIDTH);
        T::write_le(values, &mut bytes);
        self.sections.push((tag, elem, values.len() as u64, bytes));
    }

    /// Assembles the payload: directory first, then 8-aligned bodies.
    pub fn finish(self) -> Vec<u8> {
        let dir_len = 8 + self.sections.len() * 24;
        let mut out = Vec::with_capacity(dir_len);
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        let mut offset = dir_len;
        for (tag, elem, count, bytes) in &self.sections {
            offset = (offset + 7) & !7;
            let tag_elem = u64::from(*tag) | (u64::from(elem.code()) << 32);
            out.extend_from_slice(&tag_elem.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            offset += bytes.len();
        }
        for (.., bytes) in &self.sections {
            while out.len() % 8 != 0 {
                out.push(0);
            }
            out.extend_from_slice(bytes);
        }
        out
    }
}

struct Section {
    tag: u32,
    elem: SectionElem,
    start: usize,
    len_bytes: usize,
}

/// A parsed, bounds-checked view over an image payload.
///
/// Borrows the payload bytes; section accessors produce [`Slab`]s that
/// either copy out of the payload or (when the payload lives inside a
/// [`Mapping`] and the caller passes [`SlabSource::Mapped`]) borrow it in
/// place.
pub struct ImageView<'a> {
    payload: &'a [u8],
    sections: Vec<Section>,
}

impl<'a> ImageView<'a> {
    /// Parses and validates the section directory of `payload`.
    ///
    /// # Errors
    ///
    /// [`ArenaError::Layout`] when the directory is truncated, a section
    /// overruns the payload, overlaps the directory, is misaligned, or
    /// declares an unknown element kind.
    pub fn parse(payload: &'a [u8]) -> Result<ImageView<'a>, ArenaError> {
        let err = |detail: String| ArenaError::Layout(detail);
        if payload.len() < 8 {
            return Err(err("payload shorter than the section count".into()));
        }
        let count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let count = usize::try_from(count).map_err(|_| err("section count overflow".into()))?;
        let dir_len = 8usize
            .checked_add(
                count
                    .checked_mul(24)
                    .ok_or_else(|| err("directory overflow".into()))?,
            )
            .ok_or_else(|| err("directory overflow".into()))?;
        if payload.len() < dir_len {
            return Err(err(format!(
                "directory of {count} sections needs {dir_len} bytes, payload has {}",
                payload.len()
            )));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let base = 8 + i * 24;
            let word = |j: usize| {
                u64::from_le_bytes(
                    payload[base + 8 * j..base + 8 * (j + 1)]
                        .try_into()
                        .expect("8 bytes"),
                )
            };
            let tag_elem = word(0);
            let tag = tag_elem as u32;
            let elem = SectionElem::from_code((tag_elem >> 32) as u32).ok_or_else(|| {
                err(format!(
                    "section {tag}: unknown element code {}",
                    tag_elem >> 32
                ))
            })?;
            let n = usize::try_from(word(1))
                .map_err(|_| err(format!("section {tag}: count overflow")))?;
            let start = usize::try_from(word(2))
                .map_err(|_| err(format!("section {tag}: offset overflow")))?;
            let len_bytes = n
                .checked_mul(elem.width())
                .ok_or_else(|| err(format!("section {tag}: byte length overflow")))?;
            let end = start
                .checked_add(len_bytes)
                .ok_or_else(|| err(format!("section {tag}: extent overflow")))?;
            if start < dir_len {
                return Err(err(format!("section {tag}: body overlaps the directory")));
            }
            if start % 8 != 0 {
                return Err(err(format!("section {tag}: body not 8-aligned")));
            }
            if end > payload.len() {
                return Err(err(format!(
                    "section {tag}: extends to byte {end}, payload has {}",
                    payload.len()
                )));
            }
            if sections.iter().any(|s: &Section| s.tag == tag) {
                return Err(err(format!("duplicate section tag {tag}")));
            }
            sections.push(Section {
                tag,
                elem,
                start,
                len_bytes,
            });
        }
        Ok(ImageView { payload, sections })
    }

    /// Whether a section with `tag` exists.
    pub fn has(&self, tag: u32) -> bool {
        self.sections.iter().any(|s| s.tag == tag)
    }

    fn section(&self, tag: u32, expected: SectionElem) -> Result<&[u8], ArenaError> {
        let s = self
            .sections
            .iter()
            .find(|s| s.tag == tag)
            .ok_or(ArenaError::MissingSection(tag))?;
        if s.elem != expected {
            return Err(ArenaError::WrongElem {
                tag,
                found: s.elem,
                expected,
            });
        }
        Ok(&self.payload[s.start..s.start + s.len_bytes])
    }

    fn slab<T: Pod>(
        &self,
        tag: u32,
        elem: SectionElem,
        source: SlabSource<'_>,
    ) -> Result<Slab<T>, ArenaError> {
        let bytes = self.section(tag, elem)?;
        if let SlabSource::Mapped(region) = source {
            if let Some(slab) = Slab::from_mapped(region, bytes) {
                return Ok(slab);
            }
        }
        Ok(Slab::from(T::read_le(bytes)))
    }

    /// Materializes a `u32` section as a slab.
    ///
    /// # Errors
    ///
    /// [`ArenaError::MissingSection`] / [`ArenaError::WrongElem`].
    pub fn slab_u32(&self, tag: u32, source: SlabSource<'_>) -> Result<Slab<u32>, ArenaError> {
        self.slab(tag, SectionElem::U32, source)
    }

    /// Materializes a `u64` section as a slab.
    ///
    /// # Errors
    ///
    /// [`ArenaError::MissingSection`] / [`ArenaError::WrongElem`].
    pub fn slab_u64(&self, tag: u32, source: SlabSource<'_>) -> Result<Slab<u64>, ArenaError> {
        self.slab(tag, SectionElem::U64, source)
    }

    /// Materializes an `f64` section as a slab.
    ///
    /// # Errors
    ///
    /// [`ArenaError::MissingSection`] / [`ArenaError::WrongElem`].
    pub fn slab_f64(&self, tag: u32, source: SlabSource<'_>) -> Result<Slab<f64>, ArenaError> {
        self.slab(tag, SectionElem::F64, source)
    }

    /// Materializes an [`Interval`](crate::Interval) section as a slab.
    ///
    /// # Errors
    ///
    /// [`ArenaError::MissingSection`] / [`ArenaError::WrongElem`].
    pub fn slab_interval(
        &self,
        tag: u32,
        source: SlabSource<'_>,
    ) -> Result<Slab<crate::Interval>, ArenaError> {
        self.slab(tag, SectionElem::Interval, source)
    }

    /// Copies out a small `u64` section as a plain `Vec` (meta sections).
    ///
    /// # Errors
    ///
    /// [`ArenaError::MissingSection`] / [`ArenaError::WrongElem`].
    pub fn vec_u64(&self, tag: u32) -> Result<Vec<u64>, ArenaError> {
        Ok(u64::read_le(self.section(tag, SectionElem::U64)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_sections() {
        let mut w = ImageWriter::new();
        w.put_u64(0, &[3, 1, 4]);
        w.put_u32(16, &[10, 20, 30, 40, 50]);
        w.put_f64(17, &[0.5, -2.25]);
        let payload = w.finish();

        let view = ImageView::parse(&payload).unwrap();
        assert!(view.has(0) && view.has(16) && view.has(17));
        assert!(!view.has(99));
        assert_eq!(view.vec_u64(0).unwrap(), vec![3, 1, 4]);
        assert_eq!(
            &view.slab_u32(16, SlabSource::Copy).unwrap()[..],
            &[10, 20, 30, 40, 50]
        );
        assert_eq!(
            &view.slab_f64(17, SlabSource::Copy).unwrap()[..],
            &[0.5, -2.25]
        );
    }

    #[test]
    fn interval_sections_round_trip_and_map() {
        use crate::Interval;
        let vals = [Interval { lo: 0.25, hi: 0.5 }, Interval::point(7.0)];
        let mut w = ImageWriter::new();
        w.put_interval(9, &vals);
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        assert_eq!(&view.slab_interval(9, SlabSource::Copy).unwrap()[..], &vals);
        // Elem kinds are enforced across the f64/interval boundary.
        assert!(matches!(
            view.slab_f64(9, SlabSource::Copy),
            Err(ArenaError::WrongElem { tag: 9, .. })
        ));

        #[cfg(unix)]
        {
            use std::sync::Arc;
            let path =
                std::env::temp_dir().join(format!("mdl-arena-interval-{}", std::process::id()));
            std::fs::write(&path, &payload).unwrap();
            let region = Arc::new(Mapping::open(&path).unwrap());
            let view = ImageView::parse(region.bytes()).unwrap();
            let slab = view.slab_interval(9, SlabSource::Mapped(&region)).unwrap();
            assert!(
                slab.is_mapped(),
                "16-byte elems borrow from 8-aligned bodies"
            );
            assert_eq!(&slab[..], &vals);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn empty_image_and_empty_sections_parse() {
        let payload = ImageWriter::new().finish();
        let view = ImageView::parse(&payload).unwrap();
        assert!(!view.has(0));

        let mut w = ImageWriter::new();
        w.put_u32(1, &[]);
        w.put_f64(2, &[]);
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        assert!(view.slab_u32(1, SlabSource::Copy).unwrap().is_empty());
        assert!(view.slab_f64(2, SlabSource::Copy).unwrap().is_empty());
    }

    #[test]
    fn wrong_elem_and_missing_section_error() {
        let mut w = ImageWriter::new();
        w.put_u32(5, &[1]);
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        assert!(matches!(
            view.slab_f64(5, SlabSource::Copy),
            Err(ArenaError::WrongElem { tag: 5, .. })
        ));
        assert!(matches!(
            view.slab_u32(6, SlabSource::Copy),
            Err(ArenaError::MissingSection(6))
        ));
    }

    #[test]
    fn rejects_malformed_directories() {
        // Too short for the count word.
        assert!(ImageView::parse(&[0u8; 4]).is_err());
        // Claims one section but has no directory entry.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes());
        assert!(ImageView::parse(&p).is_err());
        // Valid image, then truncate a body byte.
        let mut w = ImageWriter::new();
        w.put_u64(0, &[1, 2]);
        let payload = w.finish();
        assert!(ImageView::parse(&payload[..payload.len() - 1]).is_err());
        // Corrupt the element code.
        let mut bad = payload.clone();
        bad[8 + 4] = 0x7f;
        assert!(ImageView::parse(&bad).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mapped_source_borrows_in_place() {
        use std::sync::Arc;

        let mut w = ImageWriter::new();
        w.put_u32(1, &[11, 22, 33]);
        w.put_f64(2, &[1.0, 2.0, 3.0, 4.0]);
        let payload = w.finish();
        let path = std::env::temp_dir().join(format!("mdl-arena-image-{}", std::process::id()));
        std::fs::write(&path, &payload).unwrap();
        let region = Arc::new(Mapping::open(&path).unwrap());
        let view = ImageView::parse(region.bytes()).unwrap();
        let s1 = view.slab_u32(1, SlabSource::Mapped(&region)).unwrap();
        let s2 = view.slab_f64(2, SlabSource::Mapped(&region)).unwrap();
        assert!(s1.is_mapped() && s2.is_mapped());
        assert_eq!(&s1[..], &[11, 22, 33]);
        assert_eq!(&s2[..], &[1.0, 2.0, 3.0, 4.0]);
        drop(view);
        drop(region);
        // Slabs keep the mapping alive on their own.
        assert_eq!(&s1[..], &[11, 22, 33]);
        let _ = std::fs::remove_file(&path);
    }
}
