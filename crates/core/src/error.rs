use std::fmt;

/// Errors from compositional MD lumping.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A matrix-diagram operation failed.
    Md(mdl_md::MdError),
    /// Quotienting the reachable-state MDD failed (should not happen: the
    /// computed partitions are MDD-compatible by construction).
    Quotient(mdl_mdd::QuotientError),
    /// A CTMC/MRP operation failed.
    Ctmc(mdl_ctmc::CtmcError),
    /// A decomposable vector was malformed.
    Decomposable {
        /// What went wrong.
        reason: String,
    },
    /// The operation requires a product-form (`Combiner::Product`) vector.
    NotProductForm {
        /// Which vector was not product-form.
        what: &'static str,
    },
    /// A custom combiner cannot be lumped symbolically.
    CustomCombiner {
        /// Which vector had the custom combiner.
        what: &'static str,
    },
    /// Shape mismatch between components of an [`MdMrp`](crate::MdMrp).
    ShapeMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// A compute budget expired during a core-level phase (e.g. per-level
    /// lumping). Budget failures inside solvers or MD compilation arrive
    /// wrapped as [`CoreError::Ctmc`] / [`CoreError::Md`] instead.
    Interrupted {
        /// Which phase was interrupted (e.g. `"lump.level"`).
        phase: &'static str,
        /// Why the work was cut short.
        reason: mdl_obs::BudgetExceeded,
    },
    /// The pipeline's artifact store failed (I/O on save, typically).
    /// Unreadable *cached* artifacts never surface here — the pipeline
    /// treats them as cache misses and recomputes.
    Store(mdl_store::StoreError),
    /// A [`Pipeline::build`](crate::Pipeline::build) builder closure
    /// failed for a reason outside this crate (e.g. a malformed model
    /// description). The detail is the original error's full message, so
    /// `Display` passes it through unchanged.
    Build {
        /// The original error, stringified.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Md(e) => write!(f, "matrix diagram error: {e}"),
            CoreError::Quotient(e) => write!(f, "MDD quotient error: {e}"),
            CoreError::Ctmc(e) => write!(f, "CTMC error: {e}"),
            CoreError::Decomposable { reason } => write!(f, "decomposable vector: {reason}"),
            CoreError::NotProductForm { what } => {
                write!(f, "{what} must use Combiner::Product for this operation")
            }
            CoreError::CustomCombiner { what } => {
                write!(
                    f,
                    "{what} uses a custom combiner, which cannot be lumped symbolically"
                )
            }
            CoreError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            CoreError::Interrupted { phase, reason } => {
                write!(f, "interrupted during {phase}: {reason}")
            }
            CoreError::Store(e) => write!(f, "artifact store error: {e}"),
            CoreError::Build { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Md(e) => Some(e),
            CoreError::Quotient(e) => Some(e),
            CoreError::Ctmc(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdl_md::MdError> for CoreError {
    fn from(e: mdl_md::MdError) -> Self {
        CoreError::Md(e)
    }
}

impl From<mdl_mdd::QuotientError> for CoreError {
    fn from(e: mdl_mdd::QuotientError) -> Self {
        CoreError::Quotient(e)
    }
}

impl From<mdl_ctmc::CtmcError> for CoreError {
    fn from(e: mdl_ctmc::CtmcError) -> Self {
        CoreError::Ctmc(e)
    }
}

impl From<mdl_store::StoreError> for CoreError {
    fn from(e: mdl_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let md = CoreError::from(mdl_md::MdError::InvalidShape);
        assert!(md.to_string().contains("matrix diagram"));
        assert!(md.source().is_some());

        let ctmc = CoreError::from(mdl_ctmc::CtmcError::AbsorbingState { state: 1 });
        assert!(ctmc.to_string().contains("state 1"));

        let plain = CoreError::NotProductForm {
            what: "initial distribution",
        };
        assert!(plain.to_string().contains("Product"));
        assert!(plain.source().is_none());

        let custom = CoreError::CustomCombiner { what: "reward" };
        assert!(custom.to_string().contains("custom combiner"));

        let interrupted = CoreError::Interrupted {
            phase: "lump.level",
            reason: mdl_obs::BudgetExceeded::Cancelled,
        };
        assert!(interrupted.to_string().contains("lump.level"));
        assert!(interrupted.to_string().contains("cancelled"));
    }
}
