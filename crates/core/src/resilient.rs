//! Resilient solving for symbolic MRPs: a fallback ladder over
//! `(method, kernel)` pairs.
//!
//! The flat ladder in `mdl-ctmc` varies only the iteration method; for a
//! matrix-diagram solve the *kernel* is a second failure axis — the
//! compiled program can blow the compile budget on a huge diagram, in
//! which case the recursive walk (no compile step) or the flat CSR
//! materialization (most battle-tested, most memory) still get an
//! answer. The default ladder degrades along both axes:
//! Jacobi/compiled → power/compiled → power/walk → power/flat-CSR.
//!
//! The compiled kernel and the flattened matrix are each built at most
//! once and shared across rungs, so falling back does not redo the
//! expensive preparation that already succeeded.

use std::sync::Arc;

use mdl_ctmc::{
    solve_ladder, AttemptOutcome, ResilientError, RunReport, Solution, SolverOptions,
    StationaryMethod, TransientOptions,
};
use mdl_linalg::CsrMatrix;
use mdl_md::CompiledMdMatrix;

use crate::mrp::{solve_stationary, MdMrp};
use crate::{CoreError, Result};

/// Which kernel a resilient rung iterates over — the kernel axis of the
/// fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelRung {
    /// Compiled flat block/arena program (fastest; the compile itself
    /// runs under the solve budget and can be interrupted).
    Compiled,
    /// Recursive MD×MDD walk — no compile step, serial, always
    /// available.
    Walk,
    /// Materialize the diagram as an explicit sparse CSR matrix. Highest
    /// memory, but the least machinery between the model and the solver.
    FlatCsr,
}

impl KernelRung {
    /// Lower-case label used in reports and obs events.
    pub fn label(self) -> &'static str {
        match self {
            KernelRung::Compiled => "compiled",
            KernelRung::Walk => "walk",
            KernelRung::FlatCsr => "flat-csr",
        }
    }
}

pub(crate) fn method_label(method: StationaryMethod) -> &'static str {
    match method {
        StationaryMethod::Power => "power",
        StationaryMethod::Jacobi => "jacobi",
    }
}

/// Ladder of `(method, kernel)` rungs for
/// [`MdMrp::solve_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct MdResilientOptions {
    /// Rungs to attempt, in order. Must be non-empty.
    pub ladder: Vec<(StationaryMethod, KernelRung)>,
    /// Base solver options; the `method` field is overridden per rung.
    pub options: SolverOptions,
    /// Worker threads for compiled-kernel products (`0` = one per
    /// hardware thread).
    pub threads: usize,
}

impl Default for MdResilientOptions {
    /// Degrades along both axes: Jacobi first on the compiled kernel,
    /// then power (guaranteed convergence), then the same method on ever
    /// simpler kernels.
    fn default() -> Self {
        MdResilientOptions {
            ladder: vec![
                (StationaryMethod::Jacobi, KernelRung::Compiled),
                (StationaryMethod::Power, KernelRung::Compiled),
                (StationaryMethod::Power, KernelRung::Walk),
                (StationaryMethod::Power, KernelRung::FlatCsr),
            ],
            options: SolverOptions::default(),
            threads: 1,
        }
    }
}

impl ResilientError for CoreError {
    fn outcome(&self) -> AttemptOutcome {
        match self {
            CoreError::Ctmc(e) => e.outcome(),
            CoreError::Md(mdl_md::MdError::Interrupted { .. }) => AttemptOutcome::Interrupted,
            CoreError::Interrupted { .. } => AttemptOutcome::Interrupted,
            _ => AttemptOutcome::Failed,
        }
    }

    fn progress(&self) -> Option<(usize, f64)> {
        match self {
            CoreError::Ctmc(e) => e.progress(),
            _ => None,
        }
    }
}

/// Kernels shared across ladder rungs: each expensive preparation runs
/// at most once even when several rungs use it. The compiled slot can be
/// pre-seeded with a kernel deserialized from the artifact store, in
/// which case no rung ever pays the compile.
#[derive(Default)]
pub(crate) struct KernelCache {
    compiled: Option<Arc<CompiledMdMatrix>>,
    flat: Option<CsrMatrix>,
}

impl KernelCache {
    pub(crate) fn seeded(prebuilt: Option<Arc<CompiledMdMatrix>>) -> Self {
        KernelCache {
            compiled: prebuilt,
            flat: None,
        }
    }

    fn compiled(
        &mut self,
        mrp: &MdMrp,
        threads: usize,
        budget: &mdl_obs::Budget,
    ) -> Result<&CompiledMdMatrix> {
        if self.compiled.is_none() {
            self.compiled = Some(Arc::new(CompiledMdMatrix::compile_budgeted(
                mrp.matrix(),
                threads,
                budget,
            )?));
        }
        Ok(self.compiled.as_deref().expect("just compiled"))
    }

    fn flat(&mut self, mrp: &MdMrp) -> &CsrMatrix {
        self.flat.get_or_insert_with(|| mrp.matrix().flatten())
    }
}

impl MdMrp {
    /// Computes the stationary distribution through a `(method, kernel)`
    /// fallback ladder: each rung is attempted in order until one
    /// converges; not-converged / diverged / interrupted errors fall
    /// through to the next rung, structural errors stop immediately.
    /// The compiled kernel (and the flattened matrix) are built at most
    /// once and reused across rungs.
    ///
    /// The [`RunReport`] records every attempt in both outcomes; on
    /// failure the error is the *last* attempt's.
    ///
    /// # Panics
    ///
    /// Panics if `options.ladder` is empty.
    pub fn solve_resilient(&self, options: &MdResilientOptions) -> (Result<Solution>, RunReport) {
        self.solve_resilient_with_kernel(options, None)
    }

    /// [`Self::solve_resilient`] with a pre-built compiled kernel (e.g.
    /// deserialized from the pipeline's artifact store): compiled rungs
    /// use it directly instead of compiling.
    pub fn solve_resilient_with_kernel(
        &self,
        options: &MdResilientOptions,
        prebuilt: Option<Arc<CompiledMdMatrix>>,
    ) -> (Result<Solution>, RunReport) {
        let mut cache = KernelCache::seeded(prebuilt);
        solve_ladder(
            &options.ladder,
            |(m, k)| (method_label(*m), Some(k.label())),
            |(m, k)| {
                let opts = SolverOptions {
                    method: *m,
                    ..options.options.clone()
                };
                match k {
                    KernelRung::Compiled => {
                        let kernel = cache.compiled(self, options.threads, &opts.budget)?;
                        solve_stationary(kernel, &opts)
                    }
                    KernelRung::Walk => solve_stationary(self.matrix(), &opts),
                    KernelRung::FlatCsr => solve_stationary(cache.flat(self), &opts),
                }
            },
        )
    }

    /// Computes the transient distribution at `t` through a kernel
    /// fallback ladder (the method is always uniformization, so only the
    /// kernel axis degrades). Semantics as for
    /// [`solve_resilient`](Self::solve_resilient).
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty.
    pub fn transient_resilient(
        &self,
        t: f64,
        options: &TransientOptions,
        rungs: &[KernelRung],
        threads: usize,
    ) -> (Result<Solution>, RunReport) {
        self.transient_resilient_with_kernel(t, options, rungs, threads, None)
    }

    /// [`Self::transient_resilient`] with a pre-built compiled kernel;
    /// semantics as for
    /// [`solve_resilient_with_kernel`](Self::solve_resilient_with_kernel).
    pub fn transient_resilient_with_kernel(
        &self,
        t: f64,
        options: &TransientOptions,
        rungs: &[KernelRung],
        threads: usize,
        prebuilt: Option<Arc<CompiledMdMatrix>>,
    ) -> (Result<Solution>, RunReport) {
        let initial = self.initial_vector();
        let mut cache = KernelCache::seeded(prebuilt);
        solve_ladder(
            rungs,
            |k| ("uniformization", Some(k.label())),
            |k| {
                let sol = match k {
                    KernelRung::Compiled => {
                        let kernel = cache.compiled(self, threads, &options.budget)?;
                        mdl_ctmc::transient_uniformization(kernel, &initial, t, options)
                    }
                    KernelRung::Walk => {
                        mdl_ctmc::transient_uniformization(self.matrix(), &initial, t, options)
                    }
                    KernelRung::FlatCsr => {
                        mdl_ctmc::transient_uniformization(cache.flat(self), &initial, t, options)
                    }
                };
                sol.map_err(CoreError::from)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{Combiner, DecomposableVector};
    use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn sample_mrp() -> MdMrp {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(2.0, vec![None, Some(cycle(2, 1.0))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap();
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 2], &[0, 0]).unwrap();
        MdMrp::new(m, reward, initial).unwrap()
    }

    #[test]
    fn default_ladder_converges_on_first_rung() {
        let mrp = sample_mrp();
        let (result, report) = mrp.solve_resilient(&MdResilientOptions::default());
        let sol = result.unwrap();
        assert_eq!(report.attempts.len(), 1);
        assert!(report.converged());
        assert_eq!(report.attempts[0].method, "jacobi");
        assert_eq!(report.attempts[0].kernel, Some("compiled"));
        let direct = mrp.stationary(&SolverOptions::default()).unwrap();
        assert!(
            mdl_linalg::vec_ops::max_abs_diff(&sol.probabilities, &direct.probabilities) < 1e-10
        );
    }

    #[test]
    fn every_kernel_rung_agrees() {
        let mrp = sample_mrp();
        let reference = mrp.stationary(&SolverOptions::default()).unwrap();
        for kernel in [KernelRung::Compiled, KernelRung::Walk, KernelRung::FlatCsr] {
            let opts = MdResilientOptions {
                ladder: vec![(StationaryMethod::Power, kernel)],
                ..Default::default()
            };
            let (result, report) = mrp.solve_resilient(&opts);
            let sol = result.unwrap();
            assert_eq!(report.attempts[0].kernel, Some(kernel.label()));
            assert!(
                mdl_linalg::vec_ops::max_abs_diff(&sol.probabilities, &reference.probabilities)
                    < 1e-9,
                "kernel {:?}",
                kernel
            );
        }
    }

    #[test]
    fn interrupted_compile_falls_back_to_walk() {
        // A zero node cap interrupts the compiled rung's compile (node
        // caps are enforced only by the MD compile, so the solver rungs
        // are untouched); the walk rung has no compile step and answers.
        let mrp = sample_mrp();
        let opts = MdResilientOptions {
            ladder: vec![
                (StationaryMethod::Power, KernelRung::Compiled),
                (StationaryMethod::Power, KernelRung::Walk),
            ],
            options: SolverOptions {
                budget: mdl_obs::Budget::unlimited().node_cap(0),
                ..SolverOptions::default()
            },
            threads: 1,
        };
        let (result, report) = mrp.solve_resilient(&opts);
        assert!(result.is_ok(), "{report:?}");
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(
            report.attempts[0].outcome,
            mdl_ctmc::AttemptOutcome::Interrupted
        );
        assert_eq!(report.attempts[1].kernel, Some("walk"));
        assert!(report.converged());
    }

    #[test]
    fn transient_kernel_ladder_agrees_with_direct() {
        let mrp = sample_mrp();
        let direct = mrp.transient(0.7, &TransientOptions::default()).unwrap();
        let (result, report) = mrp.transient_resilient(
            0.7,
            &TransientOptions::default(),
            &[KernelRung::Compiled, KernelRung::Walk],
            1,
        );
        let sol = result.unwrap();
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].method, "uniformization");
        assert_eq!(sol.probabilities, direct.probabilities);
    }

    #[test]
    fn seeded_kernel_is_used_and_bit_identical() {
        // With a pre-built kernel seeded, the compiled rung answers even
        // under a zero node cap (which would interrupt any fresh compile),
        // and the solution matches the unseeded run bit for bit.
        let mrp = sample_mrp();
        let (plain, _) = mrp.solve_resilient(&MdResilientOptions::default());
        let plain = plain.unwrap();

        let prebuilt = Arc::new(mrp.compile_matrix(1));
        let opts = MdResilientOptions {
            ladder: vec![(StationaryMethod::Jacobi, KernelRung::Compiled)],
            options: SolverOptions {
                budget: mdl_obs::Budget::unlimited().node_cap(0),
                ..SolverOptions::default()
            },
            threads: 1,
        };
        let (seeded, report) = mrp.solve_resilient_with_kernel(&opts, Some(prebuilt.clone()));
        let seeded = seeded.unwrap();
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(seeded.probabilities, plain.probabilities);

        let (direct, _) = mrp.transient_resilient(
            0.7,
            &TransientOptions::default(),
            &[KernelRung::Compiled],
            1,
        );
        let (tseeded, _) = mrp.transient_resilient_with_kernel(
            0.7,
            &TransientOptions {
                budget: mdl_obs::Budget::unlimited().node_cap(0),
                ..TransientOptions::default()
            },
            &[KernelRung::Compiled],
            1,
            Some(prebuilt),
        );
        assert_eq!(
            tseeded.unwrap().probabilities,
            direct.unwrap().probabilities
        );
    }

    #[test]
    fn core_error_classification() {
        use mdl_ctmc::ResilientError as _;
        let slow = CoreError::Ctmc(mdl_ctmc::CtmcError::NotConverged {
            iterations: 7,
            residual: 0.5,
        });
        assert_eq!(slow.outcome(), AttemptOutcome::NotConverged);
        assert!(slow.retryable());
        assert_eq!(slow.progress(), Some((7, 0.5)));

        let md = CoreError::Md(mdl_md::MdError::Interrupted {
            phase: "md.compile",
            nodes: 3,
            reason: mdl_obs::BudgetExceeded::Cancelled,
        });
        assert_eq!(md.outcome(), AttemptOutcome::Interrupted);
        assert!(md.retryable());

        let structural = CoreError::NotProductForm { what: "initial" };
        assert_eq!(structural.outcome(), AttemptOutcome::Failed);
        assert!(!structural.retryable());
    }
}
