use mdl_linalg::Tolerance;
use mdl_md::MdNode;
use mdl_obs::{Budget, BudgetExceeded, ThreadPool};
use mdl_partition::{comp_lumping, comp_lumping_fallible, Partition, RefinementStats};

use crate::lump::LumpKind;
use crate::splitter::{
    ExactMdSplitter, OrdinaryMdSplitter, SingleNodeExactSplitter, SingleNodeOrdinarySplitter,
};

/// Computes the coarsest refinement of `initial` satisfying the local
/// lumpability condition of Definition 3 for **all** nodes of one MD level
/// (the paper's `CompLumpingLevel`, Fig. 3a).
///
/// This implementation folds the per-node conditions into a single
/// refinement run whose key is the tuple of per-node formal sums — the
/// fixed point over nodes is reached implicitly because every class is
/// checked against every node's sums on each split. The paper-faithful
/// node-by-node iteration is available as
/// [`comp_lumping_level_per_node`]; both compute the same partition (a
/// property the test suite asserts).
///
/// Serial, unlimited-budget convenience wrapper around
/// [`comp_lumping_level_pooled`].
pub fn comp_lumping_level(
    nodes: &[MdNode],
    initial: Partition,
    kind: LumpKind,
    tolerance: Tolerance,
) -> (Partition, RefinementStats) {
    comp_lumping_level_pooled(
        nodes,
        initial,
        kind,
        tolerance,
        ThreadPool::serial(),
        &Budget::unlimited(),
    )
    .unwrap_or_else(|_| unreachable!("unlimited budgets never interrupt the key phase"))
}

/// [`comp_lumping_level`] with an explicit [`ThreadPool`] and [`Budget`]:
/// the formal-sum key computations fan out block-parallel over the pool
/// (bit-identical to serial for any worker count — see DESIGN.md §12),
/// and a limited budget is honored at block granularity.
///
/// # Errors
///
/// [`BudgetExceeded`] when `budget` expires (or a `lump.keys` failpoint
/// fires) during a key computation; the partial refinement is discarded.
pub fn comp_lumping_level_pooled(
    nodes: &[MdNode],
    initial: Partition,
    kind: LumpKind,
    tolerance: Tolerance,
    pool: ThreadPool,
    budget: &Budget,
) -> Result<(Partition, RefinementStats), BudgetExceeded> {
    let size = initial.num_states();
    let r = match kind {
        LumpKind::Ordinary => {
            let mut splitter =
                OrdinaryMdSplitter::with_pool(nodes, size, tolerance, pool, budget.clone());
            comp_lumping_fallible(initial, &mut splitter)?
        }
        LumpKind::Exact => {
            let mut splitter =
                ExactMdSplitter::with_pool(nodes, size, tolerance, pool, budget.clone());
            comp_lumping_fallible(initial, &mut splitter)?
        }
    };
    Ok((r.partition, r.stats))
}

/// The literal Fig. 3a loop: repeatedly applies single-node `CompLumping`
/// to every node of the level until the partition stabilizes.
///
/// Kept alongside [`comp_lumping_level`] as the reference implementation
/// and for the ablation benchmarks.
pub fn comp_lumping_level_per_node(
    nodes: &[MdNode],
    initial: Partition,
    kind: LumpKind,
    tolerance: Tolerance,
) -> (Partition, RefinementStats) {
    let mut partition = initial;
    let mut total = RefinementStats::default();
    loop {
        let before = partition.num_classes();
        for node in nodes {
            let result = match kind {
                LumpKind::Ordinary => {
                    let mut s = SingleNodeOrdinarySplitter::new(node, tolerance);
                    comp_lumping(partition, &mut s)
                }
                LumpKind::Exact => {
                    let mut s = SingleNodeExactSplitter::new(node, tolerance);
                    comp_lumping(partition, &mut s)
                }
            };
            partition = result.partition;
            total.splitters_processed += result.stats.splitters_processed;
            total.classes_split += result.stats.classes_split;
            total.keys_emitted += result.stats.keys_emitted;
        }
        if partition.num_classes() == before {
            return (partition, total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_md::{ChildId, KroneckerExpr, MdBuilder, SparseFactor, Term};

    /// Level-0 nodes over 4 states where 1 and 2 are symmetric, 3 differs.
    fn symmetric_level() -> mdl_md::Md {
        let mut f = SparseFactor::new(4);
        f.push(0, 1, 1.0);
        f.push(0, 2, 1.0);
        f.push(1, 0, 2.0);
        f.push(2, 0, 2.0);
        f.push(3, 0, 5.0);
        let mut expr = KroneckerExpr::new(vec![4, 2]);
        expr.add_term(1.0, vec![Some(f), None]);
        expr.to_md().unwrap()
    }

    #[test]
    fn combined_finds_symmetry() {
        let md = symmetric_level();
        let (p, _) = comp_lumping_level(
            &md.level_nodes(0),
            Partition::single_class(4),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        // Ordinary lumpability compares *aggregate* rows: states 0, 1 and 2
        // all emit total rate 2 into the class {0,1,2} and 0 into {3}, so
        // the coarsest partition merges all three; state 3 (rate 5) stays
        // apart.
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1) && p.same_class(1, 2));
        assert!(!p.same_class(1, 3));
    }

    #[test]
    fn per_node_matches_combined() {
        let md = symmetric_level();
        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let (a, _) = comp_lumping_level(
                &md.level_nodes(0),
                Partition::single_class(4),
                kind,
                Tolerance::Exact,
            );
            let (b, _) = comp_lumping_level_per_node(
                &md.level_nodes(0),
                Partition::single_class(4),
                kind,
                Tolerance::Exact,
            );
            assert_eq!(a, b, "kind {kind:?}");
        }
    }

    /// Builds a standalone level-0 node over 3 states with transitions
    /// 1→0 at `a` and 2→0 at `b`, referencing an identity child (which
    /// lands at index 0 in every such MD, keeping child ids comparable).
    fn make_node(a: f64, b: f64) -> MdNode {
        let mut builder = MdBuilder::new(vec![3, 2]).unwrap();
        let id = builder.intern_identity(1, ChildId::Terminal).unwrap();
        let n = builder
            .intern_node(
                0,
                vec![
                    (1, 0, vec![Term::new(a, ChildId::Node(id))]),
                    (2, 0, vec![Term::new(b, ChildId::Node(id))]),
                ],
            )
            .unwrap();
        let md = builder.finish(n).unwrap();
        md.node_ref(md.root()).to_node()
    }

    #[test]
    fn multiple_nodes_conjoin_conditions() {
        // Node A is symmetric in {1,2}; node B distinguishes them: with
        // both present the partition must separate 1 and 2 (Definition 3
        // quantifies over all nodes of the level).
        let node_a = make_node(1.0, 1.0);
        let node_b = make_node(1.0, 9.0);

        let (only_a, _) = comp_lumping_level(
            std::slice::from_ref(&node_a),
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert!(only_a.same_class(1, 2));

        let nodes = vec![node_a, node_b];
        let (both, _) = comp_lumping_level(
            &nodes,
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert!(!both.same_class(1, 2));
    }

    #[test]
    fn three_level_view_gives_same_local_partition() {
        // The reduction step of the paper's proofs: local lumping of level
        // l on the full MD coincides with local lumping of the focal level
        // of the 3-level merged view (merging below re-expands children,
        // but the focal level's coefficient structure survives because the
        // merge keeps nodes and their reference structure; merging above
        // does not touch the focal level at all).
        let mut w = SparseFactor::new(4);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        w.push(1, 2, 0.5);
        w.push(2, 1, 0.5);
        w.push(3, 0, 5.0);
        let mut expr = KroneckerExpr::new(vec![2, 4, 2]);
        expr.add_term(1.0, vec![Some(cycle2()), None, None]);
        expr.add_term(1.0, vec![None, Some(w), None]);
        expr.add_term(1.5, vec![None, None, Some(cycle2())]);
        let md = expr.to_md().unwrap();

        let focal = 1;
        let (direct, _) = comp_lumping_level(
            &md.level_nodes(focal),
            Partition::single_class(4),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );

        let view = md.three_level_view(focal).unwrap();
        let (viewed, _) = comp_lumping_level(
            &view.level_nodes(1),
            Partition::single_class(4),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert_eq!(direct, viewed);
        assert!(direct.same_class(1, 2));
        assert!(!direct.same_class(0, 1));
        assert!(!direct.same_class(1, 3));
    }

    fn cycle2() -> SparseFactor {
        let mut f = SparseFactor::new(2);
        f.push(0, 1, 3.0);
        f.push(1, 0, 3.0);
        f
    }

    #[test]
    fn initial_partition_limits_coarseness() {
        let md = symmetric_level();
        let init = Partition::from_classes(vec![vec![0, 3], vec![1], vec![2]]);
        let (p, _) = comp_lumping_level(
            &md.level_nodes(0),
            init,
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert!(!p.same_class(1, 2));
    }
}
