//! Correct measure computation on **exactly** lumped chains.
//!
//! The Theorem-2 quotient for exact lumping, `R̂(ĩ, j̃) = R(C_i, j)` for an
//! arbitrary `j ∈ C_j`, is *not* a state-transition rate matrix of a CTMC
//! whose diagonal can be reconstructed from its own row sums: the commuting
//! identity of exact lumpability is `V·Q = Q̂·V` (with `V` the class
//! indicator matrix), so the quotient evolves the **per-state** probability
//! vector `ν̂(C, t) = π_t(s ∈ C)` — well-defined because exact lumpability
//! keeps class-uniform distributions class-uniform — and its correct
//! diagonal uses the original exit rates `R(s, S)`, which Theorem 1(b)
//! guarantees are constant per class.
//!
//! [`LumpRequest`](crate::LumpRequest) runs therefore record, for
//! exact lumps, the representative exit rates alongside the quotient MD,
//! and this module exposes the measure computations that use them:
//!
//! * [`ExactMeasures::stationary_aggregated`] — class stationary
//!   probabilities `π(C)` (= `|C| · ν̂(C)` normalized);
//! * [`ExactMeasures::transient_aggregated`] — class transient
//!   probabilities at time `t` (requires the initial distribution to be
//!   class-uniform, which the exact initial partition enforces);
//! * expected-reward helpers on both.

use mdl_ctmc::{SolverOptions, TransientOptions};
use mdl_linalg::vec_ops;

use crate::lump::LumpResult;
use crate::{CoreError, Result};

/// Measure computation over an exactly lumped chain. Borrow one from
/// [`LumpResult::exact_measures`].
#[derive(Debug)]
pub struct ExactMeasures<'a> {
    result: &'a LumpResult,
    /// Exit rate `R(s, S)` of each class representative.
    exit_rates: &'a [f64],
}

impl<'a> ExactMeasures<'a> {
    pub(crate) fn new(result: &'a LumpResult, exit_rates: &'a [f64]) -> Self {
        ExactMeasures { result, exit_rates }
    }

    /// Number of tuples (original states) each lumped state aggregates —
    /// the global class sizes `|C|`.
    pub fn class_sizes(&self) -> Vec<u64> {
        self.result.class_sizes()
    }

    /// Class stationary probabilities `π(C)`: solves `ν̂ Q̂ = 0` with the
    /// correct diagonal, scales by class sizes and normalizes.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn stationary_aggregated(&self, options: &SolverOptions) -> Result<Vec<f64>> {
        let matrix = self.result.mrp.matrix();
        let sol = mdl_ctmc::stationary_power_with_exit_rates(matrix, self.exit_rates, options)?;
        let sizes = self.class_sizes();
        let mut agg: Vec<f64> = sol
            .probabilities
            .iter()
            .zip(&sizes)
            .map(|(&v, &c)| v * c as f64)
            .collect();
        let total = vec_ops::normalize_l1(&mut agg);
        if total <= 0.0 {
            return Err(CoreError::Decomposable {
                reason: "stationary solve produced a zero vector".into(),
            });
        }
        Ok(agg)
    }

    /// Class transient probabilities `π_t(C)`: evolves the per-state vector
    /// `ν̂_0(C) = π̂_ini(C)/|C|` by the quotient with the correct diagonal,
    /// then scales by class sizes.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn transient_aggregated(&self, t: f64, options: &TransientOptions) -> Result<Vec<f64>> {
        let matrix = self.result.mrp.matrix();
        let sizes = self.class_sizes();
        let initial = self.result.mrp.initial_vector();
        let nu0: Vec<f64> = initial
            .iter()
            .zip(&sizes)
            .map(|(&p, &c)| p / c as f64)
            .collect();
        let sol = mdl_ctmc::transient_uniformization_with_exit_rates(
            matrix,
            self.exit_rates,
            &nu0,
            t,
            options,
            false,
        )?;
        Ok(sol
            .probabilities
            .iter()
            .zip(&sizes)
            .map(|(&v, &c)| v * c as f64)
            .collect())
    }

    /// Expected stationary reward `Σ_s π(s) r(s)`, computed as
    /// `Σ_C π(C) · r̂(C)` with the Theorem-2 reward `r̂(C) = r(C)/|C|`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_stationary_reward(&self, options: &SolverOptions) -> Result<f64> {
        let agg = self.stationary_aggregated(options)?;
        Ok(vec_ops::dot(&agg, &self.result.mrp.reward_vector()))
    }

    /// Expected reward at time `t`, computed as `Σ_C π_t(C) · r̂(C)`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_transient_reward(&self, t: f64, options: &TransientOptions) -> Result<f64> {
        let agg = self.transient_aggregated(t, options)?;
        Ok(vec_ops::dot(&agg, &self.result.mrp.reward_vector()))
    }

    /// Expected reward accumulated over `[0, t]`:
    /// `∫₀ᵗ Σ_C ν̂_u(C)·r(C) du`, evolving the per-state vector with the
    /// correct diagonal and weighting the Theorem-2 reward by class sizes.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_accumulated_reward(&self, t: f64, options: &TransientOptions) -> Result<f64> {
        let matrix = self.result.mrp.matrix();
        let sizes = self.class_sizes();
        let initial = self.result.mrp.initial_vector();
        let nu0: Vec<f64> = initial
            .iter()
            .zip(&sizes)
            .map(|(&p, &c)| p / c as f64)
            .collect();
        // r(C) = |C| · r̂(C).
        let class_reward: Vec<f64> = self
            .result
            .mrp
            .reward_vector()
            .iter()
            .zip(&sizes)
            .map(|(&r, &c)| r * c as f64)
            .collect();
        Ok(mdl_ctmc::accumulated_reward_with_exit_rates(
            matrix,
            self.exit_rates,
            &nu0,
            &class_reward,
            t,
            options,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use crate::decomp::DecomposableVector;
    use crate::lump::{LumpKind, LumpRequest};
    use crate::mrp::MdMrp;
    use mdl_ctmc::{SolverOptions, TransientOptions};
    use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
    use mdl_mdd::Mdd;

    /// Level-2 states {1, 2} exactly lumpable (equal columns, equal exit
    /// rates) under a uniform initial distribution.
    fn fixture() -> MdMrp {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        let mut cyc = SparseFactor::new(2);
        cyc.push(0, 1, 3.0);
        cyc.push(1, 0, 3.0);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cyc), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
        let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn class_sizes_sum_to_original() {
        let mrp = fixture();
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        let m = result.exact_measures().unwrap();
        assert_eq!(m.class_sizes().iter().sum::<u64>(), 6);
    }

    #[test]
    fn stationary_aggregated_is_a_distribution() {
        let mrp = fixture();
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        let m = result.exact_measures().unwrap();
        let agg = m.stationary_aggregated(&SolverOptions::default()).unwrap();
        let sum: f64 = agg.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(agg.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn transient_aggregated_is_a_distribution_at_all_times() {
        let mrp = fixture();
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        let m = result.exact_measures().unwrap();
        for &t in &[0.0, 0.3, 2.0] {
            let agg = m
                .transient_aggregated(t, &TransientOptions::default())
                .unwrap();
            let sum: f64 = agg.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "t={t}: sum {sum}");
        }
    }

    #[test]
    fn constant_reward_gives_unit_measures() {
        let mrp = fixture();
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        let m = result.exact_measures().unwrap();
        let stat = m
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!((stat - 1.0).abs() < 1e-9);
        let acc = m
            .expected_accumulated_reward(5.0, &TransientOptions::default())
            .unwrap();
        assert!((acc - 5.0).abs() < 1e-8);
    }
}
