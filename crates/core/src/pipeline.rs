//! The staged pipeline engine: explicit stages with content-addressed,
//! on-disk caching of every intermediate artifact.
//!
//! The paper's central economic argument is that the lumped matrix
//! diagram is a *reusable* artifact — lumping is paid once, then many
//! measures are answered against the small quotient. [`Pipeline`] makes
//! the reuse literal across *processes*: each stage of a solve
//!
//! ```text
//! model text ──build──▶ MdMrp ──lump──▶ lumped MdMrp ──compile──▶ kernel
//!                                            │                      │
//!                                            └────────solve─────────┘──▶ measures
//! ```
//!
//! derives a 64-bit cache key from the FNV-1a hash of its *inputs* (the
//! upstream stage's key plus every result-relevant request field — see
//! [`LumpRequest::write_cache_key`] and [`SolveRequest::write_cache_key`])
//! and, when a [`Store`] is attached, persists its outputs under that key
//! and short-circuits when they are already present. Invalidation is
//! structural: change the model text or any relevant option and the keys
//! change, so stale artifacts are simply never addressed. Keys
//! deliberately **exclude** thread counts, budgets, warm starts and
//! checkpoint plumbing — results are bit-identical across thread counts
//! (DESIGN.md §12), and budgets/warm starts change whether and where an
//! iteration runs, never the fixed point it converges to.
//!
//! Unreadable or corrupt cached artifacts are counted on the
//! `store.invalid` counter and treated as misses (the cache self-heals by
//! recomputing and overwriting); failures to *write* artifacts are real
//! errors ([`CoreError::Store`](crate::CoreError::Store)) — the caller
//! asked for caching and silently not caching would hide it.
//!
//! Every stage emits a `pipeline.stage` span with a `stage` label and a
//! `cache` field (`"hit"` / `"miss"`), so a JSONL obs stream shows
//! exactly which stages were skipped. The symbolic representation sizes
//! land on `md.memory_bytes` / `mdd.memory_bytes` (and `lump.*`
//! equivalents after lumping).
//!
//! Checkpoint/resume for long solves rides on the same store: sinks from
//! [`Pipeline::stationary_checkpoint_sink`] /
//! [`Pipeline::transient_checkpoint_sink`] snapshot the iterate under the
//! solve's key, and [`Pipeline::load_checkpoint`] +
//! [`transient_resume`] turn a snapshot back into solver options.

use std::sync::Arc;

use mdl_ctmc::{CheckpointSink, RunReport, Solution, TransientProgress, TransientSink};
use mdl_md::{CompiledMdMatrix, CompiledParts, Md, MdMatrix};
use mdl_mdd::Mdd;
use mdl_obs::Budget;
use mdl_partition::{Partition, RefinementStats};
use mdl_store::{
    Artifact, ByteReader, ByteWriter, Checkpoint, Codec, Fnv1a, KernelImage, Store, StoreError,
};

use crate::decomp::{Combiner, DecomposableVector};
use crate::lump::{LevelLumpStats, LumpRequest, LumpResult, LumpStats};
use crate::mrp::MdMrp;
use crate::solve::{SolveOutcome, SolveRequest, SolveTarget};
use crate::Result;

/// Cache key of a model description: the hash of its raw source text.
/// Any textual change — even whitespace — yields a different key and
/// therefore a fresh pipeline; semantic equality of models is
/// deliberately not attempted.
pub fn model_source_key(source: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("model");
    h.write_str(source);
    h.finish()
}

/// A stage output: the value, the content key it is addressed by, and
/// whether it came from the cache.
#[derive(Debug, Clone)]
pub struct Staged<T> {
    /// The stage's output value.
    pub value: T,
    /// The 64-bit content key the value is (or would be) stored under.
    pub key: u64,
    /// `true` when the value was loaded from the store instead of
    /// computed.
    pub cached: bool,
}

/// The staged solve pipeline. Without a store it is a thin orchestrator
/// (every stage computes); with one ([`Pipeline::with_store`]) each stage
/// persists its artifacts and reuses them on the next run.
#[derive(Debug, Clone)]
pub struct Pipeline {
    model_key: u64,
    store: Option<Store>,
}

impl Pipeline {
    /// A pipeline without persistence: stages always compute.
    pub fn new(model_key: u64) -> Self {
        Pipeline {
            model_key,
            store: None,
        }
    }

    /// A pipeline persisting every stage artifact in `store`.
    pub fn with_store(model_key: u64, store: Store) -> Self {
        Pipeline {
            model_key,
            store: Some(store),
        }
    }

    /// The model key all stage keys derive from.
    pub fn model_key(&self) -> u64 {
        self.model_key
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Loads an artifact, treating corrupt/unreadable files as misses
    /// (counted on `store.invalid`) so a damaged cache heals by
    /// recomputation instead of wedging the run.
    pub(crate) fn fetch<A: Artifact>(&self, key: u64) -> Option<A> {
        let store = self.store.as_ref()?;
        match store.load::<A>(key) {
            Ok(found) => found,
            Err(_) => {
                mdl_obs::counter("store.invalid").inc();
                None
            }
        }
    }

    /// Saves an artifact if a store is attached. Write failures are real
    /// errors — the user asked for caching.
    pub(crate) fn persist<A: Artifact>(&self, key: u64, artifact: &A) -> Result<()> {
        if let Some(store) = &self.store {
            store.save(key, artifact)?;
        }
        Ok(())
    }

    /// **Stage: build.** Produces the symbolic MRP for the model, either
    /// from four cached artifacts (MD, reachability MDD, reward and
    /// initial vectors) or by running `builder` and persisting its parts.
    ///
    /// Vectors with a [`Combiner::Custom`] cannot be serialized, so an
    /// MRP containing one is returned uncached (and un-persisted) rather
    /// than rejected.
    ///
    /// # Errors
    ///
    /// Whatever `builder` raises, plus [`CoreError::Store`](crate::CoreError::Store)
    /// on persist failure.
    pub fn build(&self, builder: impl FnOnce() -> Result<MdMrp>) -> Result<Staged<MdMrp>> {
        self.build_under(stage_key("build", self.model_key, |_| {}), builder)
    }

    /// [`build`](Self::build) with an explicit stage key — the sweep
    /// stage derives one key per sweep point (the model key plus the
    /// point's parameter assignment) and stages each point's MRP under
    /// it.
    pub(crate) fn build_under(
        &self,
        key: u64,
        builder: impl FnOnce() -> Result<MdMrp>,
    ) -> Result<Staged<MdMrp>> {
        let mut span = mdl_obs::span("pipeline.stage").with("stage", "build");
        span.trace_label("pipeline.build");
        if let Some(mrp) = self.fetch_mrp(key) {
            record_memory(&mrp, "md.memory_bytes", "mdd.memory_bytes");
            span.record("cache", "hit");
            span.finish();
            return Ok(Staged {
                value: mrp,
                key,
                cached: true,
            });
        }
        let mrp = builder()?;
        self.persist_mrp(key, &mrp)?;
        record_memory(&mrp, "md.memory_bytes", "mdd.memory_bytes");
        span.record("cache", "miss");
        span.finish();
        Ok(Staged {
            value: mrp,
            key,
            cached: false,
        })
    }

    /// **Stage: lump.** Runs (or restores) a compositional lump of the
    /// input MRP. The key hashes the input's key and every
    /// result-relevant request field ([`LumpRequest::write_cache_key`]);
    /// the cached form is the lumped MRP's four artifacts plus the
    /// per-level partitions and a [`LumpStats`] record.
    ///
    /// # Errors
    ///
    /// As for [`LumpRequest::run`], plus store write failures.
    pub fn lump(&self, input: &Staged<MdMrp>, request: &LumpRequest) -> Result<Staged<LumpResult>> {
        let key = stage_key("lump", input.key, |h| request.write_cache_key(h));
        let mut span = mdl_obs::span("pipeline.stage").with("stage", "lump");
        span.trace_label("pipeline.lump");
        if let Some(result) = self.fetch_lump(key) {
            record_memory(&result.mrp, "lump.md.memory_bytes", "lump.mdd.memory_bytes");
            span.record("cache", "hit");
            span.finish();
            return Ok(Staged {
                value: result,
                key,
                cached: true,
            });
        }
        let result = request.run(&input.value)?;
        self.persist_mrp(key, &result.mrp)?;
        for (level, partition) in result.partitions.iter().enumerate() {
            self.persist(sub_key(key, &format!("part{level}")), partition)?;
        }
        self.persist(
            key,
            &LumpMeta {
                stats: result.stats.clone(),
                exact_exit_rates: result.exact_exit_rates.clone(),
            },
        )?;
        record_memory(&result.mrp, "lump.md.memory_bytes", "lump.mdd.memory_bytes");
        span.record("cache", "miss");
        span.finish();
        Ok(Staged {
            value: result,
            key,
            cached: false,
        })
    }

    /// **Stage: compile.** Compiles (or restores) the multiply kernel for
    /// the input MRP's matrix. Thread count is *not* part of the key:
    /// the serialized [`CompiledParts`] are thread-independent and the
    /// per-thread plans are rebuilt on load.
    ///
    /// Restore prefers the mapped kernel image ([`Store::map`], slabs
    /// borrowed zero-copy from a shared `mmap(2)` region), then falls
    /// back to copy-decoding the image, then to the classic
    /// [`CompiledParts`] artifact — so concurrent workers and repeat runs
    /// share one physical mapping while older stores keep working. A
    /// compute persists both forms.
    ///
    /// # Errors
    ///
    /// Compile interruption (budget), plus store write failures.
    pub fn compile(
        &self,
        input: &Staged<MdMrp>,
        threads: usize,
        budget: &Budget,
    ) -> Result<Staged<Arc<CompiledMdMatrix>>> {
        let key = stage_key("kernel", input.key, |_| {});
        let mut span = mdl_obs::span("pipeline.stage").with("stage", "compile");
        span.trace_label("pipeline.compile");
        if let Some((parts, source)) = self.fetch_kernel_parts(key) {
            match CompiledMdMatrix::from_parts(parts, threads) {
                Ok(kernel) => {
                    span.record("cache", "hit");
                    span.record("source", source);
                    span.finish();
                    return Ok(Staged {
                        value: Arc::new(kernel),
                        key,
                        cached: true,
                    });
                }
                // Parts that parse but fail structural validation: a
                // stale or damaged artifact. Recompile over it.
                Err(_) => mdl_obs::counter("store.invalid").inc(),
            }
        }
        let compiled = CompiledMdMatrix::compile_budgeted(input.value.matrix(), threads, budget)?;
        let parts = compiled.to_parts();
        self.persist(key, &parts)?;
        self.persist(key, &KernelImage(parts))?;
        span.record("cache", "miss");
        span.finish();
        Ok(Staged {
            value: Arc::new(compiled),
            key,
            cached: false,
        })
    }

    /// Restores compiled-kernel parts by the cheapest available path:
    /// mapped image → copy-decoded image → classic parts artifact.
    /// Returns the parts and a label naming the path taken (for the
    /// stage span). Mapping errors are *not* counted invalid here — the
    /// copy-decode fallback re-reads the same file and classifies the
    /// failure (`store.invalid` via [`Pipeline::fetch`]) exactly once.
    fn fetch_kernel_parts(&self, key: u64) -> Option<(CompiledParts, &'static str)> {
        let store = self.store.as_ref()?;
        if let Ok(Some(img)) = store.map::<KernelImage>(key) {
            return Some((img.into_inner(), "map"));
        }
        if let Some(img) = self.fetch::<KernelImage>(key) {
            return Some((img.into_inner(), "decode"));
        }
        self.fetch::<CompiledParts>(key)
            .map(|parts| (parts, "classic"))
    }

    /// The cache key a [`SolveRequest`] run against the MRP under
    /// `input_key` is stored under — also the key its checkpoints use.
    pub fn solve_key(&self, input_key: u64, request: &SolveRequest) -> u64 {
        stage_key("solve", input_key, |h| request.write_cache_key(h))
    }

    /// **Stage: solve.** Executes (or restores) a solve. A cache hit
    /// returns the stored outcome *and* the stored [`RunReport`] of the
    /// run that produced it; both must be present, else the stage
    /// recomputes. Only successful outcomes are cached — failures are
    /// re-attempted on the next run.
    pub fn solve(
        &self,
        input: &Staged<MdMrp>,
        request: &SolveRequest,
    ) -> (Result<Staged<SolveOutcome>>, RunReport) {
        let key = self.solve_key(input.key, request);
        let mut span = mdl_obs::span("pipeline.stage").with("stage", "solve");
        span.trace_label("pipeline.solve");
        if let Some((outcome, report)) = self.fetch_solve(key, request.target()) {
            span.record("cache", "hit");
            span.finish();
            return (
                Ok(Staged {
                    value: outcome,
                    key,
                    cached: true,
                }),
                report,
            );
        }
        let (result, report) = request.run(&input.value);
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                span.record("cache", "miss");
                span.finish();
                return (Err(e), report);
            }
        };
        let saved = (|| {
            match &outcome {
                SolveOutcome::Distribution(sol) => self.persist(key, sol)?,
                SolveOutcome::Value(v) => self.persist(key, &vec![*v])?,
            }
            self.persist(key, &report)
        })();
        span.record("cache", "miss");
        span.finish();
        if let Err(e) = saved {
            return (Err(e), report);
        }
        (
            Ok(Staged {
                value: outcome,
                key,
                cached: false,
            }),
            report,
        )
    }

    /// **Stage: measure.** Caches an arbitrary derived vector (an
    /// expected-reward scalar, a cross-check distribution, …) under the
    /// input key and a distinguishing label.
    ///
    /// # Errors
    ///
    /// Whatever `compute` raises, plus store write failures.
    pub fn measure(
        &self,
        input_key: u64,
        label: &str,
        compute: impl FnOnce() -> Result<Vec<f64>>,
    ) -> Result<Staged<Vec<f64>>> {
        let key = stage_key("measure", input_key, |h| h.write_str(label));
        let mut span = mdl_obs::span("pipeline.stage").with("stage", "measure");
        span.trace_label("pipeline.measure");
        if let Some(value) = self.fetch::<Vec<f64>>(key) {
            span.record("cache", "hit");
            span.finish();
            return Ok(Staged {
                value,
                key,
                cached: true,
            });
        }
        let value = compute()?;
        self.persist(key, &value)?;
        span.record("cache", "miss");
        span.finish();
        Ok(Staged {
            value,
            key,
            cached: false,
        })
    }

    /// A sink snapshotting a stationary solve's iterate every `every`
    /// iterations (and on interruption) under the solve's key. `None`
    /// without a store. Snapshot write failures are swallowed — a
    /// checkpoint must never kill the solve it protects.
    pub fn stationary_checkpoint_sink(
        &self,
        solve_key: u64,
        every: usize,
    ) -> Option<CheckpointSink> {
        let store = self.store.clone()?;
        Some(CheckpointSink {
            every,
            sink: Arc::new(move |iterations, residual, iterate| {
                let ck = Checkpoint {
                    phase: "solve.stationary".into(),
                    iterations: iterations as u64,
                    residual,
                    iterate: iterate.to_vec(),
                    aux: Vec::new(),
                    scalars: Vec::new(),
                };
                if store.save(solve_key, &ck).is_ok() {
                    mdl_obs::counter("checkpoint.written").inc();
                }
            }),
        })
    }

    /// A sink snapshotting a transient solve's full progress every
    /// `every` uniformization steps (and on interruption) under the
    /// solve's key. `None` without a store.
    pub fn transient_checkpoint_sink(&self, solve_key: u64, every: usize) -> Option<TransientSink> {
        let store = self.store.clone()?;
        Some(TransientSink {
            every,
            sink: Arc::new(move |p: &TransientProgress| {
                let ck = Checkpoint {
                    phase: "solve.transient".into(),
                    iterations: p.steps as u64,
                    residual: 1.0 - p.accumulated,
                    iterate: p.v.clone(),
                    aux: p.result.clone(),
                    scalars: vec![p.ln_weight, p.accumulated],
                };
                if store.save(solve_key, &ck).is_ok() {
                    mdl_obs::counter("checkpoint.written").inc();
                }
            }),
        })
    }

    /// The checkpoint stored under a solve key, if any (corrupt
    /// checkpoints count on `store.invalid` and read as absent).
    pub fn load_checkpoint(&self, solve_key: u64) -> Option<Checkpoint> {
        self.fetch(solve_key)
    }

    /// Removes the checkpoint under a solve key — called after the solve
    /// completes, so `--resume` never replays a finished run's snapshot.
    ///
    /// # Errors
    ///
    /// Store removal failure (missing checkpoints are fine).
    pub fn clear_checkpoint(&self, solve_key: u64) -> Result<()> {
        if let Some(store) = &self.store {
            store.remove::<Checkpoint>(solve_key)?;
        }
        Ok(())
    }

    /// Restores an MRP from its four artifacts under `key`, or `None` on
    /// any miss. Artifacts that load individually but fail joint
    /// validation (e.g. a vector whose shape no longer matches the MD)
    /// count as invalid and miss.
    fn fetch_mrp(&self, key: u64) -> Option<MdMrp> {
        let md = self.fetch::<Md>(key)?;
        let reach = self.fetch::<Mdd>(key)?;
        let reward = self.fetch::<DecomposableVector>(sub_key(key, "reward"))?;
        let initial = self.fetch::<DecomposableVector>(sub_key(key, "initial"))?;
        let assembled = MdMatrix::new(md, reach)
            .map_err(crate::CoreError::from)
            .and_then(|matrix| MdMrp::new(matrix, reward, initial));
        match assembled {
            Ok(mrp) => Some(mrp),
            Err(_) => {
                mdl_obs::counter("store.invalid").inc();
                None
            }
        }
    }

    /// Persists an MRP as its four artifacts under `key`. MRPs holding a
    /// [`Combiner::Custom`] vector are silently skipped (the closure is
    /// not serializable), leaving the stage permanently un-cached.
    fn persist_mrp(&self, key: u64, mrp: &MdMrp) -> Result<()> {
        let serializable = |v: &DecomposableVector| !matches!(v.combiner(), Combiner::Custom(_));
        if !serializable(mrp.reward()) || !serializable(mrp.initial()) {
            return Ok(());
        }
        self.persist(key, mrp.matrix().md())?;
        self.persist(key, mrp.matrix().reach())?;
        self.persist(sub_key(key, "reward"), mrp.reward())?;
        self.persist(sub_key(key, "initial"), mrp.initial())?;
        Ok(())
    }

    /// Restores a full [`LumpResult`] under `key`, or `None` on any miss.
    fn fetch_lump(&self, key: u64) -> Option<LumpResult> {
        let meta = self.fetch::<LumpMeta>(key)?;
        let mrp = self.fetch_mrp(key)?;
        let mut partitions = Vec::with_capacity(meta.stats.per_level.len());
        for level in 0..meta.stats.per_level.len() {
            partitions.push(self.fetch::<Partition>(sub_key(key, &format!("part{level}")))?);
        }
        Some(LumpResult {
            mrp,
            partitions,
            stats: meta.stats,
            exact_exit_rates: meta.exact_exit_rates,
            // Envelopes are not persisted: bounds runs re-lump (compile
            // is cheap next to the sweeps they gate).
            envelope: None,
        })
    }

    /// Restores a solve outcome and its report under `key`, or `None` on
    /// any miss.
    fn fetch_solve(&self, key: u64, target: SolveTarget) -> Option<(SolveOutcome, RunReport)> {
        let outcome = match target {
            SolveTarget::AccumulatedReward(_) => {
                let v = self.fetch::<Vec<f64>>(key)?;
                if v.len() != 1 {
                    mdl_obs::counter("store.invalid").inc();
                    return None;
                }
                SolveOutcome::Value(v[0])
            }
            SolveTarget::Stationary | SolveTarget::Transient(_) => {
                SolveOutcome::Distribution(self.fetch::<Solution>(key)?)
            }
        };
        let report = self.fetch::<RunReport>(key)?;
        Some((outcome, report))
    }
}

/// Turns a transient checkpoint back into the solver's resume state, or
/// `None` when the checkpoint is not a transient one (wrong scalar
/// arity). Resumed runs are bit-identical to uninterrupted ones.
pub fn transient_resume(ck: &Checkpoint) -> Option<TransientProgress> {
    if ck.scalars.len() != 2 {
        return None;
    }
    Some(TransientProgress {
        steps: ck.iterations as usize,
        ln_weight: ck.scalars[0],
        accumulated: ck.scalars[1],
        v: ck.iterate.clone(),
        result: ck.aux.clone(),
    })
}

/// Derives a stage's key from its name, the upstream stage's key, and
/// the stage-specific request fields.
pub(crate) fn stage_key(stage: &str, upstream: u64, extra: impl FnOnce(&mut Fnv1a)) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(stage);
    h.write_u64(upstream);
    extra(&mut h);
    h.finish()
}

/// A named sub-artifact of a stage (stages store several artifacts of
/// the same type — e.g. the reward and initial vectors — which would
/// otherwise collide on one filename).
pub(crate) fn sub_key(key: u64, name: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(key);
    h.write_str(name);
    h.finish()
}

fn record_memory(mrp: &MdMrp, md_counter: &'static str, mdd_counter: &'static str) {
    mdl_obs::counter(md_counter).add(mrp.matrix().md().memory_bytes() as u64);
    mdl_obs::counter(mdd_counter).add(mrp.matrix().reach().memory_bytes() as u64);
}

impl Codec for DecomposableVector {
    const KIND: u16 = 100;
    const NAME: &'static str = "decvec";

    fn encode(&self, w: &mut ByteWriter) {
        // Custom combiners write an unknown tag on purpose: the closure
        // is not serializable, and a file that cannot round-trip must
        // not decode as something else. The pipeline never saves one.
        w.u8(match self.combiner() {
            Combiner::Sum => 0,
            Combiner::Product => 1,
            Combiner::Custom(_) => u8::MAX,
        });
        w.usize(self.num_levels());
        for level in 0..self.num_levels() {
            w.f64_slice(self.level_values(level));
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> std::result::Result<Self, StoreError> {
        let combiner = match r.u8()? {
            0 => Combiner::Sum,
            1 => Combiner::Product,
            t => return Err(StoreError::corrupted(format!("unknown combiner tag {t}"))),
        };
        let num_levels = r.seq_len(8)?;
        let mut levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            levels.push(r.f64_vec()?);
        }
        DecomposableVector::new(levels, combiner).map_err(|e| StoreError::corrupted(e.to_string()))
    }
}

/// The lump stage's statistics + exit-rate artifact: everything in a
/// [`LumpResult`] that is not the MRP or the partitions.
#[derive(Debug, Clone)]
struct LumpMeta {
    stats: LumpStats,
    exact_exit_rates: Option<Vec<f64>>,
}

impl Codec for LumpMeta {
    const KIND: u16 = 101;
    const NAME: &'static str = "lumpmeta";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.stats.per_level.len());
        for l in &self.stats.per_level {
            w.usize(l.level);
            w.usize(l.original_size);
            w.usize(l.lumped_size);
            w.usize(l.refinement.splitters_processed);
            w.usize(l.refinement.classes_split);
            w.usize(l.refinement.keys_emitted);
            w.u64(duration_nanos(l.elapsed));
        }
        w.u64(self.stats.original_states);
        w.u64(self.stats.lumped_states);
        w.usize(self.stats.memory_before);
        w.usize(self.stats.memory_after);
        w.usize(self.stats.nodes_merged);
        w.usize(self.stats.rounds);
        w.f64(self.stats.max_rate_deviation);
        w.u64(duration_nanos(self.stats.elapsed));
        match &self.exact_exit_rates {
            None => w.u8(0),
            Some(rates) => {
                w.u8(1);
                w.f64_slice(rates);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> std::result::Result<Self, StoreError> {
        let levels = r.seq_len(8 * 6 + 8)?;
        let mut per_level = Vec::with_capacity(levels);
        for _ in 0..levels {
            per_level.push(LevelLumpStats {
                level: r.usize()?,
                original_size: r.usize()?,
                lumped_size: r.usize()?,
                refinement: RefinementStats {
                    splitters_processed: r.usize()?,
                    classes_split: r.usize()?,
                    keys_emitted: r.usize()?,
                },
                elapsed: std::time::Duration::from_nanos(r.u64()?),
            });
        }
        let stats = LumpStats {
            per_level,
            original_states: r.u64()?,
            lumped_states: r.u64()?,
            memory_before: r.usize()?,
            memory_after: r.usize()?,
            nodes_merged: r.usize()?,
            rounds: r.usize()?,
            max_rate_deviation: r.f64()?,
            elapsed: std::time::Duration::from_nanos(r.u64()?),
        };
        let exact_exit_rates = match r.u8()? {
            0 => None,
            1 => Some(r.f64_vec()?),
            t => return Err(StoreError::corrupted(format!("unknown option tag {t}"))),
        };
        Ok(LumpMeta {
            stats,
            exact_exit_rates,
        })
    }
}

fn duration_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lump::LumpKind;
    use mdl_linalg::RateMatrix;
    use mdl_md::{KroneckerExpr, SparseFactor};

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    /// The lumpable 2×3 model from the lump tests.
    fn build_mrp() -> Result<MdMrp> {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        w.push(1, 2, 0.5);
        w.push(2, 1, 0.5);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, 3.0)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md()?, Mdd::full(vec![2, 3]).unwrap())?;
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]], Combiner::Product)?;
        let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0])?;
        MdMrp::new(matrix, reward, initial)
    }

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("mdl-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn storeless_pipeline_always_computes() {
        let p = Pipeline::new(model_source_key("m"));
        let a = p.build(build_mrp).unwrap();
        assert!(!a.cached);
        let b = p.build(build_mrp).unwrap();
        assert!(!b.cached);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn full_pipeline_round_trips_bit_exactly_through_the_store() {
        let store = temp_store("full");
        let p = Pipeline::with_store(model_source_key("model text"), store.clone());

        // Cold run: every stage computes.
        let built = p.build(build_mrp).unwrap();
        assert!(!built.cached);
        let request = LumpRequest::new(LumpKind::Ordinary);
        let lumped = p.lump(&built, &request).unwrap();
        assert!(!lumped.cached);
        let kernel = p.compile(&built, 1, &Budget::unlimited()).unwrap();
        assert!(!kernel.cached);
        let solve_req = SolveRequest::stationary();
        let (cold, cold_report) = p.solve(&built, &solve_req);
        let cold = cold.unwrap();
        assert!(!cold.cached);
        assert_eq!(cold_report.attempts.len(), 1);

        // Warm run (fresh Pipeline over the same store): every stage hits
        // and every value is bit-identical.
        let q = Pipeline::with_store(model_source_key("model text"), store);
        let rebuilt = q.build(|| panic!("must not rebuild")).unwrap();
        assert!(rebuilt.cached);
        assert_eq!(
            rebuilt
                .value
                .matrix()
                .flatten()
                .max_abs_diff(&built.value.matrix().flatten()),
            0.0
        );
        assert_eq!(rebuilt.value.initial_vector(), built.value.initial_vector());
        assert_eq!(rebuilt.value.reward_vector(), built.value.reward_vector());

        let relumped = q.lump(&rebuilt, &request).unwrap();
        assert!(relumped.cached);
        assert_eq!(relumped.value.partitions, lumped.value.partitions);
        assert_eq!(
            relumped.value.stats.lumped_states,
            lumped.value.stats.lumped_states
        );
        assert_eq!(relumped.value.stats.per_level.len(), 2);
        assert_eq!(
            relumped
                .value
                .mrp
                .matrix()
                .flatten()
                .max_abs_diff(&lumped.value.mrp.matrix().flatten()),
            0.0
        );

        let rekernel = q.compile(&rebuilt, 2, &Budget::unlimited()).unwrap();
        assert!(rekernel.cached);
        assert_eq!(rekernel.value.num_states(), kernel.value.num_states());

        let (warm, warm_report) = q.solve(&rebuilt, &solve_req);
        let warm = warm.unwrap();
        assert!(warm.cached);
        let cold_sol = cold.value.solution().unwrap();
        let warm_sol = warm.value.solution().unwrap();
        assert_eq!(warm_sol.probabilities, cold_sol.probabilities);
        assert_eq!(warm_report.attempts.len(), cold_report.attempts.len());

        let _ = std::fs::remove_dir_all(q.store().unwrap().root());
    }

    #[test]
    fn different_requests_get_different_keys() {
        let p = Pipeline::new(model_source_key("m"));
        let built = p.build(build_mrp).unwrap();
        let ordinary = stage_key("lump", built.key, |h| {
            LumpRequest::new(LumpKind::Ordinary).write_cache_key(h)
        });
        let exact = stage_key("lump", built.key, |h| {
            LumpRequest::new(LumpKind::Exact).write_cache_key(h)
        });
        assert_ne!(ordinary, exact);

        let stationary = p.solve_key(built.key, &SolveRequest::stationary());
        let transient = p.solve_key(built.key, &SolveRequest::transient(0.5));
        let transient2 = p.solve_key(built.key, &SolveRequest::transient(0.75));
        assert_ne!(stationary, transient);
        assert_ne!(transient, transient2);
        // Threads are excluded: same key, results are bit-identical.
        assert_eq!(
            p.solve_key(built.key, &SolveRequest::stationary().threads(4)),
            stationary
        );
        // Different models diverge from the very first stage.
        let other = Pipeline::new(model_source_key("m2"));
        let other_built_key = stage_key("build", other.model_key(), |_| {});
        assert_ne!(other_built_key, built.key);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_and_heals() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let store = temp_store("heal");
        let p = Pipeline::with_store(model_source_key("m"), store.clone());
        let built = p.build(build_mrp).unwrap();

        // Flip a payload byte of the MD artifact.
        let path = store.path_for::<Md>(built.key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let healed = p.build(build_mrp).unwrap();
        assert!(!healed.cached, "corrupt artifact must not hit");
        let report = mdl_obs::snapshot();
        let invalid = report
            .counters
            .iter()
            .find(|c| c.name == "store.invalid")
            .map_or(0, |c| c.value);
        assert_eq!(invalid, 1);
        mdl_obs::set_enabled(false);
        mdl_obs::reset();

        // The rewrite healed the cache: a third run hits again.
        let again = p.build(|| panic!("healed cache must hit")).unwrap();
        assert!(again.cached);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn custom_combiner_mrp_is_never_persisted() {
        let store = temp_store("custom");
        let p = Pipeline::with_store(model_source_key("m"), store.clone());
        let build_custom = || {
            let base = build_mrp()?;
            let (matrix, _, initial) = base.into_parts();
            let reward = DecomposableVector::new(
                vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]],
                Combiner::Custom(Arc::new(|v: &[f64]| v.iter().product())),
            )?;
            MdMrp::new(matrix, reward, initial)
        };
        let a = p.build(build_custom).unwrap();
        assert!(!a.cached);
        assert!(
            !store.contains::<Md>(a.key),
            "custom vectors must not persist"
        );
        let b = p.build(build_custom).unwrap();
        assert!(!b.cached, "nothing persisted, so nothing hits");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn solve_failures_are_not_cached() {
        let store = temp_store("fail");
        let p = Pipeline::with_store(model_source_key("m"), store.clone());
        let built = p.build(build_mrp).unwrap();
        // Node cap 0 interrupts the compile inside the solve.
        let req = SolveRequest::stationary().budget(Budget::unlimited().node_cap(0));
        let (r1, _) = p.solve(&built, &req);
        assert!(r1.is_err());
        let (r2, _) = p.solve(&built, &req);
        assert!(r2.is_err(), "failure must not have been cached");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn measure_stage_caches_by_label() {
        let store = temp_store("measure");
        let p = Pipeline::with_store(model_source_key("m"), store.clone());
        let a = p.measure(1, "reward", || Ok(vec![1.5])).unwrap();
        assert!(!a.cached);
        let b = p.measure(1, "reward", || panic!("cached")).unwrap();
        assert!(b.cached);
        assert_eq!(b.value, vec![1.5]);
        let c = p.measure(1, "cross-check", || Ok(vec![2.5])).unwrap();
        assert!(!c.cached, "different label, different key");
        let d = p.measure(2, "reward", || Ok(vec![3.5])).unwrap();
        assert!(!d.cached, "different input key, different key");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn checkpoint_sinks_round_trip_and_clear() {
        let store = temp_store("ckpt");
        let p = Pipeline::with_store(model_source_key("m"), store.clone());
        let key = 0xabcd;

        let sink = p.stationary_checkpoint_sink(key, 10).unwrap();
        (sink.sink)(42, 1e-3, &[0.25, 0.75]);
        let ck = p.load_checkpoint(key).unwrap();
        assert_eq!(ck.phase, "solve.stationary");
        assert_eq!(ck.iterations, 42);
        assert_eq!(ck.iterate, vec![0.25, 0.75]);
        assert!(transient_resume(&ck).is_none(), "stationary checkpoint");

        let tsink = p.transient_checkpoint_sink(key, 5).unwrap();
        (tsink.sink)(&TransientProgress {
            steps: 7,
            ln_weight: -0.5,
            accumulated: 0.9,
            v: vec![0.5, 0.5],
            result: vec![0.4, 0.5],
        });
        let ck = p.load_checkpoint(key).unwrap();
        assert_eq!(ck.phase, "solve.transient");
        let progress = transient_resume(&ck).unwrap();
        assert_eq!(progress.steps, 7);
        assert_eq!(progress.ln_weight, -0.5);
        assert_eq!(progress.accumulated, 0.9);
        assert_eq!(progress.v, vec![0.5, 0.5]);
        assert_eq!(progress.result, vec![0.4, 0.5]);

        p.clear_checkpoint(key).unwrap();
        assert!(p.load_checkpoint(key).is_none());
        // Clearing a missing checkpoint (or on a storeless pipeline) is fine.
        p.clear_checkpoint(key).unwrap();
        Pipeline::new(1).clear_checkpoint(key).unwrap();
        assert!(Pipeline::new(1)
            .stationary_checkpoint_sink(key, 1)
            .is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn lump_meta_artifact_round_trips() {
        let meta = LumpMeta {
            stats: LumpStats {
                per_level: vec![LevelLumpStats {
                    level: 0,
                    original_size: 6,
                    lumped_size: 2,
                    refinement: RefinementStats {
                        splitters_processed: 3,
                        classes_split: 1,
                        keys_emitted: 12,
                    },
                    elapsed: std::time::Duration::from_micros(17),
                }],
                original_states: 6,
                lumped_states: 2,
                memory_before: 1000,
                memory_after: 300,
                nodes_merged: 1,
                rounds: 2,
                max_rate_deviation: 0.25,
                elapsed: std::time::Duration::from_millis(3),
            },
            exact_exit_rates: Some(vec![1.5, 2.5]),
        };
        let back = LumpMeta::from_bytes(&meta.to_bytes()).unwrap();
        assert_eq!(back.stats.per_level.len(), 1);
        assert_eq!(back.stats.per_level[0].refinement.keys_emitted, 12);
        assert_eq!(back.stats.lumped_states, 2);
        assert_eq!(back.stats.rounds, 2);
        assert_eq!(back.exact_exit_rates, Some(vec![1.5, 2.5]));
    }

    #[test]
    fn decomposable_vector_artifact_rejects_custom_and_bad_tags() {
        let v = DecomposableVector::new(vec![vec![1.0, 2.0]], Combiner::Sum).unwrap();
        let back = DecomposableVector::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back.level_values(0), v.level_values(0));
        assert!(matches!(back.combiner(), Combiner::Sum));

        let custom = DecomposableVector::new(
            vec![vec![1.0]],
            Combiner::Custom(Arc::new(|v: &[f64]| v[0])),
        )
        .unwrap();
        assert!(DecomposableVector::from_bytes(&custom.to_bytes()).is_err());
    }
}
