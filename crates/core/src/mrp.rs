use mdl_ctmc::{Solution, SolverOptions, TransientOptions};
use mdl_linalg::RateMatrix;
use mdl_md::{CompiledMdMatrix, MdMatrix};

use crate::decomp::DecomposableVector;
use crate::{CoreError, Result};

/// Which matrix–vector kernel a symbolic solve iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Recursive MD×MDD walk on every product ([`MdMatrix`] directly).
    Walk,
    /// Compile the pair once into a flat block/arena program
    /// ([`CompiledMdMatrix`]) and iterate over that. Products are
    /// bit-identical to the walk, typically several times faster, and can
    /// be multi-threaded.
    #[default]
    Compiled,
}

/// How a symbolic solve executes its per-iteration products.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    /// Which kernel to iterate over.
    pub kind: KernelKind,
    /// Worker threads for compiled products; `0` means one per available
    /// hardware thread ([`mdl_md::default_threads`]). Ignored by the walk
    /// kernel, which is always serial.
    pub threads: usize,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions {
            kind: KernelKind::Compiled,
            threads: 1,
        }
    }
}

/// A Markov reward process in fully symbolic form: the state-transition
/// rate matrix is a matrix diagram over an MDD-indexed reachable state
/// space ([`MdMatrix`]), and the reward vector and initial distribution are
/// [`DecomposableVector`]s (the paper's `g(f₁, …, f_L)` representation that
/// makes per-level lumping conditions expressible).
///
/// The initial distribution must be product-form
/// ([`Combiner::Product`](crate::Combiner::Product)) — the form the paper's
/// own examples use (point masses, factorized distributions; arbitrary
/// distributions are encodable per the paper's indicator construction) and
/// the form whose class sums stay per-level expressible after lumping.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct MdMrp {
    matrix: MdMatrix,
    reward: DecomposableVector,
    initial: DecomposableVector,
}

impl MdMrp {
    /// Assembles a symbolic MRP, validating shapes and that the initial
    /// distribution is product-form and sums to 1 over reachable states.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShapeMismatch`] if the vectors' level structure does
    ///   not match the matrix;
    /// * [`CoreError::NotProductForm`] if the initial distribution is not
    ///   product-combined;
    /// * [`CoreError::Decomposable`] if the initial distribution has
    ///   negative values or does not sum to 1 over the reachable states.
    pub fn new(
        matrix: MdMatrix,
        reward: DecomposableVector,
        initial: DecomposableVector,
    ) -> Result<Self> {
        let sizes: Vec<usize> = matrix.md().sizes().to_vec();
        if reward.sizes() != sizes {
            return Err(CoreError::ShapeMismatch {
                detail: format!("reward sizes {:?} vs MD sizes {:?}", reward.sizes(), sizes),
            });
        }
        if initial.sizes() != sizes {
            return Err(CoreError::ShapeMismatch {
                detail: format!(
                    "initial sizes {:?} vs MD sizes {:?}",
                    initial.sizes(),
                    sizes
                ),
            });
        }
        if !initial.is_product_form() {
            return Err(CoreError::NotProductForm {
                what: "initial distribution",
            });
        }
        let materialized = initial.materialize(matrix.reach());
        if let Some(v) = materialized.iter().find(|&&v| v < 0.0) {
            return Err(CoreError::Decomposable {
                reason: format!("initial distribution has negative value {v}"),
            });
        }
        let sum: f64 = materialized.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::Decomposable {
                reason: format!("initial distribution sums to {sum} over reachable states"),
            });
        }
        Ok(MdMrp {
            matrix,
            reward,
            initial,
        })
    }

    /// The symbolic rate matrix.
    pub fn matrix(&self) -> &MdMatrix {
        &self.matrix
    }

    /// The decomposable reward vector.
    pub fn reward(&self) -> &DecomposableVector {
        &self.reward
    }

    /// The decomposable initial distribution.
    pub fn initial(&self) -> &DecomposableVector {
        &self.initial
    }

    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.matrix.num_states()
    }

    /// Materialized reward vector over reachable states (MDD order).
    pub fn reward_vector(&self) -> Vec<f64> {
        self.reward.materialize(self.matrix.reach())
    }

    /// Materialized initial distribution over reachable states (MDD order).
    pub fn initial_vector(&self) -> Vec<f64> {
        self.initial.materialize(self.matrix.reach())
    }

    /// Stationary distribution over reachable states, solved symbolically
    /// (matrix-diagram × vector products only) with the default kernel
    /// (compiled, serial).
    ///
    /// # Errors
    ///
    /// Propagates solver errors ([`mdl_ctmc::CtmcError`]).
    pub fn stationary(&self, options: &SolverOptions) -> Result<Solution> {
        self.stationary_with(options, &KernelOptions::default())
    }

    /// [`Self::stationary`] with an explicit kernel choice. The compiled
    /// kernel is built once before iterating; its products are
    /// bit-identical to the walk, so the solution does not depend on the
    /// kernel (or thread count) chosen.
    ///
    /// # Errors
    ///
    /// Propagates solver errors ([`mdl_ctmc::CtmcError`]).
    pub fn stationary_with(
        &self,
        options: &SolverOptions,
        kernel: &KernelOptions,
    ) -> Result<Solution> {
        match kernel.kind {
            KernelKind::Walk => solve_stationary(&self.matrix, options),
            KernelKind::Compiled => {
                // Compilation runs under the same budget as the solve, so
                // a deadline covers the end-to-end wall-clock cost.
                let compiled = CompiledMdMatrix::compile_budgeted(
                    &self.matrix,
                    kernel.threads,
                    &options.budget,
                )?;
                solve_stationary(&compiled, options)
            }
        }
    }

    /// Transient distribution at time `t` from the initial distribution,
    /// solved symbolically with the default kernel.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn transient(&self, t: f64, options: &TransientOptions) -> Result<Solution> {
        self.transient_with(t, options, &KernelOptions::default())
    }

    /// [`Self::transient`] with an explicit kernel choice.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn transient_with(
        &self,
        t: f64,
        options: &TransientOptions,
        kernel: &KernelOptions,
    ) -> Result<Solution> {
        let initial = self.initial_vector();
        let sol = match kernel.kind {
            KernelKind::Walk => {
                mdl_ctmc::transient_uniformization(&self.matrix, &initial, t, options)?
            }
            KernelKind::Compiled => {
                let compiled = CompiledMdMatrix::compile_budgeted(
                    &self.matrix,
                    kernel.threads,
                    &options.budget,
                )?;
                mdl_ctmc::transient_uniformization(&compiled, &initial, t, options)?
            }
        };
        Ok(sol)
    }

    /// Expected stationary reward `Σ_s π(s) r(s)`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_stationary_reward(&self, options: &SolverOptions) -> Result<f64> {
        self.expected_stationary_reward_with(options, &KernelOptions::default())
    }

    /// [`Self::expected_stationary_reward`] with an explicit kernel choice.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_stationary_reward_with(
        &self,
        options: &SolverOptions,
        kernel: &KernelOptions,
    ) -> Result<f64> {
        let sol = self.stationary_with(options, kernel)?;
        Ok(sol.try_expected_reward(&self.reward_vector())?)
    }

    /// Expected reward at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_transient_reward(&self, t: f64, options: &TransientOptions) -> Result<f64> {
        self.expected_transient_reward_with(t, options, &KernelOptions::default())
    }

    /// [`Self::expected_transient_reward`] with an explicit kernel choice.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_transient_reward_with(
        &self,
        t: f64,
        options: &TransientOptions,
        kernel: &KernelOptions,
    ) -> Result<f64> {
        let sol = self.transient_with(t, options, kernel)?;
        Ok(sol.try_expected_reward(&self.reward_vector())?)
    }

    /// Expected reward **accumulated** over `[0, t]`
    /// (`E[∫₀ᵗ r(X_u) du]`), solved symbolically by uniformization.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_accumulated_reward(&self, t: f64, options: &TransientOptions) -> Result<f64> {
        self.expected_accumulated_reward_with(t, options, &KernelOptions::default())
    }

    /// [`Self::expected_accumulated_reward`] with an explicit kernel
    /// choice.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_accumulated_reward_with(
        &self,
        t: f64,
        options: &TransientOptions,
        kernel: &KernelOptions,
    ) -> Result<f64> {
        let initial = self.initial_vector();
        let reward = self.reward_vector();
        let value = match kernel.kind {
            KernelKind::Walk => {
                mdl_ctmc::accumulated_reward(&self.matrix, &initial, &reward, t, options)?
            }
            KernelKind::Compiled => {
                let compiled = CompiledMdMatrix::compile_budgeted(
                    &self.matrix,
                    kernel.threads,
                    &options.budget,
                )?;
                mdl_ctmc::accumulated_reward(&compiled, &initial, &reward, t, options)?
            }
        };
        Ok(value)
    }

    /// Compiles this MRP's matrix into the flat execute-many kernel
    /// (`threads == 0` means one worker per hardware thread).
    pub fn compile_matrix(&self, threads: usize) -> CompiledMdMatrix {
        CompiledMdMatrix::compile_with_threads(&self.matrix, threads)
    }

    /// Materializes the whole MRP as a flat [`Mrp`](mdl_ctmc::Mrp) over an
    /// explicit sparse matrix — the baseline representation used by the
    /// verification and optimality experiments. Memory is O(states + nnz).
    ///
    /// # Errors
    ///
    /// Propagates MRP validation errors (cannot occur for a validated
    /// `MdMrp`).
    pub fn to_flat_mrp(&self) -> Result<mdl_ctmc::Mrp<mdl_linalg::CsrMatrix>> {
        Ok(mdl_ctmc::Mrp::new(
            self.matrix.flatten(),
            self.reward_vector(),
            self.initial_vector(),
        )?)
    }

    /// Decomposes into parts.
    pub fn into_parts(self) -> (MdMatrix, DecomposableVector, DecomposableVector) {
        (self.matrix, self.reward, self.initial)
    }
}

pub(crate) fn solve_stationary<M: RateMatrix>(
    matrix: &M,
    options: &SolverOptions,
) -> Result<Solution> {
    use mdl_ctmc::StationaryMethod;
    let sol = match options.method {
        StationaryMethod::Power => mdl_ctmc::stationary_power(matrix, options)?,
        StationaryMethod::Jacobi => mdl_ctmc::stationary_jacobi(matrix, options)?,
    };
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Combiner;
    use mdl_md::{KroneckerExpr, SparseFactor};
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn sample_matrix() -> MdMatrix {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(2.0, vec![None, Some(cycle(2, 1.0))]);
        MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap()
    }

    fn sample_mrp() -> MdMrp {
        let m = sample_matrix();
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 2], &[0, 0]).unwrap();
        MdMrp::new(m, reward, initial).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let m = sample_matrix();
        let bad_reward = DecomposableVector::constant(&[3, 2], 1.0).unwrap();
        let initial = DecomposableVector::point_mass(&[2, 2], &[0, 0]).unwrap();
        assert!(matches!(
            MdMrp::new(m, bad_reward, initial),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn non_product_initial_rejected() {
        let m = sample_matrix();
        let reward = DecomposableVector::constant(&[2, 2], 1.0).unwrap();
        let initial =
            DecomposableVector::new(vec![vec![0.5, 0.0], vec![0.5, 0.0]], Combiner::Sum).unwrap();
        assert!(matches!(
            MdMrp::new(m, reward, initial),
            Err(CoreError::NotProductForm { .. })
        ));
    }

    #[test]
    fn non_normalized_initial_rejected() {
        let m = sample_matrix();
        let reward = DecomposableVector::constant(&[2, 2], 1.0).unwrap();
        let initial = DecomposableVector::constant(&[2, 2], 0.3).unwrap();
        assert!(matches!(
            MdMrp::new(m, reward, initial),
            Err(CoreError::Decomposable { .. })
        ));
    }

    #[test]
    fn stationary_matches_flat_solution() {
        let mrp = sample_mrp();
        let sym = mrp.stationary(&SolverOptions::default()).unwrap();
        let flat = mrp.to_flat_mrp().unwrap();
        let explicit = flat.stationary(&SolverOptions::default()).unwrap();
        assert!(
            mdl_linalg::vec_ops::max_abs_diff(&sym.probabilities, &explicit.probabilities) < 1e-8
        );
    }

    #[test]
    fn transient_matches_flat_solution() {
        let mrp = sample_mrp();
        let sym = mrp.transient(0.7, &TransientOptions::default()).unwrap();
        let flat = mrp.to_flat_mrp().unwrap();
        let explicit = flat.transient(0.7, &TransientOptions::default()).unwrap();
        assert!(
            mdl_linalg::vec_ops::max_abs_diff(&sym.probabilities, &explicit.probabilities) < 1e-10
        );
    }

    #[test]
    fn kernels_agree_bit_for_bit() {
        // Compiled products are bit-identical to the walk, so whole solves
        // agree exactly — for any thread count.
        let mrp = sample_mrp();
        let opts = SolverOptions::default();
        let walk = mrp
            .stationary_with(
                &opts,
                &KernelOptions {
                    kind: KernelKind::Walk,
                    threads: 1,
                },
            )
            .unwrap();
        for threads in [1usize, 2, 4] {
            let compiled = mrp
                .stationary_with(
                    &opts,
                    &KernelOptions {
                        kind: KernelKind::Compiled,
                        threads,
                    },
                )
                .unwrap();
            assert_eq!(walk.probabilities, compiled.probabilities);
            assert_eq!(walk.stats.iterations, compiled.stats.iterations);
        }
        let wt = mrp
            .transient_with(
                0.7,
                &TransientOptions::default(),
                &KernelOptions {
                    kind: KernelKind::Walk,
                    threads: 1,
                },
            )
            .unwrap();
        let ct = mrp
            .transient_with(0.7, &TransientOptions::default(), &KernelOptions::default())
            .unwrap();
        assert_eq!(wt.probabilities, ct.probabilities);
    }

    #[test]
    fn compile_matrix_exposes_kernel() {
        let mrp = sample_mrp();
        let compiled = mrp.compile_matrix(0);
        assert_eq!(compiled.num_states(), mrp.num_states());
        assert!(compiled.threads() >= 1);
    }

    #[test]
    fn expected_rewards_finite() {
        let mrp = sample_mrp();
        let stat = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!(stat > 0.0 && stat < 1.0);
        let trans = mrp
            .expected_transient_reward(0.5, &TransientOptions::default())
            .unwrap();
        assert!(trans.is_finite());
    }
}
