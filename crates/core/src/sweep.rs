//! Batch parameter-sweep engine: one compiled/lumped structure amortized
//! across many rate variants of the same model.
//!
//! The paper's economics are *compile once, solve many*: the lumped
//! matrix diagram is a reusable artifact. A capacity-planning sweep
//! ("the same queueing network at 32 service rates") stresses exactly
//! that claim — naively, every point pays the full
//! build → lump → compile → solve cost. [`Pipeline::sweep`] amortizes
//! three of those four stages:
//!
//! * **Reachability and structure are built once by the caller.** The
//!   builder closure receives each [`SweepPoint`] and typically re-rates
//!   a shared model skeleton (reachability is rate-invariant — rates
//!   must be positive — so the reach MDD is computed once and shared).
//! * **Only changed levels re-lump.** Each level's partition depends
//!   only on that level's local inputs (its MD nodes' formal sums with
//!   child ids as formal symbols, the MDD compatibility structure, and
//!   the level's reward/initial values — see `run_single`'s phase-1
//!   independence argument). The sweep hashes those inputs into a
//!   per-level **content key**; a point that changed one level's rates
//!   reuses every other level's partition verbatim (as a seed, see
//!   [`LumpRequest::seed_partitions`]) and refines only the changed
//!   level. Reuse is counted on `sweep.level.reuse` /
//!   `sweep.level.relump`.
//! * **Each point's solve warm-starts from its nearest solved
//!   neighbor** (Euclidean distance in parameter space, stationary
//!   targets only). Warm starts move the iteration's starting point,
//!   never its fixed point, and the solver's divergence/stagnation
//!   guards make a cold restart the fallback — but they *do* change the
//!   low-order bits of the converged vector, so sweeps that must be
//!   bit-identical to independent solves run with
//!   [`SweepRequest::warm_start`] off (level reuse alone is bit-exact
//!   by the seeding contract).
//!
//! Every per-point stage rides the normal [`Pipeline`] machinery, so an
//! attached store caches each point's artifacts content-addressed (a
//! re-run of the same grid is all hits), and partitions learned by one
//! process seed the next via the same per-level content keys.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mdl_ctmc::RunReport;
use mdl_md::ChildId;
use mdl_obs::Budget;
use mdl_partition::Partition;
use mdl_store::{Artifact, Fnv1a};

use crate::lump::{LumpRequest, LumpResult};
use crate::mrp::MdMrp;
use crate::pipeline::{stage_key, Pipeline, Staged};
use crate::solve::{SolveOutcome, SolveRequest, SolveTarget};
use crate::Result;

/// One parameter assignment of a sweep: a point index plus `(name,
/// value)` pairs, in a fixed axis order shared by every point of the
/// grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the sweep (solve order; also the warm-start
    /// tie-break).
    pub index: usize,
    /// The parameter assignment, e.g. `[("mu", 1.25)]`.
    pub params: Vec<(String, f64)>,
}

/// Expands axes into their full Cartesian product, first axis slowest-
/// varying. `[("a", [1, 2]), ("b", [10, 20])]` yields points
/// `a=1,b=10`, `a=1,b=20`, `a=2,b=10`, `a=2,b=20` with indices 0..4.
pub fn sweep_grid(axes: &[(String, Vec<f64>)]) -> Vec<SweepPoint> {
    if axes.is_empty() {
        return Vec::new();
    }
    let mut assignments: Vec<Vec<(String, f64)>> = vec![Vec::new()];
    for (name, values) in axes {
        let mut next = Vec::with_capacity(assignments.len() * values.len());
        for prefix in &assignments {
            for &v in values {
                let mut p = prefix.clone();
                p.push((name.clone(), v));
                next.push(p);
            }
        }
        assignments = next;
    }
    assignments
        .into_iter()
        .enumerate()
        .map(|(index, params)| SweepPoint { index, params })
        .collect()
}

/// Builder for a [`Pipeline::sweep`] run: the per-point lump and solve
/// requests plus the sweep-level switches.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    lump: LumpRequest,
    solve: SolveRequest,
    warm_start: bool,
    compile_kernel: bool,
    threads: usize,
    budget: Budget,
}

impl SweepRequest {
    /// A sweep applying `lump` then `solve` to every point, with
    /// warm-start chaining and kernel compilation on, serial, under an
    /// unlimited budget.
    pub fn new(lump: LumpRequest, solve: SolveRequest) -> Self {
        SweepRequest {
            lump,
            solve,
            warm_start: true,
            compile_kernel: true,
            threads: 1,
            budget: Budget::unlimited(),
        }
    }

    /// Toggles warm-start chaining (default on). Turn it **off** when
    /// per-point results must be bit-identical to independent cold
    /// solves: a warm start converges to the same fixed point but not
    /// the same bits.
    #[must_use]
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Toggles per-point kernel compilation (default on): the lumped
    /// kernel is compiled through the pipeline's compile stage (cached
    /// content-addressed, so points whose lumped content repeats reuse
    /// it) and handed to the solve as a prebuilt kernel.
    #[must_use]
    pub fn compile_kernel(mut self, on: bool) -> Self {
        self.compile_kernel = on;
        self
    }

    /// Worker threads for kernel compilation/products (`0` = one per
    /// hardware thread). Results are bit-identical for any value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Budget for the sweep loop itself (checked before every point)
    /// and the per-point compile stage. The lump and solve requests
    /// carry their own budgets.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The per-point lump request.
    pub fn lump_request(&self) -> &LumpRequest {
        &self.lump
    }

    /// The per-point solve request.
    pub fn solve_request(&self) -> &SolveRequest {
        &self.solve
    }
}

/// One sweep point's outcome and provenance.
#[derive(Debug, Clone)]
pub struct SweepPointResult {
    /// The point's position in the sweep.
    pub index: usize,
    /// The point's parameter assignment.
    pub params: Vec<(String, f64)>,
    /// The point's lump result (quotient MRP, partitions, stats).
    pub lump: LumpResult,
    /// Whether the whole lump stage was a store hit.
    pub lump_cached: bool,
    /// Levels whose partition was reused (seeded or whole-stage hit).
    pub levels_reused: usize,
    /// Levels refined from scratch for this point.
    pub levels_relumped: usize,
    /// Whether the solve was seeded from a neighbor's solution.
    pub warm_started: bool,
    /// The solve outcome (distribution or scalar).
    pub outcome: SolveOutcome,
    /// Whether the solve stage was a store hit.
    pub solve_cached: bool,
    /// The solve's attempt report.
    pub report: RunReport,
    /// Wall-clock time of this point (build + lump + compile + solve).
    pub elapsed: Duration,
}

/// A completed sweep: per-point results plus whole-run reuse totals.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One result per input point, in input order.
    pub points: Vec<SweepPointResult>,
    /// Total levels reused across all points.
    pub levels_reused: usize,
    /// Total levels re-lumped across all points.
    pub levels_relumped: usize,
    /// Total wall-clock time of the sweep.
    pub elapsed: Duration,
}

impl Pipeline {
    /// **Stage: sweep.** Runs `build → lump → compile → solve` for every
    /// point, reusing unchanged levels' partitions (per-level content
    /// keys → [`LumpRequest::seed_partitions`]), caching every per-point
    /// artifact under point-specific keys when a store is attached, and
    /// warm-starting each stationary solve from the nearest already-
    /// solved neighbor (unless [`SweepRequest::warm_start`] is off).
    ///
    /// `build` maps a point to its MRP — typically by re-rating a shared
    /// model skeleton and reusing a precomputed reachability MDD (rates
    /// must stay positive for the reach set to be rate-invariant).
    ///
    /// # Errors
    ///
    /// The first point failure aborts the sweep: builder errors, store
    /// write failures, interruptions
    /// ([`CoreError::Interrupted`](crate::CoreError::Interrupted) with
    /// phase `"sweep.point"` when this stage's own budget expires), and
    /// solve errors (after the solve request's own ladder is
    /// exhausted).
    pub fn sweep(
        &self,
        points: &[SweepPoint],
        request: &SweepRequest,
        build: impl Fn(&SweepPoint) -> Result<MdMrp>,
    ) -> Result<SweepOutcome> {
        let t0 = Instant::now();
        // Partitions learned this run, by per-level content key. The
        // store (when attached) extends this map across processes.
        let mut seen: HashMap<u64, Partition> = HashMap::new();
        // (parameter values, stationary solution) of solved points.
        let mut solved: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        let mut results = Vec::with_capacity(points.len());
        let mut levels_reused = 0usize;
        let mut levels_relumped = 0usize;
        for point in points {
            if let Err(reason) = request.budget.check() {
                return Err(crate::CoreError::Interrupted {
                    phase: "sweep.point",
                    reason,
                });
            }
            let point_t0 = Instant::now();
            let mut span = mdl_obs::span("sweep.point").with("point", point.index);

            let built = self.build_under(point_key(self.model_key(), point), || build(point))?;
            let keys = level_keys(&built.value, &request.lump);
            let seeds: Vec<Option<Partition>> = keys
                .iter()
                .map(|k| seen.get(k).cloned().or_else(|| self.fetch::<Partition>(*k)))
                .collect();
            let seeded = seeds.iter().filter(|s| s.is_some()).count();
            let lumped = self.lump(&built, &request.lump.clone().seed_partitions(seeds))?;
            let (reused, relumped) = if lumped.cached {
                (keys.len(), 0)
            } else {
                (seeded, keys.len() - seeded)
            };
            mdl_obs::counter("sweep.level.reuse").add(reused as u64);
            mdl_obs::counter("sweep.level.relump").add(relumped as u64);
            levels_reused += reused;
            levels_relumped += relumped;
            for (k, p) in keys.iter().zip(&lumped.value.partitions) {
                if !seen.contains_key(k) {
                    self.persist(*k, p)?;
                    seen.insert(*k, p.clone());
                }
            }

            let lumped_mrp = Staged {
                value: lumped.value.mrp.clone(),
                key: lumped.key,
                cached: lumped.cached,
            };
            let mut solve = request.solve.clone();
            if request.compile_kernel {
                let kernel = self.compile(&lumped_mrp, request.threads, &request.budget)?;
                solve = solve.prebuilt_kernel(kernel.value.clone());
            }

            let values: Vec<f64> = point.params.iter().map(|(_, v)| *v).collect();
            let n = lumped_mrp.value.num_states();
            let mut warm_started = false;
            if request.warm_start && matches!(request.solve.target(), SolveTarget::Stationary) {
                // Nearest solved neighbor whose lumped chain has the same
                // size; earlier points win ties (deterministic order).
                let mut best: Option<(f64, usize)> = None;
                for (i, (pv, sol)) in solved.iter().enumerate() {
                    if sol.len() != n {
                        continue;
                    }
                    let d: f64 = pv.iter().zip(&values).map(|(a, b)| (a - b) * (a - b)).sum();
                    let better = match best {
                        None => true,
                        Some((bd, _)) => d < bd,
                    };
                    if better {
                        best = Some((d, i));
                    }
                }
                if let Some((_, i)) = best {
                    solve = solve.warm_start(Some(solved[i].1.clone()));
                    warm_started = true;
                }
            }

            let (result, report) = self.solve(&lumped_mrp, &solve);
            let outcome = result?;
            if matches!(request.solve.target(), SolveTarget::Stationary) {
                if let Some(sol) = outcome.value.solution() {
                    solved.push((values, sol.probabilities.clone()));
                }
            }

            span.record("reused", reused);
            span.record("relumped", relumped);
            span.record("warm", warm_started as usize);
            span.finish();
            results.push(SweepPointResult {
                index: point.index,
                params: point.params.clone(),
                lump: lumped.value,
                lump_cached: lumped.cached,
                levels_reused: reused,
                levels_relumped: relumped,
                warm_started,
                outcome: outcome.value,
                solve_cached: outcome.cached,
                report,
                elapsed: point_t0.elapsed(),
            });
        }
        Ok(SweepOutcome {
            points: results,
            levels_reused,
            levels_relumped,
            elapsed: t0.elapsed(),
        })
    }
}

/// The build-stage key of one sweep point: the model key plus the full
/// parameter assignment (names and exact value bits). Point indices are
/// deliberately excluded — reordering a grid must not invalidate its
/// artifacts.
fn point_key(model_key: u64, point: &SweepPoint) -> u64 {
    stage_key("sweep.point", model_key, |h| {
        h.write_usize(point.params.len());
        for (name, value) in &point.params {
            h.write_str(name);
            h.write_f64(*value);
        }
    })
}

/// Per-level partition content keys: everything the level's partition
/// computation reads, and nothing else.
///
/// A level's partition is a function of (see `run_single` phase 1):
/// the lump request's result-relevant options, the level's local size,
/// the reachability MDD (compatibility partition), the level's reward
/// and initial values, and the level's MD nodes — their entries' exact
/// positions and formal sums, with child node **indices** as formal
/// symbols (the refinement never expands children, so coefficient
/// changes at other levels leave this level's key — and partition —
/// unchanged). Two MRPs agreeing on all of that for a level compute
/// bit-identical partitions there, which is precisely the seeding
/// contract of [`LumpRequest::seed_partitions`].
fn level_keys(mrp: &MdMrp, request: &LumpRequest) -> Vec<u64> {
    let md = mrp.matrix().md();
    let mut base = Fnv1a::new();
    base.write_str("sweep.part");
    request.write_cache_key(&mut base);
    base.write_u64(Fnv1a::hash_bytes(&mrp.matrix().reach().to_bytes()));
    (0..md.num_levels())
        .map(|level| {
            let mut h = base.clone();
            h.write_usize(level);
            h.write_usize(md.sizes()[level]);
            for &v in mrp.reward().level_values(level) {
                h.write_f64(v);
            }
            for &v in mrp.initial().level_values(level) {
                h.write_f64(v);
            }
            let nodes = md.level_nodes(level);
            h.write_usize(nodes.len());
            for node in nodes {
                h.write_usize(node.entries().len());
                for e in node.entries() {
                    h.write_u64(e.row as u64);
                    h.write_u64(e.col as u64);
                    h.write_usize(e.terms.len());
                    for t in &e.terms {
                        h.write_f64(t.coef);
                        match t.child {
                            ChildId::Terminal => h.write_u64(u64::MAX),
                            ChildId::Node(n) => h.write_u64(n as u64),
                        }
                    }
                }
            }
            h.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{Combiner, DecomposableVector};
    use crate::lump::LumpKind;
    use crate::pipeline::model_source_key;
    use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
    use mdl_mdd::Mdd;
    use mdl_store::Store;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    /// The lumpable 2×3 model, with the level-1 cycle rate as the swept
    /// parameter. Level 2's symmetry (states 1 and 2) is rate-invariant.
    fn build_mrp(cycle_rate: f64) -> Result<MdMrp> {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        w.push(1, 2, 0.5);
        w.push(2, 1, 0.5);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, cycle_rate)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md()?, Mdd::full(vec![2, 3]).unwrap())?;
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]], Combiner::Product)?;
        let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0])?;
        MdMrp::new(matrix, reward, initial)
    }

    fn rate_of(point: &SweepPoint) -> f64 {
        point.params[0].1
    }

    fn grid(rates: &[f64]) -> Vec<SweepPoint> {
        sweep_grid(&[("rate".to_string(), rates.to_vec())])
    }

    fn request() -> SweepRequest {
        SweepRequest::new(
            LumpRequest::new(LumpKind::Ordinary),
            SolveRequest::stationary(),
        )
    }

    #[test]
    fn grid_expands_cartesian_product_in_order() {
        let points = sweep_grid(&[
            ("a".to_string(), vec![1.0, 2.0]),
            ("b".to_string(), vec![10.0, 20.0, 30.0]),
        ]);
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0].params,
            vec![("a".into(), 1.0), ("b".into(), 10.0)]
        );
        assert_eq!(
            points[1].params,
            vec![("a".into(), 1.0), ("b".into(), 20.0)]
        );
        assert_eq!(
            points[3].params,
            vec![("a".into(), 2.0), ("b".into(), 10.0)]
        );
        assert_eq!(points[5].index, 5);
        assert!(sweep_grid(&[]).is_empty());
    }

    #[test]
    fn sweep_reuses_unchanged_levels_and_matches_naive() {
        let _guard = mdl_obs::testing::guard();
        let p = Pipeline::new(model_source_key("sweep-model"));
        let points = grid(&[2.0, 3.0, 4.0]);
        // Bit-identity check runs warm starts off: reuse alone is
        // bit-exact, warm starts change low-order bits.
        let outcome = p
            .sweep(&points, &request().warm_start(false), |pt| {
                build_mrp(rate_of(pt))
            })
            .unwrap();
        assert_eq!(outcome.points.len(), 3);
        // Level 2 is rate-invariant across the sweep: reused from point 2
        // on. Level 1's rate changes every point: always re-lumped.
        assert_eq!(outcome.points[0].levels_reused, 0);
        assert_eq!(outcome.points[0].levels_relumped, 2);
        for r in &outcome.points[1..] {
            assert_eq!(r.levels_reused, 1, "level 2 partition reused");
            assert_eq!(r.levels_relumped, 1, "level 1 re-lumped");
        }
        assert_eq!(outcome.levels_reused, 2);
        assert_eq!(outcome.levels_relumped, 4);

        // Every point bit-identical to an independent full run.
        for (pt, r) in points.iter().zip(&outcome.points) {
            let mrp = build_mrp(rate_of(pt)).unwrap();
            let naive = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
            assert_eq!(r.lump.partitions, naive.partitions);
            assert_eq!(
                r.lump
                    .mrp
                    .matrix()
                    .flatten()
                    .max_abs_diff(&naive.mrp.matrix().flatten()),
                0.0
            );
            let (cold, _) = SolveRequest::stationary().run(&naive.mrp);
            let cold = cold.unwrap().into_solution().unwrap();
            assert_eq!(
                r.outcome.solution().unwrap().probabilities,
                cold.probabilities,
                "cold sweep solve bit-identical to naive"
            );
            assert!(!r.warm_started);
        }
    }

    #[test]
    fn warm_start_chains_from_nearest_neighbor() {
        let _guard = mdl_obs::testing::guard();
        let p = Pipeline::new(model_source_key("sweep-warm"));
        let points = grid(&[2.0, 2.1, 2.2]);
        let outcome = p
            .sweep(&points, &request(), |pt| build_mrp(rate_of(pt)))
            .unwrap();
        assert!(!outcome.points[0].warm_started, "first point is cold");
        assert!(outcome.points[1].warm_started);
        assert!(outcome.points[2].warm_started);
        // Warm-started solves still land on the same fixed point.
        for (pt, r) in points.iter().zip(&outcome.points) {
            let mrp = build_mrp(rate_of(pt)).unwrap();
            let naive = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
            let (cold, _) = SolveRequest::stationary().run(&naive.mrp);
            let cold = cold.unwrap().into_solution().unwrap();
            let warm = r.outcome.solution().unwrap();
            for (a, b) in warm.probabilities.iter().zip(&cold.probabilities) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn store_backed_sweep_reuses_across_runs() {
        let _guard = mdl_obs::testing::guard();
        let dir = std::env::temp_dir().join(format!("mdl-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let points = grid(&[2.0, 3.0]);

        let p = Pipeline::with_store(model_source_key("sweep-store"), store.clone());
        let cold = p
            .sweep(&points, &request().warm_start(false), |pt| {
                build_mrp(rate_of(pt))
            })
            .unwrap();
        assert!(!cold.points[0].lump_cached);

        // A fresh process over the same store: every stage hits, and the
        // level-reuse accounting reports full reuse.
        let q = Pipeline::with_store(model_source_key("sweep-store"), store);
        let warm = q
            .sweep(&points, &request().warm_start(false), |_| {
                panic!("warm sweep must not rebuild")
            })
            .unwrap();
        for (c, w) in cold.points.iter().zip(&warm.points) {
            assert!(w.lump_cached);
            assert!(w.solve_cached);
            assert_eq!(w.levels_relumped, 0);
            assert_eq!(
                w.outcome.solution().unwrap().probabilities,
                c.outcome.solution().unwrap().probabilities
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_budget_interrupts_the_sweep() {
        let p = Pipeline::new(model_source_key("sweep-deadline"));
        let err = p
            .sweep(
                &grid(&[2.0, 3.0]),
                &request().budget(Budget::unlimited().deadline_in(Duration::ZERO)),
                |pt| build_mrp(rate_of(pt)),
            )
            .unwrap_err();
        match err {
            crate::CoreError::Interrupted { phase, .. } => assert_eq!(phase, "sweep.point"),
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn level_keys_isolate_the_changed_level() {
        let a = build_mrp(2.0).unwrap();
        let b = build_mrp(3.0).unwrap();
        let req = LumpRequest::new(LumpKind::Ordinary);
        let ka = level_keys(&a, &req);
        let kb = level_keys(&b, &req);
        assert_eq!(ka.len(), 2);
        assert_ne!(ka[0], kb[0], "changed level gets a new key");
        assert_eq!(ka[1], kb[1], "unchanged level keeps its key");
        // Different request options change every key.
        let exact = level_keys(&a, &LumpRequest::new(LumpKind::Exact));
        assert_ne!(ka[0], exact[0]);
        assert_ne!(ka[1], exact[1]);
    }
}
