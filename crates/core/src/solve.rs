//! Unified solve requests for symbolic MRPs.
//!
//! [`MdMrp`] grew one entry point per (measure, kernel, resilience)
//! combination — `stationary_with`, `transient_with`,
//! `expected_accumulated_reward_with`, `solve_resilient`,
//! `transient_resilient`. [`SolveRequest`] folds them into one builder:
//! pick a [`SolveTarget`], adjust options, optionally enable the
//! fallback ladder, and [`run`](SolveRequest::run). Every run — direct
//! or resilient — returns the same `(result, RunReport)` shape, so
//! callers render attempts uniformly.

use std::sync::Arc;
use std::time::Instant;

use mdl_ctmc::{
    AttemptOutcome, AttemptRecord, ResilientError, RunReport, Solution, SolverOptions,
    StationaryMethod, TransientOptions,
};
use mdl_md::CompiledMdMatrix;
use mdl_obs::Budget;
use mdl_store::Fnv1a;

use crate::mrp::{KernelKind, KernelOptions, MdMrp};
use crate::resilient::{method_label, KernelRung, MdResilientOptions};
use crate::Result;

/// What a [`SolveRequest`] computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveTarget {
    /// The stationary distribution.
    Stationary,
    /// The transient distribution at time `t`.
    Transient(f64),
    /// The expected reward accumulated over `[0, t]`
    /// (`E[∫₀ᵗ r(X_u) du]`) — a scalar, so the outcome is a
    /// [`SolveOutcome::Value`].
    AccumulatedReward(f64),
}

/// What a [`SolveRequest`] run produced.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// A probability distribution (stationary or transient targets).
    Distribution(Solution),
    /// A scalar (the accumulated-reward target).
    Value(f64),
}

impl SolveOutcome {
    /// The distribution, if this outcome is one.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveOutcome::Distribution(sol) => Some(sol),
            SolveOutcome::Value(_) => None,
        }
    }

    /// Consumes the outcome into its distribution, if it is one.
    pub fn into_solution(self) -> Option<Solution> {
        match self {
            SolveOutcome::Distribution(sol) => Some(sol),
            SolveOutcome::Value(_) => None,
        }
    }

    /// The scalar, if this outcome is one.
    pub fn value(&self) -> Option<f64> {
        match self {
            SolveOutcome::Distribution(_) => None,
            SolveOutcome::Value(v) => Some(*v),
        }
    }
}

/// Builder unifying every way to solve an [`MdMrp`].
///
/// A plain request solves directly with the configured kernel; with
/// [`fallback`](Self::fallback) enabled it degrades through a
/// `(method, kernel)` ladder instead ([`MdResilientOptions`] semantics).
/// Both paths return a [`RunReport`] recording every attempt.
///
/// ```no_run
/// use mdl_core::{SolveRequest, SolveTarget};
///
/// # fn demo(mrp: &mdl_core::MdMrp) {
/// let (result, report) = SolveRequest::stationary()
///     .threads(4)
///     .fallback(true)
///     .run(mrp);
/// println!("{}", report.render());
/// let solution = result.unwrap().into_solution().unwrap();
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SolveRequest {
    target: SolveTarget,
    solver: SolverOptions,
    transient: TransientOptions,
    kernel: KernelOptions,
    fallback: bool,
    ladder: Option<Vec<(StationaryMethod, KernelRung)>>,
    rungs: Option<Vec<KernelRung>>,
    prebuilt: Option<Arc<CompiledMdMatrix>>,
}

impl SolveRequest {
    /// A direct (no-fallback) request for `target` with default options.
    pub fn new(target: SolveTarget) -> Self {
        SolveRequest {
            target,
            solver: SolverOptions::default(),
            transient: TransientOptions::default(),
            kernel: KernelOptions::default(),
            fallback: false,
            ladder: None,
            rungs: None,
            prebuilt: None,
        }
    }

    /// Shorthand for [`SolveTarget::Stationary`].
    pub fn stationary() -> Self {
        Self::new(SolveTarget::Stationary)
    }

    /// Shorthand for [`SolveTarget::Transient`] at time `t`.
    pub fn transient(t: f64) -> Self {
        Self::new(SolveTarget::Transient(t))
    }

    /// Shorthand for [`SolveTarget::AccumulatedReward`] over `[0, t]`.
    pub fn accumulated_reward(t: f64) -> Self {
        Self::new(SolveTarget::AccumulatedReward(t))
    }

    /// Replaces the stationary-solver options.
    #[must_use]
    pub fn solver_options(mut self, options: SolverOptions) -> Self {
        self.solver = options;
        self
    }

    /// Replaces the transient (uniformization) options.
    #[must_use]
    pub fn transient_options(mut self, options: TransientOptions) -> Self {
        self.transient = options;
        self
    }

    /// Sets the stationary iteration method (ignored by transient
    /// targets, whose method is always uniformization).
    #[must_use]
    pub fn method(mut self, method: StationaryMethod) -> Self {
        self.solver.method = method;
        self
    }

    /// Sets the matrix–vector kernel for direct solves (and the first
    /// rung's kernel when no explicit ladder is given).
    #[must_use]
    pub fn kernel(mut self, kind: KernelKind) -> Self {
        self.kernel.kind = kind;
        self
    }

    /// Worker threads for compiled-kernel products (`0` = one per
    /// hardware thread).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.kernel.threads = threads;
        self
    }

    /// Runs everything — compile steps included — under `budget` (applied
    /// to both the stationary and transient option blocks).
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.solver.budget = budget.clone();
        self.transient.budget = budget;
        self
    }

    /// Adds cooperative cancellation via `token` to whatever budget is
    /// already configured — the server plumbs a per-request token here
    /// so a client disconnect interrupts an in-flight solve. Order
    /// relative to [`budget`](Self::budget) matters: call this after it.
    #[must_use]
    pub fn cancelled_by(mut self, token: &mdl_obs::CancelToken) -> Self {
        self.solver.budget = self.solver.budget.clone().cancelled_by(token);
        self.transient.budget = self.transient.budget.clone().cancelled_by(token);
        self
    }

    /// Seeds the stationary iteration from `start` (ignored by transient
    /// targets). A warm start changes where the iteration begins, never
    /// the fixed point it converges to, so it is excluded from the cache
    /// key; the solver validates, L1-normalizes and otherwise does not
    /// trust the vector, and the divergence/stagnation guards fall back
    /// to a cold restart through the usual ladder on a bad seed.
    #[must_use]
    pub fn warm_start(mut self, start: Option<Vec<f64>>) -> Self {
        self.solver.warm_start = start;
        self
    }

    /// Enables the fallback ladder: on retryable failures the solve
    /// degrades through `(method, kernel)` rungs instead of stopping.
    #[must_use]
    pub fn fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Overrides the stationary fallback ladder (implies
    /// [`fallback`](Self::fallback)).
    #[must_use]
    pub fn ladder(mut self, ladder: Vec<(StationaryMethod, KernelRung)>) -> Self {
        self.ladder = Some(ladder);
        self.fallback = true;
        self
    }

    /// Overrides the kernel rungs for transient / accumulated fallback
    /// (implies [`fallback`](Self::fallback)).
    #[must_use]
    pub fn rungs(mut self, rungs: Vec<KernelRung>) -> Self {
        self.rungs = Some(rungs);
        self.fallback = true;
        self
    }

    /// Supplies a pre-built compiled kernel (e.g. deserialized from the
    /// pipeline's artifact store): compiled rungs use it directly instead
    /// of compiling. The kernel must belong to the MRP the request is run
    /// against (the pipeline guarantees this by deriving both from the
    /// same stage key). Does not enter the cache key — the products are
    /// bit-identical either way.
    #[must_use]
    pub fn prebuilt_kernel(mut self, kernel: Arc<CompiledMdMatrix>) -> Self {
        self.prebuilt = Some(kernel);
        self
    }

    /// What this request computes.
    pub fn target(&self) -> SolveTarget {
        self.target
    }

    /// Feeds every **result-relevant** field into a cache-key hash.
    ///
    /// Included: the target (and its time point), the stationary method
    /// and its convergence parameters, the uniformization parameters, the
    /// kernel kind, and the fallback ladder/rungs. Excluded — because the
    /// result is bit-identical regardless (DESIGN.md §12) or they only
    /// change *where* the iteration starts, not which fixed point it
    /// reaches: thread counts, budgets, warm starts, checkpoint sinks,
    /// resume snapshots, and any pre-built kernel.
    pub fn write_cache_key(&self, h: &mut Fnv1a) {
        match self.target {
            SolveTarget::Stationary => h.write_u64(0),
            SolveTarget::Transient(t) => {
                h.write_u64(1);
                h.write_f64(t);
            }
            SolveTarget::AccumulatedReward(t) => {
                h.write_u64(2);
                h.write_f64(t);
            }
        }
        h.write_str(method_label(self.solver.method));
        h.write_f64(self.solver.tolerance);
        h.write_usize(self.solver.max_iterations);
        h.write_usize(self.solver.check_every);
        h.write_f64(self.solver.jacobi_damping);
        h.write_usize(self.solver.stagnation_window);
        h.write_f64(self.transient.epsilon);
        h.write_usize(self.transient.max_steps);
        h.write_f64(self.transient.steady_state_epsilon);
        h.write_str(self.direct_rung().label());
        h.write_u64(self.fallback as u64);
        match &self.ladder {
            None => h.write_u64(0),
            Some(ladder) => {
                h.write_usize(1 + ladder.len());
                for (m, k) in ladder {
                    h.write_str(method_label(*m));
                    h.write_str(k.label());
                }
            }
        }
        match &self.rungs {
            None => h.write_u64(0),
            Some(rungs) => {
                h.write_usize(1 + rungs.len());
                for k in rungs {
                    h.write_str(k.label());
                }
            }
        }
    }

    fn direct_rung(&self) -> KernelRung {
        match self.kernel.kind {
            KernelKind::Walk => KernelRung::Walk,
            KernelKind::Compiled => KernelRung::Compiled,
        }
    }

    fn kernel_rungs(&self) -> Vec<KernelRung> {
        if !self.fallback {
            return vec![self.direct_rung()];
        }
        self.rungs
            .clone()
            .unwrap_or_else(|| vec![KernelRung::Compiled, KernelRung::Walk, KernelRung::FlatCsr])
    }

    /// Executes the request. The [`RunReport`] records every attempt —
    /// exactly one for a direct solve that succeeds, more when the
    /// fallback ladder degrades.
    pub fn run(&self, mrp: &MdMrp) -> (Result<SolveOutcome>, RunReport) {
        match self.target {
            SolveTarget::Stationary => {
                let ladder = if self.fallback {
                    self.ladder
                        .clone()
                        .unwrap_or_else(|| MdResilientOptions::default().ladder)
                } else {
                    vec![(self.solver.method, self.direct_rung())]
                };
                let options = MdResilientOptions {
                    ladder,
                    options: self.solver.clone(),
                    threads: self.kernel.threads,
                };
                let (result, report) =
                    mrp.solve_resilient_with_kernel(&options, self.prebuilt.clone());
                (result.map(SolveOutcome::Distribution), report)
            }
            SolveTarget::Transient(t) => {
                let (result, report) = mrp.transient_resilient_with_kernel(
                    t,
                    &self.transient,
                    &self.kernel_rungs(),
                    self.kernel.threads,
                    self.prebuilt.clone(),
                );
                (result.map(SolveOutcome::Distribution), report)
            }
            SolveTarget::AccumulatedReward(t) => self.run_accumulated(mrp, t),
        }
    }

    /// Accumulated reward through the kernel rungs. `solve_ladder` is
    /// `Solution`-typed, so this synthesizes the [`AttemptRecord`]s for
    /// the scalar result itself (same outcome classification).
    fn run_accumulated(&self, mrp: &MdMrp, t: f64) -> (Result<SolveOutcome>, RunReport) {
        let initial = mrp.initial_vector();
        let reward = mrp.reward_vector();
        let mut compiled: Option<Arc<CompiledMdMatrix>> = self.prebuilt.clone();
        let mut report = RunReport::default();
        let mut last_err = None;
        for rung in self.kernel_rungs() {
            let start = Instant::now();
            let attempt: Result<f64> = (|| {
                let value = match rung {
                    KernelRung::Compiled => {
                        if compiled.is_none() {
                            compiled = Some(Arc::new(CompiledMdMatrix::compile_budgeted(
                                mrp.matrix(),
                                self.kernel.threads,
                                &self.transient.budget,
                            )?));
                        }
                        let kernel = compiled.as_deref().expect("just compiled");
                        mdl_ctmc::accumulated_reward(kernel, &initial, &reward, t, &self.transient)?
                    }
                    KernelRung::Walk => mdl_ctmc::accumulated_reward(
                        mrp.matrix(),
                        &initial,
                        &reward,
                        t,
                        &self.transient,
                    )?,
                    KernelRung::FlatCsr => mdl_ctmc::accumulated_reward(
                        &mrp.matrix().flatten(),
                        &initial,
                        &reward,
                        t,
                        &self.transient,
                    )?,
                };
                Ok(value)
            })();
            let elapsed = start.elapsed();
            match attempt {
                Ok(value) => {
                    report.attempts.push(AttemptRecord {
                        method: "uniformization",
                        kernel: Some(rung.label()),
                        iterations: 0,
                        residual: f64::NAN,
                        outcome: AttemptOutcome::Converged,
                        error: None,
                        elapsed,
                    });
                    return (Ok(SolveOutcome::Value(value)), report);
                }
                Err(e) => {
                    let (iterations, residual) = e.progress().unwrap_or((0, f64::NAN));
                    report.attempts.push(AttemptRecord {
                        method: "uniformization",
                        kernel: Some(rung.label()),
                        iterations,
                        residual,
                        outcome: e.outcome(),
                        error: Some(e.to_string()),
                        elapsed,
                    });
                    let stop = !e.retryable();
                    last_err = Some(e);
                    if stop {
                        break;
                    }
                }
            }
        }
        (
            Err(last_err.expect("at least one kernel rung attempted")),
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{Combiner, DecomposableVector};
    use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn sample_mrp() -> MdMrp {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(2.0, vec![None, Some(cycle(2, 1.0))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap();
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 2], &[0, 0]).unwrap();
        MdMrp::new(m, reward, initial).unwrap()
    }

    #[test]
    fn direct_stationary_matches_legacy_entry_point() {
        let mrp = sample_mrp();
        let legacy = mrp
            .stationary_with(&SolverOptions::default(), &KernelOptions::default())
            .unwrap();
        let (result, report) = SolveRequest::stationary().run(&mrp);
        let sol = result.unwrap().into_solution().unwrap();
        assert_eq!(sol.probabilities, legacy.probabilities);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].kernel, Some("compiled"));
        assert!(report.converged());
    }

    #[test]
    fn direct_walk_kernel_is_honored() {
        let mrp = sample_mrp();
        let (result, report) = SolveRequest::stationary()
            .kernel(KernelKind::Walk)
            .run(&mrp);
        assert!(result.is_ok());
        assert_eq!(report.attempts[0].kernel, Some("walk"));
    }

    #[test]
    fn transient_request_matches_legacy_entry_point() {
        let mrp = sample_mrp();
        let legacy = mrp.transient(0.7, &TransientOptions::default()).unwrap();
        let (result, report) = SolveRequest::transient(0.7).fallback(true).run(&mrp);
        let sol = result.unwrap().into_solution().unwrap();
        assert_eq!(sol.probabilities, legacy.probabilities);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].method, "uniformization");
    }

    #[test]
    fn accumulated_request_matches_legacy_and_reports() {
        let mrp = sample_mrp();
        let legacy = mrp
            .expected_accumulated_reward(0.9, &TransientOptions::default())
            .unwrap();
        let (result, report) = SolveRequest::accumulated_reward(0.9).run(&mrp);
        let value = result.unwrap().value().unwrap();
        assert_eq!(value, legacy);
        assert_eq!(report.attempts.len(), 1);
        assert!(report.converged());
    }

    #[test]
    fn interrupted_compile_falls_back_when_enabled() {
        // Node cap 0 interrupts the compile; with fallback the walk rung
        // (no compile step) still answers, without it the error surfaces.
        let mrp = sample_mrp();
        let budget = Budget::unlimited().node_cap(0);

        let (direct, direct_report) = SolveRequest::stationary().budget(budget.clone()).run(&mrp);
        assert!(direct.is_err());
        assert_eq!(direct_report.attempts.len(), 1);

        let (result, report) = SolveRequest::stationary()
            .budget(budget.clone())
            .ladder(vec![
                (StationaryMethod::Power, KernelRung::Compiled),
                (StationaryMethod::Power, KernelRung::Walk),
            ])
            .run(&mrp);
        assert!(result.is_ok(), "{report:?}");
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::Interrupted);
        assert_eq!(report.attempts[1].kernel, Some("walk"));

        let (acc, acc_report) = SolveRequest::accumulated_reward(0.5)
            .budget(budget)
            .rungs(vec![KernelRung::Compiled, KernelRung::Walk])
            .run(&mrp);
        assert!(acc.is_ok(), "{acc_report:?}");
        assert_eq!(acc_report.attempts.len(), 2);
        assert_eq!(acc_report.attempts[0].outcome, AttemptOutcome::Interrupted);
        assert!(acc_report.converged());
    }

    #[test]
    fn solutions_identical_across_thread_counts() {
        let mrp = sample_mrp();
        let (reference, _) = SolveRequest::stationary().run(&mrp);
        let reference = reference.unwrap().into_solution().unwrap();
        for threads in [2usize, 4] {
            let (result, _) = SolveRequest::stationary().threads(threads).run(&mrp);
            let sol = result.unwrap().into_solution().unwrap();
            assert_eq!(sol.probabilities, reference.probabilities);
        }
    }
}
