use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use mdl_linalg::weight::{add_down, add_up, next_down, next_up};
use mdl_linalg::{Interval, Tolerance};
use mdl_md::{ChildId, MdMatrix, MdNode, TermSite};
use mdl_obs::{Budget, ThreadPool};
use mdl_partition::{Partition, RefinementStats};

use crate::decomp::LumpMode;
use crate::local::{comp_lumping_level_per_node, comp_lumping_level_pooled};
use crate::mrp::MdMrp;
use crate::Result;

/// Which lumpability notion drives the algorithm (Definition 2/3 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LumpKind {
    /// Ordinary lumpability: rows into classes agree; preserves all
    /// reward measures based on `r`.
    Ordinary,
    /// Exact lumpability: columns from classes and exit rates agree;
    /// preserves transient measures for class-uniform initial
    /// distributions.
    Exact,
}

/// Options for [`LumpRequest`].
#[derive(Debug, Clone, Copy)]
pub struct LumpOptions {
    /// How rate coefficients are compared (see [`Tolerance`]).
    pub tolerance: Tolerance,
    /// Run a quasi-reduction pass after lumping, merging level nodes that
    /// became equal. The paper's algorithm does not (its node counts are
    /// unchanged by construction); this is the extension measured by the
    /// ablation experiments.
    pub quasi_reduce: bool,
    /// Use the literal per-node fixed point of Fig. 3a instead of the
    /// combined-key refinement (both compute the same partition; the
    /// combined form is faster).
    pub per_node_fixed_point: bool,
    /// Canonicalize the MD (Miner-style scale normalization,
    /// [`Md::canonicalize`](mdl_md::Md::canonicalize)) before computing
    /// partitions: nodes that are scalar multiples of each other merge,
    /// which can only make the formal-sum keys — and therefore the
    /// partitions — coarser. Extension; the paper discusses canonical MDs
    /// as the subclass where node identity captures matrix identity.
    pub canonicalize: bool,
    /// Worker threads for the lumping engine: the per-level initial
    /// partitions are computed concurrently and the formal-sum key phase
    /// fans out block-parallel. `0` means one worker per hardware thread;
    /// the default is `1` (serial). The computed partitions — and the
    /// lumped MD — are bit-identical for every thread count (DESIGN.md
    /// §12).
    pub threads: usize,
}

impl Default for LumpOptions {
    fn default() -> Self {
        LumpOptions {
            tolerance: Tolerance::default(),
            quasi_reduce: false,
            per_node_fixed_point: false,
            canonicalize: false,
            threads: 1,
        }
    }
}

/// Per-level work and outcome counters.
#[derive(Debug, Clone)]
pub struct LevelLumpStats {
    /// The level (0-based).
    pub level: usize,
    /// Local state-space size before lumping (`|S_i|`).
    pub original_size: usize,
    /// Number of classes after lumping (`|Ŝ_i|`).
    pub lumped_size: usize,
    /// Refinement work counters.
    pub refinement: RefinementStats,
    /// Wall-clock time spent computing this level's partition.
    pub elapsed: Duration,
}

/// Whole-run statistics of a compositional lump.
#[derive(Debug, Clone)]
pub struct LumpStats {
    /// Per-level breakdown.
    pub per_level: Vec<LevelLumpStats>,
    /// Reachable states before lumping.
    pub original_states: u64,
    /// Reachable states after lumping.
    pub lumped_states: u64,
    /// Symbolic representation memory (MD + MDD) before, in bytes.
    pub memory_before: usize,
    /// Symbolic representation memory (MD + MDD) after, in bytes.
    pub memory_after: usize,
    /// Nodes merged by the optional quasi-reduction post-pass.
    pub nodes_merged: usize,
    /// Lumping rounds executed: `1` for a single pass; for an iterated
    /// lump ([`LumpRequest::iterate`]) the number of passes until the
    /// fixed point (the final, unproductive pass included).
    pub rounds: usize,
    /// The largest per-lumped-transition rate deviation absorbed by a
    /// tolerance lump: the maximum distance from a lumped term's stored
    /// coefficient to the farthest member aggregate it stands in for.
    /// Exactly `0.0` for [`Tolerance::Exact`] runs and for exactly
    /// lumpable models (every member aggregate equals the
    /// representative's).
    pub max_rate_deviation: f64,
    /// Total wall-clock time of the lump.
    pub elapsed: Duration,
}

impl LumpStats {
    /// Overall state-space reduction factor.
    pub fn reduction_factor(&self) -> f64 {
        if self.lumped_states == 0 {
            return 1.0;
        }
        self.original_states as f64 / self.lumped_states as f64
    }
}

/// Result of a compositional lump: the lumped symbolic MRP, the per-level
/// partitions that produced it, and work statistics.
#[derive(Debug, Clone)]
pub struct LumpResult {
    /// The lumped MRP (matrix diagram + MDD + lumped vectors).
    pub mrp: MdMrp,
    /// One partition per level (classes = lumped local states, in order).
    pub partitions: Vec<Partition>,
    /// Work statistics.
    pub stats: LumpStats,
    /// For **exact** lumps: the exit rate `R(s, S)` of each lumped state's
    /// representative (constant per class by Theorem 1b). Needed because
    /// the exact quotient's diagonal is not recoverable from its row sums;
    /// see [`crate::exact`].
    pub exact_exit_rates: Option<Vec<f64>>,
    /// Per-lumped-term rate envelopes recorded by a tolerance lump
    /// ([`Tolerance::Decimals`]): the certified `[min, max]` of the member
    /// aggregates each lumped coefficient stands in for. `None` for
    /// [`Tolerance::Exact`] runs, and after a quasi-reduction that merged
    /// nodes or an iterated run (both invalidate the `(level, node)`
    /// keying — run single-pass with `quasi_reduce` off for bounds).
    pub envelope: Option<RateEnvelope>,
}

/// Certified rate envelopes of a tolerance lump, keyed by lumped-term
/// coordinates: `(level, node index, row class, column class, child)` —
/// exactly a [`TermSite`], because
/// [`Md::replace_level`](mdl_md::Md::replace_level) preserves per-level
/// node count and order, so the lumped diagram's node indices match the
/// original's.
///
/// For each recorded term, the interval encloses every member aggregate
/// the lumped coefficient stands in for (accumulated with directed
/// rounding and widened one ulp outward), **and** the stored coefficient
/// itself. Terms that lump exactly are not recorded: looking them up
/// yields the degenerate point interval, so an exactly lumpable model
/// produces an empty envelope.
#[derive(Debug, Clone, Default)]
pub struct RateEnvelope {
    map: HashMap<(u32, u32, u32, u32, ChildId), Interval>,
    max_deviation: f64,
}

impl RateEnvelope {
    /// The certified rate interval of one compiled term: the recorded
    /// envelope, or the degenerate point interval of the stored
    /// coefficient when the term lumped exactly. This is the weight
    /// source for
    /// [`CompiledMdMatrix::compile_weighted`](mdl_md::CompiledMdMatrix)
    /// on the bounds path.
    pub fn widen(&self, site: &TermSite) -> Interval {
        self.map
            .get(&(site.level, site.node, site.row, site.col, site.child))
            .copied()
            .unwrap_or_else(|| Interval::point(site.coef))
    }

    /// Number of inexactly lumped terms recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when every term lumped exactly (zero-width everywhere).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The largest distance from a stored coefficient to its envelope's
    /// farther end — the headline "rate deviation absorbed" figure
    /// surfaced in [`LumpStats::max_rate_deviation`].
    pub fn max_deviation(&self) -> f64 {
        self.max_deviation
    }

    /// Records one inexactly lumped term: hull of the member aggregates
    /// `[lo, hi]` and the stored coefficient, widened one ulp outward.
    /// Exact terms (`lo == hi == stored`) are skipped.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        level: u32,
        node: u32,
        row: u32,
        col: u32,
        child: ChildId,
        lo: f64,
        hi: f64,
        stored: f64,
    ) {
        if lo == hi && lo == stored {
            return;
        }
        let lo = next_down(lo.min(stored));
        let hi = next_up(hi.max(stored));
        self.max_deviation = self.max_deviation.max(stored - lo).max(hi - stored);
        self.map
            .insert((level, node, row, col, child), Interval { lo, hi });
    }
}

impl LumpResult {
    /// Number of original states aggregated by each lumped state (the
    /// global class sizes `|C|`, in lumped-MDD index order).
    ///
    /// Because the partitions are MDD-compatible, the reachable set is a
    /// union of full class products, so each size is the product of the
    /// per-level class sizes.
    pub fn class_sizes(&self) -> Vec<u64> {
        let reach = self.mrp.matrix().reach();
        let mut sizes = vec![0u64; reach.count() as usize];
        reach.for_each_tuple(|class_tuple, idx| {
            let size: u64 = class_tuple
                .iter()
                .enumerate()
                .map(|(l, &c)| self.partitions[l].members(c as usize).len() as u64)
                .product();
            sizes[idx as usize] = size;
        });
        sizes
    }

    /// Measure computation for an exactly lumped chain, or `None` for an
    /// ordinary lump (whose [`MdMrp`] methods are directly correct).
    pub fn exact_measures(&self) -> Option<crate::exact::ExactMeasures<'_>> {
        self.exact_exit_rates
            .as_deref()
            .map(|exit| crate::exact::ExactMeasures::new(self, exit))
    }
}

/// Builder for a compositional lump — the paper's `CompositionalLump`
/// (Fig. 3b) plus this workspace's extensions (iteration, budgets,
/// parallelism), unified behind one entry point.
///
/// For each level the run computes the initial partition (reward /
/// initial-probability and structural conditions), refines it to the
/// coarsest partition satisfying the local lumpability conditions of
/// Definition 3, then replaces every node of the level by its Theorem-2
/// quotient and quotients the reachable-state MDD. Theorems 3/4
/// guarantee the result represents an (ordinarily/exactly) lumped CTMC.
///
/// ```no_run
/// use mdl_core::{LumpKind, LumpRequest};
///
/// # fn demo(mrp: &mdl_core::MdMrp) -> mdl_core::Result<()> {
/// let result = LumpRequest::new(LumpKind::Ordinary)
///     .iterate(true)
///     .threads(4)
///     .budget(mdl_obs::Budget::unlimited().deadline_in(std::time::Duration::from_secs(30)))
///     .run(mrp)?;
/// println!("{} -> {} states", result.stats.original_states, result.stats.lumped_states);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LumpRequest {
    kind: LumpKind,
    options: LumpOptions,
    budget: Budget,
    iterate: bool,
    seeds: Vec<Option<Partition>>,
}

impl LumpRequest {
    /// A request for a single lumping pass of the given kind with default
    /// options, serial, under an unlimited budget.
    pub fn new(kind: LumpKind) -> Self {
        LumpRequest {
            kind,
            options: LumpOptions::default(),
            budget: Budget::unlimited(),
            iterate: false,
            seeds: Vec::new(),
        }
    }

    /// Replaces the whole option block at once.
    #[must_use]
    pub fn options(mut self, options: LumpOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the rate-comparison [`Tolerance`].
    #[must_use]
    pub fn tolerance(mut self, tolerance: Tolerance) -> Self {
        self.options.tolerance = tolerance;
        self
    }

    /// Enables the quasi-reduction post-pass (see
    /// [`LumpOptions::quasi_reduce`]).
    #[must_use]
    pub fn quasi_reduce(mut self, on: bool) -> Self {
        self.options.quasi_reduce = on;
        self
    }

    /// Uses the literal per-node fixed point of Fig. 3a (see
    /// [`LumpOptions::per_node_fixed_point`]).
    #[must_use]
    pub fn per_node_fixed_point(mut self, on: bool) -> Self {
        self.options.per_node_fixed_point = on;
        self
    }

    /// Canonicalizes the MD before lumping (see
    /// [`LumpOptions::canonicalize`]).
    #[must_use]
    pub fn canonicalize(mut self, on: bool) -> Self {
        self.options.canonicalize = on;
        self
    }

    /// Worker threads for the run (see [`LumpOptions::threads`]): `0`
    /// means one per hardware thread, `1` (the default) is serial. Any
    /// value yields bit-identical partitions and lumped MD.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Runs under `budget`: the deadline/cancellation is checked before
    /// each level's refinement (phase `"lump.level"`) and at block
    /// granularity inside the parallel key computations (phase
    /// `"lump.keys"`).
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Adds cooperative cancellation via `token` to the configured
    /// budget (call after [`budget`](Self::budget)); used by the server
    /// to interrupt lumping when the requesting client disconnects.
    #[must_use]
    pub fn cancelled_by(mut self, token: &mdl_obs::CancelToken) -> Self {
        self.budget = self.budget.clone().cancelled_by(token);
        self
    }

    /// Iterates lumping rounds (with quasi-reduction between rounds)
    /// until a fixed point instead of the paper's single pass. The number
    /// of rounds lands in [`LumpStats::rounds`].
    #[must_use]
    pub fn iterate(mut self, on: bool) -> Self {
        self.iterate = on;
        self
    }

    /// Seeds per-level partitions: a level with `Some(partition)` skips
    /// its initial-partition and refinement work entirely and uses the
    /// seed as its computed partition (an iterated run applies seeds to
    /// the first round only; [`canonicalize`](Self::canonicalize) ignores
    /// them — canonicalization merges nodes *across* levels, so a seed
    /// computed against the pre-canonical diagram is not trustworthy).
    ///
    /// Seeds are a pure acceleration and are **excluded** from the cache
    /// key: the caller asserts each seed is bit-identical to the
    /// partition a fresh run would compute for that level. The sweep
    /// engine upholds this by keying seeds on the full per-level lumping
    /// input (node entries, compatibility structure, per-level reward /
    /// initial values and the request options — see
    /// `Pipeline::sweep`); handing over anything else silently produces
    /// a wrong quotient.
    ///
    /// Seeds whose state count does not match the level's size are
    /// ignored (that level is refined normally), as are entries beyond
    /// the diagram's level count.
    #[must_use]
    pub fn seed_partitions(mut self, seeds: Vec<Option<Partition>>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Executes the request.
    ///
    /// # Errors
    ///
    /// Propagates structural errors (on well-formed inputs produced by
    /// this workspace's builders, lumping cannot fail), plus
    /// [`CoreError`](crate::CoreError)`::Interrupted` when the budget
    /// expires or a failpoint injects a failure.
    pub fn run(&self, mrp: &MdMrp) -> Result<LumpResult> {
        let seeds: &[Option<Partition>] = if self.options.canonicalize {
            &[]
        } else {
            &self.seeds
        };
        if self.iterate {
            run_iterated(mrp, self.kind, &self.options, &self.budget, seeds)
        } else {
            run_single(mrp, self.kind, &self.options, &self.budget, seeds)
        }
    }

    /// Feeds every **result-relevant** field into a cache-key hash: the
    /// lump kind, the comparison tolerance, the quasi-reduce /
    /// per-node-fixed-point / canonicalize switches and the iterate flag.
    /// Thread counts and budgets are excluded — the computed partitions
    /// and the lumped MD are bit-identical for every thread count
    /// (DESIGN.md §12), and a budget changes whether the run finishes,
    /// never what it produces.
    pub fn write_cache_key(&self, h: &mut mdl_store::Fnv1a) {
        h.write_u64(match self.kind {
            LumpKind::Ordinary => 0,
            LumpKind::Exact => 1,
        });
        match self.options.tolerance {
            Tolerance::Exact => h.write_u64(0),
            Tolerance::Decimals(d) => {
                h.write_u64(1);
                h.write_u64(d as u64);
            }
        }
        h.write_u64(self.options.quasi_reduce as u64);
        h.write_u64(self.options.per_node_fixed_point as u64);
        h.write_u64(self.options.canonicalize as u64);
        h.write_u64(self.iterate as u64);
    }
}

impl Default for LumpKind {
    /// Ordinary lumpability — the kind that preserves all reward
    /// measures.
    fn default() -> Self {
        LumpKind::Ordinary
    }
}

/// One lumping pass (Fig. 3b) with explicit options and budget. A level
/// with a (size-matching) entry in `seeds` skips its initial-partition
/// and refinement work and adopts the seed verbatim; see
/// [`LumpRequest::seed_partitions`] for the contract.
fn run_single(
    mrp: &MdMrp,
    kind: LumpKind,
    options: &LumpOptions,
    budget: &Budget,
    seeds: &[Option<Partition>],
) -> Result<LumpResult> {
    if options.canonicalize {
        // Rebuild the MD in canonical form (same sizes, same represented
        // matrix, scale-multiples merged) and lump that: the computed
        // partitions are over the same local state spaces, so everything
        // downstream — verification included — still applies to the
        // original chain.
        let (canonical, _) = mrp.matrix().md().canonicalize();
        let matrix = MdMatrix::new(canonical, mrp.matrix().reach().clone())?;
        let canonical_mrp = MdMrp::new(matrix, mrp.reward().clone(), mrp.initial().clone())?;
        let inner = LumpOptions {
            canonicalize: false,
            ..*options
        };
        return run_single(&canonical_mrp, kind, &inner, budget, &[]);
    }
    let run_span = mdl_obs::span("lump.run").with(
        "kind",
        match kind {
            LumpKind::Ordinary => "ordinary",
            LumpKind::Exact => "exact",
        },
    );
    let md = mrp.matrix().md();
    let reach = mrp.matrix().reach();
    let num_levels = md.num_levels();
    let splitters_counter = mdl_obs::counter("lump.refine.splitters");
    let splits_counter = mdl_obs::counter("lump.refine.splits");
    let keys_counter = mdl_obs::counter("lump.refine.keys");

    // Phase 1: per-level partitions. Each level's conditions involve only
    // that level's nodes, so the levels are independent: the initial
    // partitions are computed concurrently up front, then each level is
    // refined in turn (the formal-sum key computations inside one level's
    // refinement fan out over the same pool).
    let pool = ThreadPool::new(options.threads);
    if let Err(reason) = budget.check() {
        return Err(crate::CoreError::Interrupted {
            phase: "lump.level",
            reason,
        });
    }
    // A valid seed replaces the level's whole partition computation;
    // mis-sized seeds are ignored rather than rejected (the level is
    // simply refined from scratch).
    let seed_for = |level: usize| -> Option<&Partition> {
        seeds
            .get(level)
            .and_then(|s| s.as_ref())
            .filter(|s| s.num_states() == md.sizes()[level])
    };
    let initials = pool.run(num_levels, |level| {
        if seed_for(level).is_some() {
            None
        } else {
            Some(initial_partition(mrp, level, kind, options.tolerance))
        }
    });
    let mut partitions = Vec::with_capacity(num_levels);
    let mut per_level = Vec::with_capacity(num_levels);
    for (level, p_ini) in initials.into_iter().enumerate() {
        if let Err(reason) = budget.check() {
            return Err(crate::CoreError::Interrupted {
                phase: "lump.level",
                reason,
            });
        }
        if mdl_obs::failpoint::hit("lump.level").is_some() {
            return Err(crate::CoreError::Interrupted {
                phase: "lump.level",
                reason: mdl_obs::BudgetExceeded::Injected,
            });
        }
        let size = md.sizes()[level];
        let mut level_span = mdl_obs::span("lump.level")
            .with("level", level)
            .with("original_size", size);
        if let Some(seed) = seed_for(level) {
            let partition = seed.clone();
            mdl_obs::counter("lump.level.seeded").inc();
            level_span.record("lumped_size", partition.num_classes());
            level_span.record("seeded", 1usize);
            per_level.push(LevelLumpStats {
                level,
                original_size: size,
                lumped_size: partition.num_classes(),
                refinement: RefinementStats {
                    splitters_processed: 0,
                    classes_split: 0,
                    keys_emitted: 0,
                },
                elapsed: level_span.finish(),
            });
            partitions.push(partition);
            continue;
        }
        let p_ini = p_ini.expect("unseeded level has an initial partition");
        let level_nodes = md.level_nodes(level);
        let (partition, refinement) = if options.per_node_fixed_point {
            comp_lumping_level_per_node(&level_nodes, p_ini, kind, options.tolerance)
        } else {
            comp_lumping_level_pooled(&level_nodes, p_ini, kind, options.tolerance, pool, budget)
                .map_err(|reason| crate::CoreError::Interrupted {
                    phase: "lump.keys",
                    reason,
                })?
        };
        splitters_counter.add(refinement.splitters_processed as u64);
        splits_counter.add(refinement.classes_split as u64);
        keys_counter.add(refinement.keys_emitted as u64);
        level_span.record("lumped_size", partition.num_classes());
        level_span.record("splitters", refinement.splitters_processed);
        level_span.record("splits", refinement.classes_split);
        level_span.record("keys", refinement.keys_emitted);
        per_level.push(LevelLumpStats {
            level,
            original_size: size,
            lumped_size: partition.num_classes(),
            refinement,
            elapsed: level_span.finish(),
        });
        partitions.push(partition);
    }

    // Phase 2: quotient every node (Fig. 3b lines 4-6) and the MDD. A
    // tolerance run additionally records the certified rate envelope of
    // every inexactly lumped term (the basis of `--bounds` solves and the
    // `max_rate_deviation` statistic).
    let quotient_span = mdl_obs::span("lump.quotient");
    let mut envelope = if options.tolerance == Tolerance::Exact {
        None
    } else {
        Some(RateEnvelope::default())
    };
    let mut lumped_md = md.clone();
    for (level, partition) in partitions.iter().enumerate() {
        let nodes: Vec<MdNode> = md
            .level_nodes(level)
            .iter()
            .enumerate()
            .map(|(ni, n)| match (&mut envelope, kind) {
                (None, LumpKind::Ordinary) => lump_node_ordinary(n, partition),
                (None, LumpKind::Exact) => lump_node_exact(n, partition),
                (Some(env), LumpKind::Ordinary) => {
                    lump_node_ordinary_enveloped(n, partition, level as u32, ni as u32, env)
                }
                (Some(env), LumpKind::Exact) => {
                    lump_node_exact_enveloped(n, partition, level as u32, ni as u32, env)
                }
            })
            .collect();
        lumped_md.replace_level(level, partition.num_classes(), nodes)?;
    }
    let max_rate_deviation = envelope.as_ref().map_or(0.0, RateEnvelope::max_deviation);
    let (lumped_md, nodes_merged) = if options.quasi_reduce {
        lumped_md.quasi_reduce()
    } else {
        (lumped_md, 0)
    };
    if nodes_merged > 0 {
        // Quasi-reduction changed per-level node indices; the envelope's
        // (level, node) keys no longer address the reduced diagram.
        envelope = None;
    }
    let lumped_reach = reach.quotient(&partitions)?;
    quotient_span.finish();

    // Phase 3: lumped rewards and initial probabilities (Fig. 3b line 7):
    // r̂(C) = r(C)/|C| (per-level means), π̂(C) = π(C) (per-level sums).
    let reward = mrp.reward().lump(&partitions, LumpMode::Mean, "reward")?;
    let initial = mrp
        .initial()
        .lump(&partitions, LumpMode::Sum, "initial distribution")?;

    let matrix = MdMatrix::new(lumped_md, lumped_reach)?;
    let memory_before = mrp.matrix().memory_bytes();
    let memory_after = matrix.memory_bytes();
    let original_states = reach.count();
    let lumped_states = matrix.reach().count();

    // For exact lumping, record the representatives' exit rates: the
    // quotient's correct diagonal is not recoverable from its row sums
    // (see crate::exact).
    let exact_exit_rates = match kind {
        LumpKind::Ordinary => None,
        LumpKind::Exact => Some(representative_exit_rates(mrp, &partitions, matrix.reach())),
    };

    let lumped = MdMrp::new(matrix, reward, initial)?;

    let mut run_span = run_span;
    run_span.record("original_states", original_states);
    run_span.record("lumped_states", lumped_states);
    let elapsed = run_span.finish();

    Ok(LumpResult {
        mrp: lumped,
        partitions,
        exact_exit_rates,
        envelope,
        stats: LumpStats {
            per_level,
            original_states,
            lumped_states,
            memory_before,
            memory_after,
            nodes_merged,
            rounds: 1,
            max_rate_deviation,
            elapsed,
        },
    })
}

/// Exit rate `R(s, S)` of each lumped state's representative, measured on
/// the original chain (constant per class by Theorem 1b's conditions).
fn representative_exit_rates(
    original: &MdMrp,
    partitions: &[Partition],
    lumped_reach: &mdl_mdd::Mdd,
) -> Vec<f64> {
    let reach = original.matrix().reach();
    let original_exit = mdl_linalg::RateMatrix::row_sums(original.matrix());
    let mut exit = vec![0.0; lumped_reach.count() as usize];
    let mut rep_tuple = vec![0u32; partitions.len()];
    lumped_reach.for_each_tuple(|class_tuple, idx| {
        for (l, &c) in class_tuple.iter().enumerate() {
            rep_tuple[l] = partitions[l].representative(c as usize) as u32;
        }
        let oi = reach
            .index_of(&rep_tuple)
            .expect("representative tuple reachable (MDD-compatible classes)");
        exit[idx as usize] = original_exit[oi as usize];
    });
    exit
}

/// Iterated compositional lumping (extension): alternates single passes
/// (with the quasi-reduction post-pass) until a fixed point.
///
/// The paper's single pass keeps node identity fixed, so two nodes whose
/// quotients coincide stay distinct — and parents referencing them keep
/// distinct formal-sum keys. Quasi-reducing merges such nodes, which can
/// unlock strictly coarser partitions in the next round (see the
/// `iteration_can_beat_single_pass` test for a witness). Each round only
/// ever merges states, so the loop terminates in at most
/// `Σ log|S_i|`-ish rounds; in practice 1–2. The round count lands in
/// [`LumpStats::rounds`].
fn run_iterated(
    mrp: &MdMrp,
    kind: LumpKind,
    options: &LumpOptions,
    budget: &Budget,
    seeds: &[Option<Partition>],
) -> Result<LumpResult> {
    let opts = LumpOptions {
        quasi_reduce: true,
        ..*options
    };
    // Seeds describe partitions of the *original* chain, so they apply to
    // the first round only; later rounds run over already-lumped state
    // spaces the seeds know nothing about.
    let mut result = run_single(mrp, kind, &opts, budget, seeds)?;
    let mut rounds = 1;
    loop {
        let again = run_single(&result.mrp, kind, &opts, budget, &[])?;
        rounds += 1;
        let progressed = again.stats.lumped_states < result.stats.original_states
            && again.stats.lumped_states < result.stats.lumped_states;
        if !progressed {
            // Keep the first result's provenance (partitions relative to
            // the *original* chain) when the extra round found nothing.
            result.stats.rounds = rounds;
            return Ok(result);
        }
        // Compose the partitions: class of original state s at level l is
        // the second round's class of the first round's class.
        let composed: Vec<Partition> = result
            .partitions
            .iter()
            .zip(&again.partitions)
            .map(|(first, second)| {
                Partition::from_key_fn(first.num_states(), |s| second.class_of(first.class_of(s)))
            })
            .collect();
        // Exit rates for exact lumps must be measured on the *original*
        // chain; the intermediate quotient's row sums are not exit rates.
        let exact_exit_rates = match kind {
            LumpKind::Ordinary => None,
            LumpKind::Exact => Some(representative_exit_rates(
                mrp,
                &composed,
                again.mrp.matrix().reach(),
            )),
        };
        result = LumpResult {
            mrp: again.mrp,
            partitions: composed,
            exact_exit_rates,
            // Round envelopes do not compose (the second round's keys
            // address the intermediate quotient); bounds runs are
            // single-pass by construction.
            envelope: None,
            stats: LumpStats {
                per_level: again.stats.per_level.clone(),
                original_states: result.stats.original_states,
                lumped_states: again.stats.lumped_states,
                memory_before: result.stats.memory_before,
                memory_after: again.stats.memory_after,
                nodes_merged: result.stats.nodes_merged + again.stats.nodes_merged,
                rounds,
                max_rate_deviation: result
                    .stats
                    .max_rate_deviation
                    .max(again.stats.max_rate_deviation),
                elapsed: result.stats.elapsed + again.stats.elapsed,
            },
        };
    }
}

/// The initial partition `P_i^ini` of Fig. 3b line 2, intersected with the
/// structural MDD-compatibility partition (DESIGN.md §4.2):
///
/// * ordinary: `f_i(s) = f_i(s′)`;
/// * exact: `f_{π,i}(s) = f_{π,i}(s′)` and
///   `r_{n_i,n_{i+1}}(s, S_i) = r_{n_i,n_{i+1}}(s′, S_i)` for every node
///   and child.
fn initial_partition(mrp: &MdMrp, level: usize, kind: LumpKind, tolerance: Tolerance) -> Partition {
    let md = mrp.matrix().md();
    let size = md.sizes()[level];
    let compat = mrp.matrix().reach().compatibility_partition(level);
    match kind {
        LumpKind::Ordinary => {
            let f = mrp.reward().level_values(level);
            compat.intersect(&Partition::from_key_fn(size, |s| tolerance.key(f[s])))
        }
        LumpKind::Exact => {
            let f = mrp.initial().level_values(level);
            let by_initial = Partition::from_key_fn(size, |s| tolerance.key(f[s]));
            // Per-(node, child) local row sums r_{n_i, n_{i+1}}(s, S_i).
            let zero = tolerance.key(0.0);
            let mut sums: Vec<BTreeMap<(u32, mdl_md::ChildId), f64>> = vec![BTreeMap::new(); size];
            for (ni, node) in md.level_nodes(level).iter().enumerate() {
                for e in node.entries() {
                    let row = &mut sums[e.row as usize];
                    for t in &e.terms {
                        *row.entry((ni as u32, t.child)).or_insert(0.0) += t.coef;
                    }
                }
            }
            let by_row_sums = Partition::from_key_fn(size, |s| {
                sums[s]
                    .iter()
                    .map(|(&k, &v)| (k, tolerance.key(v)))
                    .filter(|&(_, kv)| kv != zero)
                    .collect::<Vec<_>>()
            });
            compat.intersect(&by_initial).intersect(&by_row_sums)
        }
    }
}

/// Theorem-2 quotient of one node for an ordinary lumping:
/// entry `(C, C′) = Σ_{s′∈C′} formal-sum(rep(C), s′)`.
fn lump_node_ordinary(node: &MdNode, partition: &Partition) -> MdNode {
    let mut raw = Vec::with_capacity(node.num_entries());
    for (ci, members) in partition.iter() {
        let rep = members[0] as u32;
        for e in node.row(rep) {
            raw.push((
                ci as u32,
                partition.class_of(e.col as usize) as u32,
                e.terms.clone(),
            ));
        }
    }
    MdNode::new(raw)
}

/// Directed-rounded hull of per-member (ordinary) or per-column (exact)
/// aggregates, per lumped term `(row class, col class, child)`: `lo` is a
/// lower bound on the smallest aggregate, `hi` an upper bound on the
/// largest, `seen` how many members/columns contributed (those without
/// the key aggregate to exactly zero, folded in afterwards).
type Hull = BTreeMap<(u32, u32, ChildId), (f64, f64, usize)>;

/// Folds one aggregate into the hull.
fn hull_add(hull: &mut Hull, key: (u32, u32, ChildId), lo: f64, hi: f64) {
    let h = hull
        .entry(key)
        .or_insert((f64::INFINITY, f64::NEG_INFINITY, 0));
    h.0 = h.0.min(lo);
    h.1 = h.1.max(hi);
    h.2 += 1;
}

/// Finishes the hull and assembles the enveloped node for the **exact**
/// orientation: columns missing a key contribute an exact zero
/// aggregate (folded in against the **column** class's size).
fn finish_enveloped_node(
    raw: Vec<(u32, u32, Vec<mdl_md::Term>)>,
    mut hull: Hull,
    col_class_size: impl Fn(u32) -> usize,
    level: u32,
    node_idx: u32,
    env: &mut RateEnvelope,
) -> MdNode {
    for (&(_, cj, _), h) in hull.iter_mut() {
        if h.2 < col_class_size(cj) {
            h.0 = h.0.min(0.0);
            h.1 = h.1.max(0.0);
        }
    }
    finish_enveloped_node_prefolded(raw, hull, level, node_idx, env)
}

/// [`lump_node_ordinary`] plus envelope recording: for every lumped term
/// the hull over the class members `s ∈ C` of the member aggregates
/// `a_s = Σ_{s′∈C′} coef(s, s′, child)` (each accumulated with directed
/// rounding). Same quotient — the stored coefficients still come from the
/// representative's row — except for the explicit zero-rate anchor terms
/// described at [`finish_enveloped_node`].
fn lump_node_ordinary_enveloped(
    node: &MdNode,
    partition: &Partition,
    level: u32,
    node_idx: u32,
    env: &mut RateEnvelope,
) -> MdNode {
    let mut raw = Vec::with_capacity(node.num_entries());
    let mut hull = Hull::new();
    for (ci, members) in partition.iter() {
        let rep = members[0] as u32;
        for e in node.row(rep) {
            raw.push((
                ci as u32,
                partition.class_of(e.col as usize) as u32,
                e.terms.clone(),
            ));
        }
        for &s in members {
            // This member's aggregate per (col class, child), bracketed.
            let mut agg: BTreeMap<(u32, ChildId), (f64, f64)> = BTreeMap::new();
            for e in node.row(s as u32) {
                let cj = partition.class_of(e.col as usize) as u32;
                for t in &e.terms {
                    let slot = agg.entry((cj, t.child)).or_insert((0.0, 0.0));
                    slot.0 = add_down(slot.0, t.coef);
                    slot.1 = add_up(slot.1, t.coef);
                }
            }
            for ((cj, child), (lo, hi)) in agg {
                hull_add(&mut hull, (ci as u32, cj, child), lo, hi);
            }
        }
    }
    let sizes: Vec<usize> = partition.iter().map(|(_, m)| m.len()).collect();
    // Ordinary: the hull varies over *members of the row class*.
    let hull = hull; // freeze
    let row_class_sizes = move |key_row: u32| sizes[key_row as usize];
    finish_enveloped_node_by_row(raw, hull, row_class_sizes, level, node_idx, env)
}

/// Ordinary-orientation wrapper: the `seen` count in the hull is against
/// the **row** class's member count.
fn finish_enveloped_node_by_row(
    raw: Vec<(u32, u32, Vec<mdl_md::Term>)>,
    mut hull: Hull,
    row_class_size: impl Fn(u32) -> usize,
    level: u32,
    node_idx: u32,
    env: &mut RateEnvelope,
) -> MdNode {
    for (&(ci, _, _), h) in hull.iter_mut() {
        if h.2 < row_class_size(ci) {
            h.0 = h.0.min(0.0);
            h.1 = h.1.max(0.0);
        }
    }
    finish_enveloped_node_prefolded(raw, hull, level, node_idx, env)
}

/// Core of [`finish_enveloped_node`] once zero-aggregates are folded in.
fn finish_enveloped_node_prefolded(
    mut raw: Vec<(u32, u32, Vec<mdl_md::Term>)>,
    hull: Hull,
    level: u32,
    node_idx: u32,
    env: &mut RateEnvelope,
) -> MdNode {
    let lumped = MdNode::new(raw.clone());
    let mut stored_keys: std::collections::HashSet<(u32, u32, ChildId)> =
        std::collections::HashSet::new();
    for e in lumped.entries() {
        for t in &e.terms {
            stored_keys.insert((e.row, e.col, t.child));
        }
    }
    let mut synthesized = false;
    for (&(ci, cj, child), &(lo, hi, _)) in &hull {
        if !stored_keys.contains(&(ci, cj, child)) && (lo < 0.0 || hi > 0.0) {
            raw.push((ci, cj, vec![mdl_md::Term::new(0.0, child)]));
            synthesized = true;
        }
    }
    let lumped = if synthesized {
        MdNode::new_keeping_zeros(raw)
    } else {
        lumped
    };
    for e in lumped.entries() {
        for t in &e.terms {
            if let Some(&(lo, hi, _)) = hull.get(&(e.row, e.col, t.child)) {
                env.record(level, node_idx, e.row, e.col, t.child, lo, hi, t.coef);
            }
        }
    }
    lumped
}

/// [`lump_node_exact`] plus envelope recording: for every lumped term the
/// hull over the columns `s′ ∈ C′` of the column aggregates
/// `b_{s′} = Σ_{s∈C} coef(s, s′, child)`.
fn lump_node_exact_enveloped(
    node: &MdNode,
    partition: &Partition,
    level: u32,
    node_idx: u32,
    env: &mut RateEnvelope,
) -> MdNode {
    let mut rep_class = vec![u32::MAX; partition.num_states()];
    for (cj, members) in partition.iter() {
        rep_class[members[0]] = cj as u32;
    }
    let mut raw = Vec::with_capacity(node.num_entries());
    // Per-column aggregates, bracketed: (row class, column, child).
    let mut agg: BTreeMap<(u32, u32, ChildId), (f64, f64)> = BTreeMap::new();
    for e in node.entries() {
        let ci = partition.class_of(e.row as usize) as u32;
        let cj = rep_class[e.col as usize];
        if cj != u32::MAX {
            raw.push((ci, cj, e.terms.clone()));
        }
        for t in &e.terms {
            let slot = agg.entry((ci, e.col, t.child)).or_insert((0.0, 0.0));
            slot.0 = add_down(slot.0, t.coef);
            slot.1 = add_up(slot.1, t.coef);
        }
    }
    let mut hull = Hull::new();
    for (&(ci, col, child), &(lo, hi)) in &agg {
        let cj = partition.class_of(col as usize) as u32;
        hull_add(&mut hull, (ci, cj, child), lo, hi);
    }
    let sizes: Vec<usize> = partition.iter().map(|(_, m)| m.len()).collect();
    // Exact: the hull varies over *columns of the column class*.
    finish_enveloped_node(
        raw,
        hull,
        move |cj| sizes[cj as usize],
        level,
        node_idx,
        env,
    )
}

/// Theorem-2 quotient of one node for an exact lumping:
/// entry `(C, C′) = Σ_{s∈C} formal-sum(s, rep(C′))`.
fn lump_node_exact(node: &MdNode, partition: &Partition) -> MdNode {
    // Mark representative columns with their class.
    let mut rep_class = vec![u32::MAX; partition.num_states()];
    for (cj, members) in partition.iter() {
        rep_class[members[0]] = cj as u32;
    }
    let mut raw = Vec::with_capacity(node.num_entries());
    for e in node.entries() {
        let cj = rep_class[e.col as usize];
        if cj != u32::MAX {
            raw.push((
                partition.class_of(e.row as usize) as u32,
                cj,
                e.terms.clone(),
            ));
        }
    }
    MdNode::new(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{Combiner, DecomposableVector};
    use mdl_md::{ChildId, KroneckerExpr, SparseFactor, Term};
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    /// 2-level model: level 1 a 2-cycle (distinguished by the reward);
    /// level 2 has states 1, 2 symmetric against state 0, with extra 1↔2
    /// exchange so that 0 cannot join their class (its aggregate row into
    /// {1,2} differs).
    fn symmetric_mrp() -> MdMrp {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        w.push(1, 2, 0.5);
        w.push(2, 1, 0.5);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, 3.0)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0]).unwrap();
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn ordinary_lump_merges_symmetric_level() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(result.stats.original_states, 6);
        assert_eq!(result.stats.lumped_states, 4);
        assert_eq!(result.partitions[1].num_classes(), 2);
        assert!(result.partitions[1].same_class(1, 2));
        assert_eq!(result.partitions[0].num_classes(), 2); // level 1 unchanged
    }

    #[test]
    fn lumped_md_flat_matches_quotient_of_flat() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();

        // Quotient the flat matrix by the induced global partition and
        // compare with the lumped MD's flat matrix.
        let full = mrp.matrix().flatten();
        let lumped_flat = result.mrp.matrix().flatten();
        let reach = mrp.matrix().reach();
        let lumped_reach = result.mrp.matrix().reach();

        reach.for_each_tuple(|tuple, idx| {
            let class_tuple: Vec<u32> = tuple
                .iter()
                .enumerate()
                .map(|(l, &s)| result.partitions[l].class_of(s as usize) as u32)
                .collect();
            let li = lumped_reach
                .index_of(&class_tuple)
                .expect("class state reachable");
            // Row sums into each lumped class must match the lumped row.
            for lj in 0..lumped_reach.count() {
                let mut sum = 0.0;
                reach.for_each_tuple(|t2, idx2| {
                    let c2: Vec<u32> = t2
                        .iter()
                        .enumerate()
                        .map(|(l, &s)| result.partitions[l].class_of(s as usize) as u32)
                        .collect();
                    if lumped_reach.index_of(&c2) == Some(lj) {
                        sum += full.get(idx as usize, idx2 as usize);
                    }
                });
                let got = lumped_flat.get(li as usize, lj as usize);
                assert!(
                    (sum - got).abs() < 1e-12,
                    "R(s, C) = {sum} but lumped R̂ = {got}"
                );
            }
        });
    }

    #[test]
    fn stationary_measure_preserved() {
        use mdl_ctmc::SolverOptions;
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let full = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let lumped = result
            .mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!((full - lumped).abs() < 1e-8, "{full} vs {lumped}");
    }

    #[test]
    fn exact_lump_preserves_transient_for_uniform_initial() {
        use mdl_ctmc::TransientOptions;
        // Uniform initial distribution is class-uniform for any partition.
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        // States 1 and 2 have equal columns and equal exit rates: exactly
        // lumpable into {1,2}.
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, 3.0)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
        let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
        let mrp = MdMrp::new(matrix, reward, initial).unwrap();

        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        assert!(result.stats.lumped_states < result.stats.original_states);
        let measures = result
            .exact_measures()
            .expect("exact lump carries exit rates");

        // Transient distribution aggregated over classes must match the
        // exact-lumped computation (which evolves the per-state vector ν̂
        // with the representatives' exit rates — see crate::exact).
        let t = 0.8;
        let full = mrp.transient(t, &TransientOptions::default()).unwrap();
        let lumped_agg = measures
            .transient_aggregated(t, &TransientOptions::default())
            .unwrap();
        let reach = mrp.matrix().reach();
        let lumped_reach = result.mrp.matrix().reach();
        let mut agg = vec![0.0; lumped_agg.len()];
        reach.for_each_tuple(|tuple, idx| {
            let class_tuple: Vec<u32> = tuple
                .iter()
                .enumerate()
                .map(|(l, &s)| result.partitions[l].class_of(s as usize) as u32)
                .collect();
            let li = lumped_reach.index_of(&class_tuple).unwrap();
            agg[li as usize] += full.probabilities[idx as usize];
        });
        for (a, b) in agg.iter().zip(&lumped_agg) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }

        // Stationary aggregation must match as well.
        use mdl_ctmc::SolverOptions;
        let full_stat = mrp.stationary(&SolverOptions::default()).unwrap();
        let lumped_stat = measures
            .stationary_aggregated(&SolverOptions::default())
            .unwrap();
        let mut agg_stat = vec![0.0; lumped_stat.len()];
        reach.for_each_tuple(|tuple, idx| {
            let class_tuple: Vec<u32> = tuple
                .iter()
                .enumerate()
                .map(|(l, &s)| result.partitions[l].class_of(s as usize) as u32)
                .collect();
            let li = lumped_reach.index_of(&class_tuple).unwrap();
            agg_stat[li as usize] += full_stat.probabilities[idx as usize];
        });
        for (a, b) in agg_stat.iter().zip(&lumped_stat) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn reward_differences_block_merging() {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, 3.0)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        // Reward distinguishes both level-1 states and all level-2 states.
        let reward =
            DecomposableVector::new(vec![vec![1.0, 2.0], vec![1.0, 3.0, 9.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0]).unwrap();
        let mrp = MdMrp::new(matrix, reward, initial).unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(result.stats.lumped_states, 6, "reward must block the merge");
    }

    #[test]
    fn per_node_option_gives_same_result() {
        let mrp = symmetric_mrp();
        let a = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let b = LumpRequest::new(LumpKind::Ordinary)
            .per_node_fixed_point(true)
            .run(&mrp)
            .unwrap();
        assert_eq!(a.partitions, b.partitions);
    }

    #[test]
    fn node_counts_do_not_grow() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let before = mrp.matrix().md().nodes_per_level();
        let after = result.mrp.matrix().md().nodes_per_level();
        assert_eq!(before, after, "plain lumping preserves node counts");
    }

    #[test]
    fn quasi_reduce_never_increases_nodes() {
        let mrp = symmetric_mrp();
        let plain = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let reduced = LumpRequest::new(LumpKind::Ordinary)
            .quasi_reduce(true)
            .run(&mrp)
            .unwrap();
        assert!(reduced.mrp.matrix().md().num_nodes() <= plain.mrp.matrix().md().num_nodes());
        // Same represented matrix either way.
        assert_eq!(
            plain
                .mrp
                .matrix()
                .flatten()
                .max_abs_diff(&reduced.mrp.matrix().flatten()),
            0.0
        );
    }

    /// Builds a 2-level MD whose two level-1 nodes `A ≠ B` have equal
    /// quotients under the level-1 lumping — the witness that
    /// quasi-reduction between rounds can unlock further lumping.
    fn two_round_mrp() -> MdMrp {
        use mdl_md::MdBuilder;
        let mut b = MdBuilder::new(vec![2, 3]).unwrap();
        let id3 = b.intern_identity(1, ChildId::Terminal).unwrap();
        let a = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
                    (0, 2, vec![Term::new(1.0, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(4.0, ChildId::Terminal)]),
                    (2, 0, vec![Term::new(4.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let bb = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(0.5, ChildId::Terminal)]),
                    (0, 2, vec![Term::new(1.5, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(4.0, ChildId::Terminal)]),
                    (2, 0, vec![Term::new(4.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        assert_ne!(a, bb);
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 0, vec![Term::new(1.0, ChildId::Node(a))]),
                    (1, 1, vec![Term::new(1.0, ChildId::Node(bb))]),
                    (0, 1, vec![Term::new(3.0, ChildId::Node(id3))]),
                    (1, 0, vec![Term::new(3.0, ChildId::Node(id3))]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        let matrix = MdMatrix::new(md, Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
        let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn iteration_can_beat_single_pass() {
        let mrp = two_round_mrp();
        let single = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // Single pass: level 0 cannot merge (distinct children A, B).
        assert_eq!(single.stats.lumped_states, 4);

        let iterated = LumpRequest::new(LumpKind::Ordinary)
            .iterate(true)
            .run(&mrp)
            .unwrap();
        assert!(iterated.stats.rounds >= 2);
        // After quasi-reduction merges lump(A) = lump(B), level 0 lumps too.
        assert_eq!(iterated.stats.lumped_states, 2);
        assert_eq!(iterated.stats.original_states, 6);
        // The composed partitions still verify against the original chain.
        crate::verify::verify_ordinary(&mrp, &iterated, mdl_linalg::Tolerance::default()).unwrap();
    }

    #[test]
    fn iteration_is_noop_when_single_pass_suffices() {
        let mrp = symmetric_mrp();
        let single = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let iterated = LumpRequest::new(LumpKind::Ordinary)
            .iterate(true)
            .run(&mrp)
            .unwrap();
        assert_eq!(iterated.stats.rounds, 2); // one productive round + one fixpoint check
        assert_eq!(single.stats.lumped_states, iterated.stats.lumped_states);
    }

    #[test]
    fn iterated_exact_lump_keeps_correct_exit_rates() {
        use mdl_ctmc::TransientOptions;
        let mrp = two_round_mrp();
        let iterated = LumpRequest::new(LumpKind::Exact)
            .iterate(true)
            .run(&mrp)
            .unwrap();
        crate::verify::verify_exact(&mrp, &iterated, mdl_linalg::Tolerance::default()).unwrap();
        let measures = iterated
            .exact_measures()
            .expect("exact exit rates recorded");
        // Aggregated transient must match the full chain.
        let t = 0.6;
        let full = mrp.transient(t, &TransientOptions::default()).unwrap();
        let agg_lumped = measures
            .transient_aggregated(t, &TransientOptions::default())
            .unwrap();
        let reach = mrp.matrix().reach();
        let lumped_reach = iterated.mrp.matrix().reach();
        let mut agg = vec![0.0; agg_lumped.len()];
        reach.for_each_tuple(|tuple, idx| {
            let class_tuple: Vec<u32> = tuple
                .iter()
                .enumerate()
                .map(|(l, &s)| iterated.partitions[l].class_of(s as usize) as u32)
                .collect();
            let li = lumped_reach.index_of(&class_tuple).unwrap();
            agg[li as usize] += full.probabilities[idx as usize];
        });
        for (x, y) in agg.iter().zip(&agg_lumped) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn canonicalization_improves_partitions() {
        use mdl_md::MdBuilder;
        // Bottom nodes `small` and `big = 3·small`; root rows reach the
        // same flat block (6·small) through different (node, coefficient)
        // pairs, so the plain formal-sum key separates them while the
        // canonical one does not.
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let small = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(2.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let big = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(3.0, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(6.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 0, vec![Term::new(6.0, ChildId::Node(small))]),
                    (1, 1, vec![Term::new(2.0, ChildId::Node(big))]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        let matrix = MdMatrix::new(md, Mdd::full(vec![2, 2]).unwrap()).unwrap();
        let reward = DecomposableVector::constant(&[2, 2], 1.0).unwrap();
        let initial = DecomposableVector::uniform(&[2, 2], 4).unwrap();
        let mrp = MdMrp::new(matrix, reward, initial).unwrap();

        let plain = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert!(!plain.partitions[0].same_class(0, 1));

        let canon = LumpRequest::new(LumpKind::Ordinary)
            .canonicalize(true)
            .run(&mrp)
            .unwrap();
        assert!(canon.partitions[0].same_class(0, 1));
        assert!(canon.stats.lumped_states < plain.stats.lumped_states);
        // Still a genuine lumping of the original chain.
        crate::verify::verify_ordinary(&mrp, &canon, mdl_linalg::Tolerance::default()).unwrap();
    }

    #[test]
    fn lump_node_ordinary_sums_columns() {
        // Node over 3 states: 0 -> 1 (1.0), 0 -> 2 (2.0); lump {1,2}.
        let node = MdNode::new(vec![
            (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 2, vec![Term::new(2.0, ChildId::Terminal)]),
        ]);
        let p = Partition::from_classes(vec![vec![0], vec![1, 2]]);
        let lumped = lump_node_ordinary(&node, &p);
        assert_eq!(lumped.num_entries(), 1);
        assert_eq!(lumped.entries()[0].terms[0].coef, 3.0);
        assert_eq!((lumped.entries()[0].row, lumped.entries()[0].col), (0, 1));
    }

    #[test]
    fn lump_node_exact_sums_rows() {
        let node = MdNode::new(vec![
            (1, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (2, 0, vec![Term::new(2.0, ChildId::Terminal)]),
        ]);
        let p = Partition::from_classes(vec![vec![0], vec![1, 2]]);
        let lumped = lump_node_exact(&node, &p);
        assert_eq!(lumped.num_entries(), 1);
        assert_eq!(lumped.entries()[0].terms[0].coef, 3.0);
        assert_eq!((lumped.entries()[0].row, lumped.entries()[0].col), (1, 0));
    }

    #[test]
    fn lumping_emits_obs_spans_and_counters() {
        use mdl_obs::{EventKind, Value};
        let _g = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let sub = std::sync::Arc::new(mdl_obs::MemorySubscriber::new());
        mdl_obs::add_subscriber(sub.clone());

        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();

        mdl_obs::clear_subscribers();
        let report = mdl_obs::snapshot();
        mdl_obs::set_enabled(false);

        // One lump.level span per MD level, each with a duration and the
        // sizes that also land in the public LumpStats.
        let events = sub.take();
        for (level, stats) in result.stats.per_level.iter().enumerate() {
            let span = events
                .iter()
                .find(|e| {
                    e.kind == EventKind::SpanEnd
                        && e.name == "lump.level"
                        && e.fields.contains(&("level", Value::from(level)))
                })
                .expect("one lump.level span per level");
            assert!(span.nanos.is_some(), "level span carries a duration");
            assert!(span
                .fields
                .contains(&("original_size", Value::from(stats.original_size))));
            assert!(span
                .fields
                .contains(&("lumped_size", Value::from(stats.lumped_size))));
        }
        let run = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "lump.run")
            .expect("lump.run span");
        assert!(run
            .fields
            .contains(&("lumped_states", Value::from(result.stats.lumped_states))));

        // Refinement work feeds the registry counters.
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert!(counter("lump.refine.splitters") > 0);
        assert!(counter("lump.refine.keys") > 0);
    }

    #[test]
    fn threaded_lump_is_bit_identical_to_serial() {
        for mrp in [symmetric_mrp(), two_round_mrp()] {
            for kind in [LumpKind::Ordinary, LumpKind::Exact] {
                let serial = LumpRequest::new(kind).iterate(true).run(&mrp).unwrap();
                for threads in [2usize, 4, 0] {
                    let par = LumpRequest::new(kind)
                        .iterate(true)
                        .threads(threads)
                        .run(&mrp)
                        .unwrap();
                    assert_eq!(par.partitions, serial.partitions, "threads = {threads}");
                    assert_eq!(
                        par.mrp
                            .matrix()
                            .flatten()
                            .max_abs_diff(&serial.mrp.matrix().flatten()),
                        0.0,
                        "lumped MD bitwise equal at threads = {threads}"
                    );
                    assert_eq!(par.exact_exit_rates, serial.exact_exit_rates);
                }
            }
        }
    }

    #[test]
    fn seeded_lump_is_bit_identical_and_skips_refinement() {
        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let mrp = symmetric_mrp();
            let fresh = LumpRequest::new(kind).run(&mrp).unwrap();
            let seeds: Vec<Option<Partition>> =
                fresh.partitions.iter().cloned().map(Some).collect();
            let seeded = LumpRequest::new(kind)
                .seed_partitions(seeds)
                .run(&mrp)
                .unwrap();
            assert_eq!(seeded.partitions, fresh.partitions);
            assert_eq!(seeded.exact_exit_rates, fresh.exact_exit_rates);
            assert_eq!(
                seeded
                    .mrp
                    .matrix()
                    .flatten()
                    .max_abs_diff(&fresh.mrp.matrix().flatten()),
                0.0,
                "seeded lumped MD bitwise equal"
            );
            for l in &seeded.stats.per_level {
                assert_eq!(l.refinement.splitters_processed, 0, "no refinement work");
                assert_eq!(l.refinement.keys_emitted, 0);
            }
        }
    }

    #[test]
    fn partial_and_mis_sized_seeds_fall_back_to_refinement() {
        let mrp = symmetric_mrp();
        let fresh = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // Seed only level 1; level 0 (None) and a mis-sized level-1 seed
        // must refine normally and still land on the same partitions.
        let seeded = LumpRequest::new(LumpKind::Ordinary)
            .seed_partitions(vec![None, Some(fresh.partitions[1].clone())])
            .run(&mrp)
            .unwrap();
        assert_eq!(seeded.partitions, fresh.partitions);
        let mis_sized = LumpRequest::new(LumpKind::Ordinary)
            .seed_partitions(vec![
                Some(Partition::from_key_fn(7, |s| s)), // wrong size: ignored
                None,
            ])
            .run(&mrp)
            .unwrap();
        assert_eq!(mis_sized.partitions, fresh.partitions);
        assert!(
            mis_sized.stats.per_level[0].refinement.splitters_processed > 0,
            "ignored seed means the level was refined"
        );
    }

    #[test]
    fn canonicalize_ignores_seeds() {
        let mrp = symmetric_mrp();
        let canon = LumpRequest::new(LumpKind::Ordinary)
            .canonicalize(true)
            .run(&mrp)
            .unwrap();
        // A deliberately wrong (but size-matching) seed must not leak into
        // a canonicalizing run.
        let wrong = Partition::from_key_fn(mrp.matrix().md().sizes()[1], |s| s);
        let seeded = LumpRequest::new(LumpKind::Ordinary)
            .canonicalize(true)
            .seed_partitions(vec![None, Some(wrong)])
            .run(&mrp)
            .unwrap();
        assert_eq!(seeded.partitions, canon.partitions);
    }

    /// [`symmetric_mrp`] with the level-2 exchange rates perturbed at the
    /// third decimal: states 1 and 2 lump only under
    /// `Tolerance::Decimals(2)` (or coarser), not under the default
    /// nine-decimal comparison.
    fn near_symmetric_mrp() -> MdMrp {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.001);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.001);
        w.push(1, 2, 0.5);
        w.push(2, 1, 0.501);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cycle(2, 3.0)), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward =
            DecomposableVector::new(vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]], Combiner::Product)
                .unwrap();
        let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0]).unwrap();
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn tolerance_lump_records_rate_envelope() {
        let mrp = near_symmetric_mrp();

        // At the default nine decimals the perturbed states stay split,
        // and nothing is absorbed: the envelope exists but is empty.
        let tight = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(tight.stats.lumped_states, 6);
        let env = tight.envelope.as_ref().expect("tolerance run");
        assert!(env.is_empty(), "nothing lumped, nothing absorbed");
        assert_eq!(tight.stats.max_rate_deviation, 0.0);

        // At two decimals states 1 and 2 merge; the envelope must record
        // the member rates each lumped coefficient stands in for.
        let tol = LumpRequest::new(LumpKind::Ordinary)
            .tolerance(Tolerance::Decimals(2))
            .run(&mrp)
            .unwrap();
        assert_eq!(tol.stats.lumped_states, 4);
        let env = tol.envelope.as_ref().expect("tolerance run");
        assert!(!env.is_empty());
        assert!(tol.stats.max_rate_deviation > 0.0);
        assert!(
            tol.stats.max_rate_deviation <= 0.002,
            "perturbation is at the third decimal: {}",
            tol.stats.max_rate_deviation
        );
        assert_eq!(tol.stats.max_rate_deviation, env.max_deviation());
        // The lumped "exchange back to 0" coefficient is the
        // representative's 2.0, standing in for member rates 2.0 and
        // 2.001 — its recorded interval must cover both. (Scan node
        // indices: the level-1 node order depends on the Kronecker
        // translation.)
        let covered = (0..8).any(|node| {
            let site = TermSite {
                level: 1,
                node,
                row: 1,
                col: 0,
                child: ChildId::Terminal,
                coef: 2.0,
            };
            let w = env.widen(&site);
            w.lo <= 2.0 && w.hi >= 2.001
        });
        assert!(covered, "envelope covers both member aggregates");
    }

    #[test]
    fn exact_kind_tolerance_lump_records_envelope_too() {
        let mrp = near_symmetric_mrp();
        let tol = LumpRequest::new(LumpKind::Exact)
            .tolerance(Tolerance::Decimals(2))
            .run(&mrp)
            .unwrap();
        assert!(tol.stats.lumped_states < tol.stats.original_states);
        let env = tol.envelope.as_ref().expect("tolerance run");
        assert!(!env.is_empty());
        assert!(tol.stats.max_rate_deviation > 0.0);
        assert_eq!(tol.stats.max_rate_deviation, env.max_deviation());
    }

    #[test]
    fn exactly_lumpable_tolerance_run_has_empty_envelope() {
        // The genuinely symmetric model lumps under a tolerance run, but
        // every member aggregate equals its representative's bit for bit,
        // so no envelope entry is recorded and the absorbed deviation is
        // exactly zero — the property that lets the bounds path return
        // degenerate [x, x] intervals for exactly lumpable models.
        let mrp = symmetric_mrp();
        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let result = LumpRequest::new(kind)
                .tolerance(Tolerance::Decimals(2))
                .run(&mrp)
                .unwrap();
            assert!(result.stats.lumped_states < result.stats.original_states);
            let env = result.envelope.as_ref().expect("tolerance run");
            assert!(env.is_empty(), "{kind:?}: {} entries", env.len());
            assert_eq!(result.stats.max_rate_deviation, 0.0);
        }
    }

    #[test]
    fn exact_tolerance_runs_carry_no_envelope() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary)
            .tolerance(Tolerance::Exact)
            .run(&mrp)
            .unwrap();
        assert!(result.envelope.is_none());
        assert_eq!(result.stats.max_rate_deviation, 0.0);
    }

    #[test]
    fn enveloped_quotient_is_bit_identical_to_plain_quotient() {
        // The envelope recording must not change the lumped diagram
        // itself (beyond explicit zero-rate anchors, which the flat
        // matrix cannot see).
        for mrp in [symmetric_mrp(), near_symmetric_mrp()] {
            for kind in [LumpKind::Ordinary, LumpKind::Exact] {
                let tol = LumpRequest::new(kind)
                    .tolerance(Tolerance::Decimals(2))
                    .run(&mrp)
                    .unwrap();
                let exact = LumpRequest::new(kind)
                    .tolerance(Tolerance::Exact)
                    .seed_partitions(tol.partitions.iter().cloned().map(Some).collect())
                    .run(&mrp)
                    .unwrap();
                assert_eq!(
                    tol.mrp
                        .matrix()
                        .flatten()
                        .max_abs_diff(&exact.mrp.matrix().flatten()),
                    0.0,
                    "{kind:?}: enveloped quotient bitwise equal"
                );
            }
        }
    }

    #[test]
    fn expired_deadline_interrupts_lumping() {
        let mrp = symmetric_mrp();
        let err = LumpRequest::new(LumpKind::Ordinary)
            .budget(Budget::unlimited().deadline_in(Duration::ZERO))
            .run(&mrp)
            .unwrap_err();
        match err {
            crate::CoreError::Interrupted { phase, .. } => {
                assert!(phase.starts_with("lump."), "{phase}")
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }
}
