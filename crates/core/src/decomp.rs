use std::fmt;
use std::sync::Arc;

use mdl_mdd::Mdd;
use mdl_partition::Partition;

use crate::{CoreError, Result};

/// A user-supplied combination function for [`Combiner::Custom`].
pub type CombineFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// How per-level function values combine into a global value — the paper's
/// `g` in `r(s) = g(f₁(s₁), …, f_L(s_L))`.
#[derive(Clone)]
pub enum Combiner {
    /// `g(a₁, …, a_L) = Σ a_i` — natural for additive rate rewards.
    Sum,
    /// `g(a₁, …, a_L) = Π a_i` — natural for indicator rewards and
    /// factorized initial distributions (including point masses).
    Product,
    /// An arbitrary combination function. Supported for evaluation and
    /// materialization; symbolic lumping of custom-combined vectors is
    /// rejected with [`CoreError::CustomCombiner`].
    Custom(CombineFn),
}

impl fmt::Debug for Combiner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Combiner::Sum => write!(f, "Sum"),
            Combiner::Product => write!(f, "Product"),
            Combiner::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Combiner {
    fn apply(&self, values: &[f64]) -> f64 {
        match self {
            Combiner::Sum => values.iter().sum(),
            Combiner::Product => values.iter().product(),
            Combiner::Custom(g) => g(values),
        }
    }
}

/// How one level of a [`DecomposableVector`] is lumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LumpMode {
    /// `f̂(C) = f(rep(C))` — requires the value to be constant on classes.
    /// The main algorithm uses [`LumpMode::Mean`] (identical on constant
    /// classes, robust under tolerant comparison); this mode is kept for
    /// the strict-constancy checks in tests.
    #[allow(dead_code)]
    Representative,
    /// `f̂(C) = Σ_{s∈C} f(s)` — correct per-level summation for
    /// product-form vectors over product-form classes (Theorem 2's
    /// `π̂(C) = π(C)`).
    Sum,
    /// `f̂(C) = mean_{s∈C} f(s)` — correct per-level averaging for both sum
    /// and product combiners over product-form classes (Theorem 2's
    /// `r̂(C) = r(C)/|C|`).
    Mean,
}

/// A vector over the global state space in the paper's decomposable form
/// `v(s₁, …, s_L) = g(f₁(s₁), …, f_L(s_L))`: one real-valued function per
/// MD level plus a [`Combiner`].
///
/// Rate rewards and initial probability distributions are supplied in this
/// form so the compositional lumping algorithm can derive its per-level
/// initial partitions from the `f_i` alone.
///
/// # Example
///
/// ```
/// use mdl_core::{Combiner, DecomposableVector};
///
/// // Availability indicator on level 2 of a 2-level model.
/// let v = DecomposableVector::new(
///     vec![vec![1.0, 1.0], vec![1.0, 0.0, 1.0]],
///     Combiner::Product,
/// )?;
/// assert_eq!(v.evaluate(&[0, 1]), 0.0);
/// assert_eq!(v.evaluate(&[1, 2]), 1.0);
/// # Ok::<(), mdl_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecomposableVector {
    levels: Vec<Vec<f64>>,
    combiner: Combiner,
}

impl DecomposableVector {
    /// Creates a decomposable vector from per-level value tables.
    ///
    /// # Errors
    ///
    /// [`CoreError::Decomposable`] if `levels` is empty, any level is
    /// empty, or any value is non-finite.
    pub fn new(levels: Vec<Vec<f64>>, combiner: Combiner) -> Result<Self> {
        if levels.is_empty() || levels.iter().any(Vec::is_empty) {
            return Err(CoreError::Decomposable {
                reason: "per-level tables must be non-empty".into(),
            });
        }
        for (l, table) in levels.iter().enumerate() {
            if let Some(v) = table.iter().find(|v| !v.is_finite()) {
                return Err(CoreError::Decomposable {
                    reason: format!("non-finite value {v} at level {l}"),
                });
            }
        }
        Ok(DecomposableVector { levels, combiner })
    }

    /// The globally constant vector with the given value (product form).
    ///
    /// # Errors
    ///
    /// [`CoreError::Decomposable`] on an empty shape or non-finite value.
    pub fn constant(sizes: &[usize], value: f64) -> Result<Self> {
        let mut levels: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![1.0; n]).collect();
        if let Some(first) = levels.first_mut() {
            for v in first.iter_mut() {
                *v = value;
            }
        }
        DecomposableVector::new(levels, Combiner::Product)
    }

    /// The uniform distribution over `count` states (product form): every
    /// state evaluates to `1/count`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Decomposable`] on an empty shape or `count == 0`.
    pub fn uniform(sizes: &[usize], count: u64) -> Result<Self> {
        if count == 0 {
            return Err(CoreError::Decomposable {
                reason: "uniform over zero states".into(),
            });
        }
        DecomposableVector::constant(sizes, 1.0 / count as f64)
    }

    /// The point mass on `state` (product of indicators — the paper's
    /// example encoding of `π_ini(s₀) = 1`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Decomposable`] if the state is out of range.
    pub fn point_mass(sizes: &[usize], state: &[u32]) -> Result<Self> {
        if state.len() != sizes.len() {
            return Err(CoreError::Decomposable {
                reason: format!("state arity {} vs {} levels", state.len(), sizes.len()),
            });
        }
        let mut levels = Vec::with_capacity(sizes.len());
        for (l, (&n, &s)) in sizes.iter().zip(state).enumerate() {
            if s as usize >= n {
                return Err(CoreError::Decomposable {
                    reason: format!("component {s} out of range at level {l}"),
                });
            }
            let mut table = vec![0.0; n];
            table[s as usize] = 1.0;
            levels.push(table);
        }
        DecomposableVector::new(levels, Combiner::Product)
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The per-level sizes the vector is defined over.
    pub fn sizes(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// The value table `f_i` of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_values(&self, level: usize) -> &[f64] {
        &self.levels[level]
    }

    /// The combiner `g`.
    pub fn combiner(&self) -> &Combiner {
        &self.combiner
    }

    /// `true` when the combiner is `Product`.
    pub fn is_product_form(&self) -> bool {
        matches!(self.combiner, Combiner::Product)
    }

    /// Evaluates the vector at a global state.
    ///
    /// # Panics
    ///
    /// Panics on arity or range errors.
    pub fn evaluate(&self, state: &[u32]) -> f64 {
        assert_eq!(state.len(), self.levels.len(), "state arity");
        let values: Vec<f64> = state
            .iter()
            .zip(&self.levels)
            .map(|(&s, t)| t[s as usize])
            .collect();
        self.combiner.apply(&values)
    }

    /// Materializes the vector over the states of `reach`, in MDD index
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the MDD's shape does not match.
    pub fn materialize(&self, reach: &Mdd) -> Vec<f64> {
        assert_eq!(reach.sizes(), self.sizes().as_slice(), "MDD shape");
        let mut out = vec![0.0; reach.count() as usize];
        let mut scratch = Vec::with_capacity(self.levels.len());
        reach.for_each_tuple(|tuple, rank| {
            scratch.clear();
            scratch.extend(tuple.iter().zip(&self.levels).map(|(&s, t)| t[s as usize]));
            out[rank as usize] = self.combiner.apply(&scratch);
        });
        out
    }

    /// Lumps the vector by per-level partitions using the given per-level
    /// mode (see [`LumpMode`]); `what` names the vector in error messages.
    pub(crate) fn lump(
        &self,
        partitions: &[Partition],
        mode: LumpMode,
        what: &'static str,
    ) -> Result<DecomposableVector> {
        if partitions.len() != self.levels.len() {
            return Err(CoreError::ShapeMismatch {
                detail: format!(
                    "{} partitions for {} levels",
                    partitions.len(),
                    self.levels.len()
                ),
            });
        }
        match (&self.combiner, mode) {
            (Combiner::Custom(_), _) => return Err(CoreError::CustomCombiner { what }),
            (Combiner::Sum, LumpMode::Sum) => {
                return Err(CoreError::NotProductForm { what });
            }
            _ => {}
        }
        let mut new_levels = Vec::with_capacity(self.levels.len());
        for (table, p) in self.levels.iter().zip(partitions) {
            if p.num_states() != table.len() {
                return Err(CoreError::ShapeMismatch {
                    detail: format!(
                        "partition over {} states for a level of size {}",
                        p.num_states(),
                        table.len()
                    ),
                });
            }
            let mut new_table = Vec::with_capacity(p.num_classes());
            for (_, members) in p.iter() {
                let v = match mode {
                    LumpMode::Representative => {
                        let rep = table[members[0]];
                        if members.iter().any(|&s| table[s] != rep) {
                            return Err(CoreError::Decomposable {
                                reason: format!(
                                    "{what} is not constant on a lumping class; \
                                     representative lumping is unsound"
                                ),
                            });
                        }
                        rep
                    }
                    LumpMode::Sum => members.iter().map(|&s| table[s]).sum(),
                    LumpMode::Mean => {
                        members.iter().map(|&s| table[s]).sum::<f64>() / members.len() as f64
                    }
                };
                new_table.push(v);
            }
            new_levels.push(new_table);
        }
        DecomposableVector::new(new_levels, self.combiner.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_evaluation() {
        let v = DecomposableVector::new(vec![vec![2.0, 3.0], vec![1.0, 0.5]], Combiner::Product)
            .unwrap();
        assert_eq!(v.evaluate(&[1, 1]), 1.5);
    }

    #[test]
    fn sum_evaluation() {
        let v =
            DecomposableVector::new(vec![vec![2.0, 3.0], vec![1.0, 0.5]], Combiner::Sum).unwrap();
        assert_eq!(v.evaluate(&[0, 1]), 2.5);
    }

    #[test]
    fn custom_evaluation() {
        let v = DecomposableVector::new(
            vec![vec![2.0, 3.0], vec![1.0, 4.0]],
            Combiner::Custom(Arc::new(|a| a.iter().cloned().fold(f64::MIN, f64::max))),
        )
        .unwrap();
        assert_eq!(v.evaluate(&[0, 1]), 4.0);
    }

    #[test]
    fn point_mass_is_indicator() {
        let v = DecomposableVector::point_mass(&[2, 3], &[1, 2]).unwrap();
        assert_eq!(v.evaluate(&[1, 2]), 1.0);
        assert_eq!(v.evaluate(&[1, 1]), 0.0);
        assert_eq!(v.evaluate(&[0, 2]), 0.0);
    }

    #[test]
    fn constant_is_constant() {
        let v = DecomposableVector::constant(&[2, 2], 7.5).unwrap();
        for a in 0..2 {
            for b in 0..2 {
                assert_eq!(v.evaluate(&[a, b]), 7.5);
            }
        }
    }

    #[test]
    fn materialize_over_mdd() {
        let v = DecomposableVector::new(
            vec![vec![1.0, 10.0], vec![1.0, 2.0, 3.0]],
            Combiner::Product,
        )
        .unwrap();
        let mdd = Mdd::from_tuples(vec![2, 3], vec![vec![0, 0], vec![1, 2], vec![0, 2]]).unwrap();
        assert_eq!(v.materialize(&mdd), vec![1.0, 3.0, 30.0]);
    }

    #[test]
    fn lump_sum_mode_sums_classes() {
        let v = DecomposableVector::new(
            vec![vec![0.5, 0.25, 0.25], vec![1.0, 1.0]],
            Combiner::Product,
        )
        .unwrap();
        let p0 = Partition::from_classes(vec![vec![0], vec![1, 2]]);
        let p1 = Partition::single_class(2);
        let lumped = v.lump(&[p0, p1], LumpMode::Sum, "initial").unwrap();
        assert_eq!(lumped.level_values(0), &[0.5, 0.5]);
        assert_eq!(lumped.level_values(1), &[2.0]);
    }

    #[test]
    fn lump_mean_mode_averages() {
        let v = DecomposableVector::new(vec![vec![2.0, 4.0]], Combiner::Sum).unwrap();
        let p = Partition::single_class(2);
        let lumped = v.lump(&[p], LumpMode::Mean, "reward").unwrap();
        assert_eq!(lumped.level_values(0), &[3.0]);
    }

    #[test]
    fn lump_representative_requires_constancy() {
        let v = DecomposableVector::new(vec![vec![2.0, 4.0]], Combiner::Sum).unwrap();
        let p = Partition::single_class(2);
        assert!(v.lump(&[p], LumpMode::Representative, "reward").is_err());
    }

    #[test]
    fn lump_sum_rejects_sum_combiner() {
        let v = DecomposableVector::new(vec![vec![1.0, 1.0]], Combiner::Sum).unwrap();
        let p = Partition::single_class(2);
        assert!(matches!(
            v.lump(&[p], LumpMode::Sum, "initial"),
            Err(CoreError::NotProductForm { .. })
        ));
    }

    #[test]
    fn lump_rejects_custom_combiner() {
        let v = DecomposableVector::new(vec![vec![1.0, 1.0]], Combiner::Custom(Arc::new(|a| a[0])))
            .unwrap();
        let p = Partition::single_class(2);
        assert!(matches!(
            v.lump(&[p], LumpMode::Mean, "reward"),
            Err(CoreError::CustomCombiner { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(DecomposableVector::new(vec![vec![f64::NAN]], Combiner::Sum).is_err());
        assert!(DecomposableVector::new(vec![], Combiner::Sum).is_err());
    }
}
