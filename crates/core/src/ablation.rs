//! The rejected design alternative of Section 4, implemented for the
//! ablation experiments: computing the level-local key `K` by **expanding
//! child matrices** instead of comparing formal sums.
//!
//! The paper observes that taking `K(R_{n₂}, s₂, C₂) = R_{n₂}(s₂, C₂)` as
//! an actual matrix (of size up to `|S₃| × |S₃|`, where level 3 is the
//! merge of all lower levels) is *sufficient and necessary* for Eq. (2) but
//! "prohibitively time-consuming", which is why the algorithm compares
//! formal sums over node references instead — sufficient only, but local.
//! This module implements the expanded-matrix key so the trade-off can be
//! measured: the `ablation_key` binary and `key_function` bench compare
//! running time and partition coarseness on models where the two differ.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mdl_linalg::{CooMatrix, CsrMatrix, Tolerance};
use mdl_md::{ChildId, Md, MdNodeId};
use mdl_partition::{comp_lumping, Partition, Splitter, StateId};

use crate::lump::LumpKind;

/// Expands the sub-MD rooted at `node` into an explicit sparse matrix over
/// the **full product** of the levels below `node`'s level (inclusive).
///
/// This is the paper's bottom-up level merge (Section 3) — exponential in
/// the number of remaining levels, which is exactly the cost the formal-sum
/// key avoids.
pub fn expand_node(md: &Md, node: MdNodeId) -> CsrMatrix {
    let mut memo: HashMap<MdNodeId, CsrMatrix> = HashMap::new();
    expand_rec(md, node, &mut memo)
}

fn expand_rec(md: &Md, node: MdNodeId, memo: &mut HashMap<MdNodeId, CsrMatrix>) -> CsrMatrix {
    if let Some(m) = memo.get(&node) {
        return m.clone();
    }
    let level = node.level as usize;
    let size = md.sizes()[level];
    let below: usize = md.sizes()[level + 1..].iter().product();
    let n = size * below;
    let mut out = CooMatrix::new(n, n);
    for e in md.node_ref(node).entries() {
        for t in e.terms() {
            match t.child {
                ChildId::Terminal => {
                    out.push(e.row() as usize, e.col() as usize, t.coef);
                }
                ChildId::Node(c) => {
                    let child = expand_rec(
                        md,
                        MdNodeId {
                            level: node.level + 1,
                            index: c,
                        },
                        memo,
                    );
                    for (r, cc, v) in child.iter() {
                        out.push(
                            e.row() as usize * below + r,
                            e.col() as usize * below + cc,
                            t.coef * v,
                        );
                    }
                }
            }
        }
    }
    let m = out.to_csr();
    memo.insert(node, m.clone());
    m
}

/// Canonical comparable form of a matrix: sorted `(row, col, key)` triplets
/// under the tolerance.
type MatrixKey = Vec<(u64, u64, i128)>;

struct ExpandedSplitter<'a> {
    md: &'a Md,
    level: usize,
    kind: LumpKind,
    /// Expanded child matrix per node reference at `level + 1` (empty map
    /// for the last level).
    expanded: HashMap<u32, CsrMatrix>,
    tolerance: Tolerance,
}

impl<'a> ExpandedSplitter<'a> {
    fn new(md: &'a Md, level: usize, kind: LumpKind, tolerance: Tolerance) -> Self {
        let mut expanded = HashMap::new();
        if level + 1 < md.num_levels() {
            let mut memo = HashMap::new();
            for node in md.level_node_refs(level) {
                for e in node.entries() {
                    for t in e.terms() {
                        if let ChildId::Node(c) = t.child {
                            expanded.entry(c).or_insert_with(|| {
                                expand_rec(
                                    md,
                                    MdNodeId {
                                        level: level as u32 + 1,
                                        index: c,
                                    },
                                    &mut memo,
                                )
                            });
                        }
                    }
                }
            }
        }
        ExpandedSplitter {
            md,
            level,
            kind,
            expanded,
            tolerance,
        }
    }

    /// Key of one accumulated formal sum, as the expanded matrix
    /// `Σ coef · expand(child)`.
    fn matrix_key(&self, sums: &HashMap<ChildId, f64>) -> MatrixKey {
        let zero = self.tolerance.key(0.0);
        let mut acc: HashMap<(u64, u64), f64> = HashMap::new();
        for (&child, &coef) in sums {
            match child {
                ChildId::Terminal => {
                    *acc.entry((0, 0)).or_insert(0.0) += coef;
                }
                ChildId::Node(c) => {
                    let m = &self.expanded[&c];
                    for (r, cc, v) in m.iter() {
                        *acc.entry((r as u64, cc as u64)).or_insert(0.0) += coef * v;
                    }
                }
            }
        }
        let mut key: MatrixKey = acc
            .into_iter()
            .map(|((r, c), v)| (r, c, self.tolerance.key(v)))
            .filter(|&(_, _, k)| k != zero)
            .collect();
        key.sort_unstable();
        key
    }
}

/// Per-state accumulator: for each node of the level, the
/// child-to-coefficient sums collected from the splitter class.
type NodeSums = Vec<(u32, HashMap<ChildId, f64>)>;

impl Splitter for ExpandedSplitter<'_> {
    /// Per node of the level: the expanded class-summed block matrix.
    type Key = Vec<(u32, MatrixKey)>;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, Self::Key)>) {
        // (state, node) -> child -> coefficient sum.
        let mut acc: HashMap<StateId, NodeSums> = HashMap::new();
        for (ni, node) in self.md.level_node_refs(self.level).enumerate() {
            match self.kind {
                LumpKind::Ordinary => {
                    for e in node.entries() {
                        if class.binary_search(&(e.col() as StateId)).is_err() {
                            continue;
                        }
                        let rows = acc.entry(e.row() as StateId).or_default();
                        let sums = match rows.last_mut() {
                            Some((n, s)) if *n == ni as u32 => s,
                            _ => {
                                rows.push((ni as u32, HashMap::new()));
                                &mut rows.last_mut().expect("just pushed").1
                            }
                        };
                        for t in e.terms() {
                            *sums.entry(t.child).or_insert(0.0) += t.coef;
                        }
                    }
                }
                LumpKind::Exact => {
                    for &row in class {
                        for e in node.row(row as u32) {
                            let cols = acc.entry(e.col() as StateId).or_default();
                            let sums = match cols.last_mut() {
                                Some((n, s)) if *n == ni as u32 => s,
                                _ => {
                                    cols.push((ni as u32, HashMap::new()));
                                    &mut cols.last_mut().expect("just pushed").1
                                }
                            };
                            for t in e.terms() {
                                *sums.entry(t.child).or_insert(0.0) += t.coef;
                            }
                        }
                    }
                }
            }
        }
        for (state, per_node) in acc {
            let mut key: Vec<(u32, MatrixKey)> = per_node
                .into_iter()
                .map(|(n, sums)| (n, self.matrix_key(&sums)))
                .filter(|(_, k)| !k.is_empty())
                .collect();
            key.sort_by_key(|e| e.0);
            if !key.is_empty() {
                out.push((state, key));
            }
        }
    }
}

/// Result of one expanded-key refinement run.
#[derive(Debug, Clone)]
pub struct ExpandedKeyResult {
    /// The computed partition.
    pub partition: Partition,
    /// Wall-clock time of the refinement (including child expansion).
    pub elapsed: Duration,
}

/// Runs level-local refinement with the **expanded-matrix** key — the
/// sufficient-*and*-necessary condition the paper rejects for cost reasons.
///
/// The resulting partition is at least as coarse as the formal-sum one
/// (`comp_lumping_level`); the `ablation_key` experiment measures both the
/// time gap and any coarseness gap.
///
/// # Panics
///
/// Panics if `level` is out of range.
pub fn comp_lumping_level_expanded(
    md: &Md,
    level: usize,
    initial: Partition,
    kind: LumpKind,
    tolerance: Tolerance,
) -> ExpandedKeyResult {
    assert!(level < md.num_levels(), "level out of range");
    let start = Instant::now();
    let mut splitter = ExpandedSplitter::new(md, level, kind, tolerance);
    let result = comp_lumping(initial, &mut splitter);
    ExpandedKeyResult {
        partition: result.partition,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::comp_lumping_level;
    use mdl_md::{KroneckerExpr, MdBuilder, SparseFactor, Term};

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    #[test]
    fn expand_reproduces_kronecker_block() {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(2.0, vec![Some(cycle(2, 1.0)), Some(cycle(3, 1.0))]);
        let md = expr.to_md().unwrap();
        let full = expand_node(&md, md.root());
        assert_eq!(full.max_abs_diff(&expr.flatten_full()), 0.0);
    }

    #[test]
    fn expanded_key_matches_formal_sum_on_shared_structure() {
        // Symmetric model: both key functions find the same partition.
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        let mut expr = KroneckerExpr::new(vec![3, 2]);
        expr.add_term(1.0, vec![Some(w), None]);
        expr.add_term(1.0, vec![None, Some(cycle(2, 3.0))]);
        let md = expr.to_md().unwrap();

        let (formal, _) = comp_lumping_level(
            &md.level_nodes(0),
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        let expanded = comp_lumping_level_expanded(
            &md,
            0,
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert_eq!(formal, expanded.partition);
        assert!(formal.same_class(1, 2));
    }

    #[test]
    fn expanded_key_is_coarser_when_sums_coincide() {
        // Construct a level-0 node where state 1 reaches child A with
        // coefficient 2, state 2 reaches children B and C with coefficient
        // 1 each — and A's matrix equals (B + C)/2 · 2 = B + C. The formal
        // sums differ (different node sets) but the expanded matrices are
        // equal, so only the expanded key merges states 1 and 2.
        let mut b = MdBuilder::new(vec![3, 2]).unwrap();
        // Children over S₂ = {0,1}: B = [0->0: 1], C = [1->1: 1],
        // A = identity = B + C.
        let node_b = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let node_c = b
            .intern_node(1, vec![(1, 1, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let node_a = b.intern_identity(1, ChildId::Terminal).unwrap();
        let root = b
            .intern_node(
                0,
                vec![
                    (1, 0, vec![Term::new(1.0, ChildId::Node(node_a))]),
                    (
                        2,
                        0,
                        vec![
                            Term::new(1.0, ChildId::Node(node_b)),
                            Term::new(1.0, ChildId::Node(node_c)),
                        ],
                    ),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();

        let (formal, _) = comp_lumping_level(
            &md.level_nodes(0),
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert!(!formal.same_class(1, 2), "formal sums must distinguish");

        let expanded = comp_lumping_level_expanded(
            &md,
            0,
            Partition::single_class(3),
            LumpKind::Ordinary,
            Tolerance::Exact,
        );
        assert!(
            expanded.partition.same_class(1, 2),
            "expanded matrices coincide"
        );
        // And the expanded partition is coarser or equal.
        assert!(formal.is_refinement_of(&expanded.partition));
    }
}
