use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

use mdl_linalg::Tolerance;
use mdl_md::{ChildId, MdNode};
use mdl_obs::{Budget, BudgetExceeded, ThreadPool};
use mdl_partition::{FallibleSplitter, Splitter, StateId};

/// A refinement key for one level of an MD: for each node of the level (by
/// index) the class-summed formal sum, as canonical
/// `(child, coefficient-key)` pairs — the paper's Section-4 key
/// `K(R_{n₂}, s₂, C₂) = {(r_{n₂,n₃}(s₂, C₂), n₃) | n₃ ∈ N₃}`, extended to
/// a tuple over all nodes of the level (Definition 3 quantifies over
/// `n₂ ∈ N₂`).
pub(crate) type LevelKey = Vec<(u32, Vec<(ChildId, i128)>)>;

/// Levels smaller than this never parallelize a key computation: the
/// per-block re-scan of the splitter class costs more than it saves.
const PAR_MIN_STATES: usize = 64;

/// Per-node column index: for each node, entries grouped by column as
/// `(col, row, entry index)` sorted by column.
fn column_index(nodes: &[MdNode]) -> Vec<Vec<(u32, u32, usize)>> {
    nodes
        .iter()
        .map(|n| {
            let mut idx: Vec<(u32, u32, usize)> = n
                .entries()
                .iter()
                .enumerate()
                .map(|(k, e)| (e.col, e.row, k))
                .collect();
            idx.sort_unstable();
            idx
        })
        .collect()
}

/// Accumulates the **ordinary** formal row sums into `class` — restricted
/// to rows in `owned` when given. Contributions to each row arrive in the
/// same (node, class column, column entry) order regardless of `owned`,
/// which is what makes the block-parallel key computation bit-identical
/// to the serial one: every row is accumulated by exactly one block, in
/// serial iteration order (float addition is not associative, so the
/// scheme must — and does — preserve per-row addition order).
fn ordinary_sums(
    nodes: &[MdNode],
    columns: &[Vec<(u32, u32, usize)>],
    class: &[StateId],
    owned: Option<&Range<usize>>,
) -> HashMap<StateId, BTreeMap<(u32, ChildId), f64>> {
    let mut acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>> = HashMap::new();
    for (ni, (node, cols)) in nodes.iter().zip(columns).enumerate() {
        for &col in class {
            let col = col as u32;
            let start = cols.partition_point(|&(c, _, _)| c < col);
            for &(c, row, k) in &cols[start..] {
                if c != col {
                    break;
                }
                if let Some(range) = owned {
                    if !range.contains(&(row as usize)) {
                        continue;
                    }
                }
                let sums = acc.entry(row as StateId).or_default();
                for t in &node.entries()[k].terms {
                    *sums.entry((ni as u32, t.child)).or_insert(0.0) += t.coef;
                }
            }
        }
    }
    acc
}

/// Accumulates the **exact** formal column sums from `class` — restricted
/// to columns in `owned` when given. Same per-state addition-order
/// argument as [`ordinary_sums`], with column ownership instead of row
/// ownership.
fn exact_sums(
    nodes: &[MdNode],
    class: &[StateId],
    owned: Option<&Range<usize>>,
) -> HashMap<StateId, BTreeMap<(u32, ChildId), f64>> {
    let mut acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>> = HashMap::new();
    for (ni, node) in nodes.iter().enumerate() {
        for &row in class {
            for e in node.row(row as u32) {
                if let Some(range) = owned {
                    if !range.contains(&(e.col as usize)) {
                        continue;
                    }
                }
                let sums = acc.entry(e.col as StateId).or_default();
                for t in &e.terms {
                    *sums.entry((ni as u32, t.child)).or_insert(0.0) += t.coef;
                }
            }
        }
    }
    acc
}

/// Shared budget/failpoint preamble of one `try_keys` call. Consulted
/// only under a *limited* budget so the unlimited path (including the
/// infallible legacy entry points) stays guaranteed error-free.
fn guard_call(budget: &Budget) -> Result<(), BudgetExceeded> {
    if budget.is_unlimited() {
        return Ok(());
    }
    if mdl_obs::failpoint::hit("lump.keys").is_some() {
        return Err(BudgetExceeded::Injected);
    }
    budget.check()
}

/// Splitter computing the **ordinary** local condition (Definition 3,
/// Eq. 2): `K(s, C) = (formal row sums into C, per node)`.
///
/// Touches only states with an entry *into* the splitter class in some
/// node, via per-node column indices built once at construction.
///
/// With a multi-worker [`ThreadPool`] (and a level of at least
/// [`PAR_MIN_STATES`] states) the per-state sums fan out block-parallel:
/// each block owns a contiguous row range, walks the class columns of
/// every node and accumulates only its own rows — so the resulting keys,
/// and therefore the refinement, are bit-identical for any thread count.
/// The compute [`Budget`] is honored at block granularity.
pub(crate) struct OrdinaryMdSplitter<'a> {
    nodes: &'a [MdNode],
    columns: Vec<Vec<(u32, u32, usize)>>,
    tolerance: Tolerance,
    zero_key: i128,
    /// Number of local states of the level (the row-ownership domain).
    size: usize,
    pool: ThreadPool,
    budget: Budget,
}

impl<'a> OrdinaryMdSplitter<'a> {
    /// Serial, unlimited-budget splitter (the single-node helpers and the
    /// paper-faithful per-node fixed point use this).
    pub(crate) fn new(nodes: &'a [MdNode], tolerance: Tolerance) -> Self {
        Self::with_pool(
            nodes,
            0,
            tolerance,
            ThreadPool::serial(),
            Budget::unlimited(),
        )
    }

    /// Splitter over a level of `size` local states, fanning key
    /// computations out over `pool` under `budget`.
    pub(crate) fn with_pool(
        nodes: &'a [MdNode],
        size: usize,
        tolerance: Tolerance,
        pool: ThreadPool,
        budget: Budget,
    ) -> Self {
        OrdinaryMdSplitter {
            nodes,
            columns: column_index(nodes),
            tolerance,
            zero_key: tolerance.key(0.0),
            size,
            pool,
            budget,
        }
    }
}

impl FallibleSplitter for OrdinaryMdSplitter<'_> {
    type Key = LevelKey;
    type Error = BudgetExceeded;

    fn try_keys(
        &mut self,
        class: &[StateId],
        out: &mut Vec<(StateId, LevelKey)>,
    ) -> Result<(), BudgetExceeded> {
        guard_call(&self.budget)?;
        if self.pool.threads() == 1 || self.size < PAR_MIN_STATES {
            let span = mdl_obs::span("lump.keys.serial");
            let acc = ordinary_sums(self.nodes, &self.columns, class, None);
            emit(acc, self.tolerance, self.zero_key, out);
            span.finish();
            return Ok(());
        }
        let blocks = mdl_obs::pool::chunk_ranges(self.size, self.pool.threads());
        let mut span = mdl_obs::span("lump.keys.parallel")
            .with("blocks", blocks.len())
            .with("class", class.len());
        let per_block = self.pool.run(blocks.len(), |b| {
            self.budget.check()?;
            let acc = ordinary_sums(self.nodes, &self.columns, class, Some(&blocks[b]));
            let mut local = Vec::new();
            emit(acc, self.tolerance, self.zero_key, &mut local);
            Ok::<_, BudgetExceeded>(local)
        });
        let mut keys = 0usize;
        for block in per_block {
            let block = block?;
            keys += block.len();
            out.extend(block);
        }
        span.record("keys", keys);
        span.finish();
        Ok(())
    }
}

/// Splitter computing the **exact** local condition (Definition 3, Eq. 5):
/// `K(s, C) = (formal column sums from C, per node)`.
///
/// Parallelizes like [`OrdinaryMdSplitter`], with blocks owning
/// contiguous *column* ranges (the exact key accumulates per column).
pub(crate) struct ExactMdSplitter<'a> {
    nodes: &'a [MdNode],
    tolerance: Tolerance,
    zero_key: i128,
    size: usize,
    pool: ThreadPool,
    budget: Budget,
}

impl<'a> ExactMdSplitter<'a> {
    /// Serial, unlimited-budget splitter.
    pub(crate) fn new(nodes: &'a [MdNode], tolerance: Tolerance) -> Self {
        Self::with_pool(
            nodes,
            0,
            tolerance,
            ThreadPool::serial(),
            Budget::unlimited(),
        )
    }

    /// Splitter over a level of `size` local states, fanning key
    /// computations out over `pool` under `budget`.
    pub(crate) fn with_pool(
        nodes: &'a [MdNode],
        size: usize,
        tolerance: Tolerance,
        pool: ThreadPool,
        budget: Budget,
    ) -> Self {
        ExactMdSplitter {
            nodes,
            tolerance,
            zero_key: tolerance.key(0.0),
            size,
            pool,
            budget,
        }
    }
}

impl FallibleSplitter for ExactMdSplitter<'_> {
    type Key = LevelKey;
    type Error = BudgetExceeded;

    fn try_keys(
        &mut self,
        class: &[StateId],
        out: &mut Vec<(StateId, LevelKey)>,
    ) -> Result<(), BudgetExceeded> {
        guard_call(&self.budget)?;
        if self.pool.threads() == 1 || self.size < PAR_MIN_STATES {
            let span = mdl_obs::span("lump.keys.serial");
            let acc = exact_sums(self.nodes, class, None);
            emit(acc, self.tolerance, self.zero_key, out);
            span.finish();
            return Ok(());
        }
        let blocks = mdl_obs::pool::chunk_ranges(self.size, self.pool.threads());
        let mut span = mdl_obs::span("lump.keys.parallel")
            .with("blocks", blocks.len())
            .with("class", class.len());
        let per_block = self.pool.run(blocks.len(), |b| {
            self.budget.check()?;
            let acc = exact_sums(self.nodes, class, Some(&blocks[b]));
            let mut local = Vec::new();
            emit(acc, self.tolerance, self.zero_key, &mut local);
            Ok::<_, BudgetExceeded>(local)
        });
        let mut keys = 0usize;
        for block in per_block {
            let block = block?;
            keys += block.len();
            out.extend(block);
        }
        span.record("keys", keys);
        span.finish();
        Ok(())
    }
}

/// Converts accumulated coefficient sums into canonical keys, dropping
/// zero-summed terms and omitting states whose whole key is default (the
/// engine groups omitted states together).
///
/// The `zero_key` drop is load-bearing for tolerance runs: a member whose
/// class-summed rate rounds to the zero key is grouped with members that
/// have *no* such transition at all. The rate-envelope builders in
/// `lump.rs` compensate by synthesizing explicit zero-rate anchor terms
/// (`MdNode::new_keeping_zeros`) so the certified interval for such a
/// lumped transition widens down to zero instead of vanishing.
fn emit(
    acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>>,
    tolerance: Tolerance,
    zero_key: i128,
    out: &mut Vec<(StateId, LevelKey)>,
) {
    for (state, sums) in acc {
        let mut key: LevelKey = Vec::new();
        for ((node, child), sum) in sums {
            let k = tolerance.key(sum);
            if k == zero_key {
                continue;
            }
            match key.last_mut() {
                Some((n, terms)) if *n == node => terms.push((child, k)),
                _ => key.push((node, vec![(child, k)])),
            }
        }
        if !key.is_empty() {
            out.push((state, key));
        }
    }
}

/// Single-node variants used by the paper-faithful per-node fixed point
/// (Fig. 3a) and the ablation experiments. Always serial and infallible.
pub(crate) struct SingleNodeOrdinarySplitter<'a> {
    inner: OrdinaryMdSplitter<'a>,
}

impl<'a> SingleNodeOrdinarySplitter<'a> {
    pub(crate) fn new(node: &'a MdNode, tolerance: Tolerance) -> Self {
        SingleNodeOrdinarySplitter {
            inner: OrdinaryMdSplitter::new(std::slice::from_ref(node), tolerance),
        }
    }
}

impl Splitter for SingleNodeOrdinarySplitter<'_> {
    type Key = LevelKey;
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        let acc = ordinary_sums(self.inner.nodes, &self.inner.columns, class, None);
        emit(acc, self.inner.tolerance, self.inner.zero_key, out);
    }
}

pub(crate) struct SingleNodeExactSplitter<'a> {
    inner: ExactMdSplitter<'a>,
}

impl<'a> SingleNodeExactSplitter<'a> {
    pub(crate) fn new(node: &'a MdNode, tolerance: Tolerance) -> Self {
        SingleNodeExactSplitter {
            inner: ExactMdSplitter::new(std::slice::from_ref(node), tolerance),
        }
    }
}

impl Splitter for SingleNodeExactSplitter<'_> {
    type Key = LevelKey;
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        let acc = exact_sums(self.inner.nodes, class, None);
        emit(acc, self.inner.tolerance, self.inner.zero_key, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_md::Term;

    fn node(entries: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        // Build through a builder round-trip to obtain a canonical MdNode.
        let mut b = mdl_md::MdBuilder::new(vec![8, 2]).unwrap();
        let child = b.intern_identity(1, ChildId::Terminal).unwrap();
        let remapped: Vec<(u32, u32, Vec<Term>)> = entries
            .into_iter()
            .map(|(r, c, terms)| {
                (
                    r,
                    c,
                    terms
                        .into_iter()
                        .map(|t| Term::new(t.coef, ChildId::Node(child)))
                        .collect(),
                )
            })
            .collect();
        let idx = b.intern_node(0, remapped).unwrap();
        let md = b.finish(idx).unwrap();
        md.node_ref(md.root()).to_node()
    }

    fn try_keys_of(
        s: &mut impl FallibleSplitter<Key = LevelKey, Error = BudgetExceeded>,
        class: &[StateId],
    ) -> Vec<(StateId, LevelKey)> {
        let mut out = Vec::new();
        s.try_keys(class, &mut out).unwrap();
        out.sort_by_key(|(st, _)| *st);
        out
    }

    #[test]
    fn ordinary_key_sums_row_into_class() {
        let n = node(vec![
            (0, 2, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 3, vec![Term::new(2.0, ChildId::Terminal)]),
            (1, 2, vec![Term::new(3.0, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = OrdinaryMdSplitter::new(&nodes, Tolerance::Exact);
        let out = try_keys_of(&mut s, &[2, 3]);
        assert_eq!(out.len(), 2);
        // State 0: 1.0 + 2.0 into class; state 1: 3.0.
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[0].1[0].1[0].1, Tolerance::Exact.key(3.0));
        assert_eq!(out[1].1[0].1[0].1, Tolerance::Exact.key(3.0));
        // Same key (same child, same summed coefficient): would not split.
        assert_eq!(out[0].1, out[1].1);
    }

    #[test]
    fn exact_key_sums_column_from_class() {
        let n = node(vec![
            (2, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (3, 0, vec![Term::new(2.0, ChildId::Terminal)]),
            (2, 1, vec![Term::new(5.0, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = ExactMdSplitter::new(&nodes, Tolerance::Exact);
        let out = try_keys_of(&mut s, &[2, 3]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0); // column 0 receives 1+2
        assert_eq!(out[0].1[0].1[0].1, Tolerance::Exact.key(3.0));
        assert_eq!(out[1].0, 1); // column 1 receives 5
        assert_eq!(out[1].1[0].1[0].1, Tolerance::Exact.key(5.0));
    }

    #[test]
    fn cancelling_sums_are_default() {
        let n = node(vec![
            (0, 2, vec![Term::new(1.5, ChildId::Terminal)]),
            (0, 3, vec![Term::new(-1.5, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = OrdinaryMdSplitter::new(&nodes, Tolerance::Exact);
        let out = try_keys_of(&mut s, &[2, 3]);
        assert!(out.is_empty(), "cancelled sums must be omitted: {out:?}");
    }

    /// Dense-ish random node over `size` states for bit-identity checks.
    fn dense_node(size: usize) -> MdNode {
        let mut b = mdl_md::MdBuilder::new(vec![size, 2]).unwrap();
        let child = b.intern_identity(1, ChildId::Terminal).unwrap();
        let mut entries = Vec::new();
        for r in 0..size as u32 {
            for step in [1usize, 3, 7] {
                let c = (r as usize + step) % size;
                // Awkward fractions so addition order would show up.
                let coef = 0.1 + (r as f64 * 0.37 + step as f64 * 0.011) / 3.0;
                entries.push((r, c as u32, vec![Term::new(coef, ChildId::Node(child))]));
            }
        }
        let idx = b.intern_node(0, entries).unwrap();
        let md = b.finish(idx).unwrap();
        md.node_ref(md.root()).to_node()
    }

    #[test]
    fn parallel_keys_bit_identical_to_serial() {
        let size = 200; // above PAR_MIN_STATES
        let nodes = vec![dense_node(size), dense_node(size)];
        let class: Vec<StateId> = (0..size).step_by(3).collect();
        for kind in ["ordinary", "exact"] {
            let mut serial_out = Vec::new();
            let mut outs = Vec::new();
            for threads in [1usize, 2, 4] {
                let pool = ThreadPool::new(threads);
                let mut out = Vec::new();
                if kind == "ordinary" {
                    let mut s = OrdinaryMdSplitter::with_pool(
                        &nodes,
                        size,
                        Tolerance::Exact,
                        pool,
                        Budget::unlimited(),
                    );
                    s.try_keys(&class, &mut out).unwrap();
                } else {
                    let mut s = ExactMdSplitter::with_pool(
                        &nodes,
                        size,
                        Tolerance::Exact,
                        pool,
                        Budget::unlimited(),
                    );
                    s.try_keys(&class, &mut out).unwrap();
                }
                out.sort_by_key(|(st, _)| *st);
                if threads == 1 {
                    serial_out = out.clone();
                }
                outs.push(out);
            }
            for out in &outs {
                assert_eq!(out, &serial_out, "{kind} keys bit-identical");
            }
        }
    }

    #[test]
    fn expired_deadline_interrupts_key_computation() {
        let size = 200;
        let nodes = vec![dense_node(size)];
        let class: Vec<StateId> = (0..size).collect();
        let budget = Budget::unlimited().deadline_in(std::time::Duration::ZERO);
        let mut s = OrdinaryMdSplitter::with_pool(
            &nodes,
            size,
            Tolerance::Exact,
            ThreadPool::new(4),
            budget,
        );
        let mut out = Vec::new();
        let err = s.try_keys(&class, &mut out).unwrap_err();
        assert!(matches!(err, BudgetExceeded::Deadline { .. }), "{err:?}");
    }
}
