use std::collections::{BTreeMap, HashMap};

use mdl_linalg::Tolerance;
use mdl_md::{ChildId, MdNode};
use mdl_partition::{Splitter, StateId};

/// A refinement key for one level of an MD: for each node of the level (by
/// index) the class-summed formal sum, as canonical
/// `(child, coefficient-key)` pairs — the paper's Section-4 key
/// `K(R_{n₂}, s₂, C₂) = {(r_{n₂,n₃}(s₂, C₂), n₃) | n₃ ∈ N₃}`, extended to
/// a tuple over all nodes of the level (Definition 3 quantifies over
/// `n₂ ∈ N₂`).
pub(crate) type LevelKey = Vec<(u32, Vec<(ChildId, i128)>)>;

/// Per-node column index: for each node, entries grouped by column as
/// `(col, row, entry index)` sorted by column.
fn column_index(nodes: &[MdNode]) -> Vec<Vec<(u32, u32, usize)>> {
    nodes
        .iter()
        .map(|n| {
            let mut idx: Vec<(u32, u32, usize)> = n
                .entries()
                .iter()
                .enumerate()
                .map(|(k, e)| (e.col, e.row, k))
                .collect();
            idx.sort_unstable();
            idx
        })
        .collect()
}

/// Splitter computing the **ordinary** local condition (Definition 3,
/// Eq. 2): `K(s, C) = (formal row sums into C, per node)`.
///
/// Touches only states with an entry *into* the splitter class in some
/// node, via per-node column indices built once at construction.
pub(crate) struct OrdinaryMdSplitter<'a> {
    nodes: &'a [MdNode],
    columns: Vec<Vec<(u32, u32, usize)>>,
    tolerance: Tolerance,
    zero_key: i128,
}

impl<'a> OrdinaryMdSplitter<'a> {
    pub(crate) fn new(nodes: &'a [MdNode], tolerance: Tolerance) -> Self {
        OrdinaryMdSplitter {
            nodes,
            columns: column_index(nodes),
            tolerance,
            zero_key: tolerance.key(0.0),
        }
    }
}

impl Splitter for OrdinaryMdSplitter<'_> {
    type Key = LevelKey;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        // (row, node, child) -> coefficient sum over the class's columns.
        let mut acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>> = HashMap::new();
        for (ni, (node, cols)) in self.nodes.iter().zip(&self.columns).enumerate() {
            for &col in class {
                let col = col as u32;
                let start = cols.partition_point(|&(c, _, _)| c < col);
                for &(c, row, k) in &cols[start..] {
                    if c != col {
                        break;
                    }
                    let sums = acc.entry(row as StateId).or_default();
                    for t in &node.entries()[k].terms {
                        *sums.entry((ni as u32, t.child)).or_insert(0.0) += t.coef;
                    }
                }
            }
        }
        emit(acc, self.tolerance, self.zero_key, out);
    }
}

/// Splitter computing the **exact** local condition (Definition 3, Eq. 5):
/// `K(s, C) = (formal column sums from C, per node)`.
pub(crate) struct ExactMdSplitter<'a> {
    nodes: &'a [MdNode],
    tolerance: Tolerance,
    zero_key: i128,
}

impl<'a> ExactMdSplitter<'a> {
    pub(crate) fn new(nodes: &'a [MdNode], tolerance: Tolerance) -> Self {
        ExactMdSplitter {
            nodes,
            tolerance,
            zero_key: tolerance.key(0.0),
        }
    }
}

impl Splitter for ExactMdSplitter<'_> {
    type Key = LevelKey;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        let mut acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>> = HashMap::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            for &row in class {
                for e in node.row(row as u32) {
                    let sums = acc.entry(e.col as StateId).or_default();
                    for t in &e.terms {
                        *sums.entry((ni as u32, t.child)).or_insert(0.0) += t.coef;
                    }
                }
            }
        }
        emit(acc, self.tolerance, self.zero_key, out);
    }
}

/// Converts accumulated coefficient sums into canonical keys, dropping
/// zero-summed terms and omitting states whose whole key is default (the
/// engine groups omitted states together).
fn emit(
    acc: HashMap<StateId, BTreeMap<(u32, ChildId), f64>>,
    tolerance: Tolerance,
    zero_key: i128,
    out: &mut Vec<(StateId, LevelKey)>,
) {
    for (state, sums) in acc {
        let mut key: LevelKey = Vec::new();
        for ((node, child), sum) in sums {
            let k = tolerance.key(sum);
            if k == zero_key {
                continue;
            }
            match key.last_mut() {
                Some((n, terms)) if *n == node => terms.push((child, k)),
                _ => key.push((node, vec![(child, k)])),
            }
        }
        if !key.is_empty() {
            out.push((state, key));
        }
    }
}

/// Single-node variants used by the paper-faithful per-node fixed point
/// (Fig. 3a) and the ablation experiments.
pub(crate) struct SingleNodeOrdinarySplitter<'a> {
    inner: OrdinaryMdSplitter<'a>,
}

impl<'a> SingleNodeOrdinarySplitter<'a> {
    pub(crate) fn new(node: &'a MdNode, tolerance: Tolerance) -> Self {
        SingleNodeOrdinarySplitter {
            inner: OrdinaryMdSplitter::new(std::slice::from_ref(node), tolerance),
        }
    }
}

impl Splitter for SingleNodeOrdinarySplitter<'_> {
    type Key = LevelKey;
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        self.inner.keys(class, out);
    }
}

pub(crate) struct SingleNodeExactSplitter<'a> {
    inner: ExactMdSplitter<'a>,
}

impl<'a> SingleNodeExactSplitter<'a> {
    pub(crate) fn new(node: &'a MdNode, tolerance: Tolerance) -> Self {
        SingleNodeExactSplitter {
            inner: ExactMdSplitter::new(std::slice::from_ref(node), tolerance),
        }
    }
}

impl Splitter for SingleNodeExactSplitter<'_> {
    type Key = LevelKey;
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, LevelKey)>) {
        self.inner.keys(class, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_md::Term;

    fn node(entries: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        // Build through a builder round-trip to obtain a canonical MdNode.
        let mut b = mdl_md::MdBuilder::new(vec![8, 2]).unwrap();
        let child = b.intern_identity(1, ChildId::Terminal).unwrap();
        let remapped: Vec<(u32, u32, Vec<Term>)> = entries
            .into_iter()
            .map(|(r, c, terms)| {
                (
                    r,
                    c,
                    terms
                        .into_iter()
                        .map(|t| Term::new(t.coef, ChildId::Node(child)))
                        .collect(),
                )
            })
            .collect();
        let idx = b.intern_node(0, remapped).unwrap();
        let md = b.finish(idx).unwrap();
        md.node(md.root()).clone()
    }

    #[test]
    fn ordinary_key_sums_row_into_class() {
        let n = node(vec![
            (0, 2, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 3, vec![Term::new(2.0, ChildId::Terminal)]),
            (1, 2, vec![Term::new(3.0, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = OrdinaryMdSplitter::new(&nodes, Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[2, 3], &mut out);
        out.sort_by_key(|(st, _)| *st);
        assert_eq!(out.len(), 2);
        // State 0: 1.0 + 2.0 into class; state 1: 3.0.
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[0].1[0].1[0].1, Tolerance::Exact.key(3.0));
        assert_eq!(out[1].1[0].1[0].1, Tolerance::Exact.key(3.0));
        // Same key (same child, same summed coefficient): would not split.
        assert_eq!(out[0].1, out[1].1);
    }

    #[test]
    fn exact_key_sums_column_from_class() {
        let n = node(vec![
            (2, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (3, 0, vec![Term::new(2.0, ChildId::Terminal)]),
            (2, 1, vec![Term::new(5.0, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = ExactMdSplitter::new(&nodes, Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[2, 3], &mut out);
        out.sort_by_key(|(st, _)| *st);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0); // column 0 receives 1+2
        assert_eq!(out[0].1[0].1[0].1, Tolerance::Exact.key(3.0));
        assert_eq!(out[1].0, 1); // column 1 receives 5
        assert_eq!(out[1].1[0].1[0].1, Tolerance::Exact.key(5.0));
    }

    #[test]
    fn cancelling_sums_are_default() {
        let n = node(vec![
            (0, 2, vec![Term::new(1.5, ChildId::Terminal)]),
            (0, 3, vec![Term::new(-1.5, ChildId::Terminal)]),
        ]);
        let nodes = vec![n];
        let mut s = OrdinaryMdSplitter::new(&nodes, Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[2, 3], &mut out);
        assert!(out.is_empty(), "cancelled sums must be omitted: {out:?}");
    }
}
