//! Independent verification that a compositional lump is a genuine
//! (ordinary/exact) lumping of the original CTMC.
//!
//! These checks flatten both chains and test the Theorem-1 conditions and
//! the Theorem-2 quotient directly — deliberately sharing no code with the
//! lumping algorithm. They power the property-based test suite and the
//! `optimality` experiment binary (the paper's Section 5 check that the
//! compositional result is already optimally lumped).

use std::fmt;

use mdl_linalg::Tolerance;
use mdl_mdd::Mdd;
use mdl_partition::Partition;

use crate::lump::LumpResult;
use crate::mrp::MdMrp;

/// A verification failure, describing what broke and where.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyFailure {
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lumping verification failed: {}", self.detail)
    }
}

impl std::error::Error for VerifyFailure {}

/// Maps every original reachable state (by MDD index) to its lumped state
/// (by the lumped MDD's index), via the per-level class of each component.
///
/// # Panics
///
/// Panics if a class tuple is missing from the lumped state space (cannot
/// happen for partitions produced by [`LumpRequest`](crate::LumpRequest)).
pub fn global_state_map(
    original_reach: &Mdd,
    lumped_reach: &Mdd,
    partitions: &[Partition],
) -> Vec<usize> {
    let mut map = vec![0usize; original_reach.count() as usize];
    let mut class_tuple = vec![0u32; partitions.len()];
    original_reach.for_each_tuple(|tuple, idx| {
        for (l, &s) in tuple.iter().enumerate() {
            class_tuple[l] = partitions[l].class_of(s as usize) as u32;
        }
        let li = lumped_reach
            .index_of(&class_tuple)
            .expect("lumped class tuple must be reachable");
        map[idx as usize] = li as usize;
    });
    map
}

/// The global partition induced by per-level partitions on the original
/// reachable state space: class `i` = states mapping to lumped state `i`.
pub fn global_partition(
    original_reach: &Mdd,
    lumped_reach: &Mdd,
    partitions: &[Partition],
) -> Partition {
    let map = global_state_map(original_reach, lumped_reach, partitions);
    let k = lumped_reach.count() as usize;
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (s, &c) in map.iter().enumerate() {
        classes[c].push(s);
    }
    Partition::from_classes(classes)
}

/// Verifies an **ordinary** compositional lump end-to-end on the flat
/// chains: Theorem-1a conditions on the original, and `R̂` equal to the
/// Theorem-2 quotient. O(states · classes) — verification only.
///
/// # Errors
///
/// [`VerifyFailure`] describing the first violated condition.
pub fn verify_ordinary(
    original: &MdMrp,
    result: &LumpResult,
    tolerance: Tolerance,
) -> Result<(), VerifyFailure> {
    let flat = original.matrix().flatten();
    let reward = original.reward_vector();
    let partition = global_partition(
        original.matrix().reach(),
        result.mrp.matrix().reach(),
        &result.partitions,
    );
    if !mdl_statelump::is_ordinarily_lumpable(&flat, &reward, &partition, tolerance) {
        return Err(VerifyFailure {
            detail: "induced global partition violates ordinary lumpability (Theorem 1a)".into(),
        });
    }
    // R̂ must equal the Theorem-2 quotient R(rep, C).
    let lumped_flat = result.mrp.matrix().flatten();
    let k = partition.num_classes();
    for (ci, members) in partition.iter() {
        let mut sums = vec![0.0; k];
        for (t, v) in flat.row(members[0]) {
            sums[partition.class_of(t)] += v;
        }
        for (cj, &expected) in sums.iter().enumerate() {
            let got = lumped_flat.get(ci, cj);
            if !tolerance.eq(expected, got) {
                return Err(VerifyFailure {
                    detail: format!(
                        "lumped rate R̂({ci}, {cj}) = {got}, expected R(rep, C) = {expected}"
                    ),
                });
            }
        }
    }
    // r̂ must be the class value (constant on classes for ordinary lumping).
    let lumped_reward = result.mrp.reward_vector();
    for (ci, members) in partition.iter() {
        let mean: f64 = members.iter().map(|&s| reward[s]).sum::<f64>() / members.len() as f64;
        if !tolerance.eq(mean, lumped_reward[ci]) {
            return Err(VerifyFailure {
                detail: format!(
                    "lumped reward r̂({ci}) = {}, expected {mean}",
                    lumped_reward[ci]
                ),
            });
        }
    }
    Ok(())
}

/// Verifies an **exact** compositional lump end-to-end on the flat chains:
/// Theorem-1b conditions on the original, and `R̂` equal to the Theorem-2
/// quotient `R(C, rep)`.
///
/// # Errors
///
/// [`VerifyFailure`] describing the first violated condition.
pub fn verify_exact(
    original: &MdMrp,
    result: &LumpResult,
    tolerance: Tolerance,
) -> Result<(), VerifyFailure> {
    let flat = original.matrix().flatten();
    let initial = original.initial_vector();
    let partition = global_partition(
        original.matrix().reach(),
        result.mrp.matrix().reach(),
        &result.partitions,
    );
    if !mdl_statelump::is_exactly_lumpable(&flat, &initial, &partition, tolerance) {
        return Err(VerifyFailure {
            detail: "induced global partition violates exact lumpability (Theorem 1b)".into(),
        });
    }
    let lumped_flat = result.mrp.matrix().flatten();
    let k = partition.num_classes();
    // Column sums into representatives: R(C_i, rep_j).
    let mut reps = vec![usize::MAX; flat.nrows()];
    for (cj, members) in partition.iter() {
        reps[members[0]] = cj;
    }
    let mut sums = vec![vec![0.0; k]; k];
    for s in 0..flat.nrows() {
        let ci = partition.class_of(s);
        for (t, v) in flat.row(s) {
            if reps[t] != usize::MAX {
                sums[ci][reps[t]] += v;
            }
        }
    }
    for (ci, row) in sums.iter().enumerate() {
        for (cj, &expected) in row.iter().enumerate() {
            let got = lumped_flat.get(ci, cj);
            if !tolerance.eq(expected, got) {
                return Err(VerifyFailure {
                    detail: format!(
                        "lumped rate R̂({ci}, {cj}) = {got}, expected R(C, rep) = {expected}"
                    ),
                });
            }
        }
    }
    // π̂ must be the class sum.
    let lumped_initial = result.mrp.initial_vector();
    for (ci, members) in partition.iter() {
        let sum: f64 = members.iter().map(|&s| initial[s]).sum();
        if !tolerance.eq(sum, lumped_initial[ci]) {
            return Err(VerifyFailure {
                detail: format!(
                    "lumped initial π̂({ci}) = {}, expected {sum}",
                    lumped_initial[ci]
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::DecomposableVector;
    use crate::lump::{LumpKind, LumpRequest};
    use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};

    fn symmetric_mrp() -> MdMrp {
        let mut w = SparseFactor::new(3);
        w.push(0, 1, 1.0);
        w.push(0, 2, 1.0);
        w.push(1, 0, 2.0);
        w.push(2, 0, 2.0);
        let mut cyc = SparseFactor::new(2);
        cyc.push(0, 1, 3.0);
        cyc.push(1, 0, 3.0);
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(cyc), None]);
        expr.add_term(1.0, vec![None, Some(w)]);
        let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
        let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
        let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn ordinary_result_verifies() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
    }

    #[test]
    fn exact_result_verifies() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
        verify_exact(&mrp, &result, Tolerance::default()).unwrap();
    }

    #[test]
    fn global_map_is_consistent_with_partitions() {
        let mrp = symmetric_mrp();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let p = global_partition(
            mrp.matrix().reach(),
            result.mrp.matrix().reach(),
            &result.partitions,
        );
        assert_eq!(p.num_classes() as u64, result.stats.lumped_states);
        assert_eq!(p.num_states() as u64, result.stats.original_states);
    }

    #[test]
    fn tampered_result_fails_verification() {
        use mdl_md::{MdNode, Term};
        let mrp = symmetric_mrp();
        let mut result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // Corrupt the lumped MD: scale every coefficient of the last
        // level's nodes. Shapes stay valid; the quotient rates are now
        // wrong and verification must notice.
        let (mut md, reach) = result.mrp.matrix().clone().into_parts();
        let last = md.num_levels() - 1;
        let size = md.sizes()[last];
        let tampered: Vec<MdNode> = md
            .level_nodes(last)
            .iter()
            .map(|n| {
                MdNode::new(
                    n.entries()
                        .iter()
                        .map(|e| {
                            (
                                e.row,
                                e.col,
                                e.terms
                                    .iter()
                                    .map(|t| Term::new(t.coef * 2.0, t.child))
                                    .collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        md.replace_level(last, size, tampered).unwrap();
        let fake_matrix = MdMatrix::new(md, reach).unwrap();
        let (_, reward, initial) = result.mrp.clone().into_parts();
        result.mrp = MdMrp::new(fake_matrix, reward, initial).unwrap();
        assert!(verify_ordinary(&mrp, &result, Tolerance::default()).is_err());
    }
}
