//! Compositional lumping of CTMCs represented as matrix diagrams — the
//! algorithm of *Derisavi, Kemper & Sanders, “Lumping Matrix Diagram
//! Representations of Markov Models”, DSN 2005*.
//!
//! Given a Markov reward process whose state-transition rate matrix is a
//! matrix diagram ([`MdMrp`]), a [`LumpRequest`] run computes, **per level
//! of the MD**, the coarsest partition of the level's local state space
//! satisfying the paper's *local* lumpability conditions (Definition 3):
//!
//! * **ordinary** (`≈_lo`): equal level-reward `f_i` values and, in every
//!   node of the level, equal class-summed formal sums
//!   `Σ_{s′∈C} Σ_k r_k(s, s′) · R_k` (compared as sets of
//!   `(coefficient, child node)` pairs — Section 4's key function, which
//!   never expands child matrices);
//! * **exact** (`≈_le`): dual conditions on columns, plus equal per-child
//!   local row sums and equal level-initial-probability `f_{π,i}` values.
//!
//! Theorems 3 and 4 of the paper guarantee the induced global equivalence
//! (equality at all other levels) is an ordinary/exact lumping of the whole
//! CTMC. Each node is then replaced by its quotient (Theorem 2 applied
//! levelwise) and the reachable-state MDD is quotiented alongside, so the
//! result is again a symbolic [`MdMrp`] — with iteration vectors smaller by
//! the overall reduction factor.
//!
//! One refinement beyond the paper's presentation (which assumes the MD
//! acts on the full product space): because vectors here are indexed by a
//! reachability MDD, the initial partitions additionally require equivalent
//! local states to be **structurally interchangeable in the MDD** (identical
//! children in every MDD node of the level). See `DESIGN.md` §4.2.
//!
//! # Example
//!
//! ```
//! use mdl_core::{Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
//! use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
//! use mdl_mdd::Mdd;
//!
//! // Two levels: a 2-state cycle × a 3-state component whose states 1 and
//! // 2 are symmetric (same exchange rates with state 0 and each other).
//! let mut w = SparseFactor::new(3);
//! w.push(0, 1, 1.0); w.push(0, 2, 1.0);
//! w.push(1, 0, 2.0); w.push(2, 0, 2.0);
//! w.push(1, 2, 0.5); w.push(2, 1, 0.5);
//! let mut cyc = SparseFactor::new(2);
//! cyc.push(0, 1, 3.0); cyc.push(1, 0, 3.0);
//! let mut expr = KroneckerExpr::new(vec![2, 3]);
//! expr.add_term(1.0, vec![Some(cyc), None]);
//! expr.add_term(1.0, vec![None, Some(w)]);
//!
//! let matrix = MdMatrix::new(expr.to_md()?, Mdd::full(vec![2, 3])?)?;
//! // A reward that observes the cycle position keeps level 1 unlumped.
//! let reward = DecomposableVector::new(
//!     vec![vec![0.0, 1.0], vec![1.0, 1.0, 1.0]],
//!     Combiner::Product,
//! )?;
//! let initial = DecomposableVector::uniform(&[2, 3], 6)?;
//! let mrp = MdMrp::new(matrix, reward, initial)?;
//!
//! let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp)?;
//! // States 1 and 2 of level 2 merge: 2 × 3 = 6 states become 2 × 2 = 4.
//! assert_eq!(result.mrp.num_states(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
mod decomp;
mod error;
pub mod exact;
mod local;
mod lump;
mod mrp;
mod pipeline;
mod resilient;
mod solve;
mod splitter;
mod sweep;
pub mod verify;

pub use decomp::{Combiner, DecomposableVector};
pub use error::CoreError;
pub use local::{comp_lumping_level, comp_lumping_level_per_node, comp_lumping_level_pooled};
pub use lump::{
    LevelLumpStats, LumpKind, LumpOptions, LumpRequest, LumpResult, LumpStats, RateEnvelope,
};
pub use mrp::{KernelKind, KernelOptions, MdMrp};
pub use pipeline::{model_source_key, transient_resume, Pipeline, Staged};
pub use resilient::{KernelRung, MdResilientOptions};
pub use solve::{SolveOutcome, SolveRequest, SolveTarget};
pub use sweep::{sweep_grid, SweepOutcome, SweepPoint, SweepPointResult, SweepRequest};

/// Convenience alias for fallible operations of this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
