//! Arena-identity properties: persisting a matrix diagram through its
//! arena image (the `mdimg` store artifact) and computing on the
//! restored copy must be indistinguishable — same lumped partitions,
//! same quotient, solver output bit-identical to 0 ulp.

use proptest::prelude::*;

use mdl_core::{DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdl_ctmc::{stationary_power, SolverOptions};
use mdl_md::{CompiledMdMatrix, KroneckerExpr, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;
use mdl_store::{Artifact, MdImage};

const SIZES: [usize; 2] = [2, 3];

fn factor(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (
        0..size,
        0..size,
        prop::sample::select(vec![0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..size * 2).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r, c, v);
        }
        f
    })
}

fn expr() -> impl Strategy<Value = KroneckerExpr> {
    let term = (
        prop::sample::select(vec![0.5, 1.0, 1.5]),
        prop::option::of(factor(SIZES[0])),
        prop::option::of(factor(SIZES[1])),
    );
    prop::collection::vec(term, 1..4).prop_map(|terms| {
        let mut e = KroneckerExpr::new(SIZES.to_vec());
        for (rate, a, b) in terms {
            e.add_term(rate, vec![a, b]);
        }
        e
    })
}

fn mrp_of(md: mdl_md::Md) -> MdMrp {
    let matrix = MdMatrix::new(md, Mdd::full(SIZES.to_vec()).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&SIZES, 1.0).unwrap();
    let initial = DecomposableVector::uniform(&SIZES, 6).unwrap();
    MdMrp::new(matrix, reward, initial).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Lumping the original MRP and an MRP whose MD went through the
    /// serialized arena image yields identical partitions, an identical
    /// quotient MD, and (when the quotient solves) bit-identical
    /// stationary vectors.
    #[test]
    fn lump_and_solve_commute_with_image_round_trip(e in expr()) {
        let md = e.to_md().unwrap();
        let restored = MdImage::from_bytes(&MdImage(md.clone()).to_bytes())
            .unwrap()
            .into_inner();
        for level in 0..md.num_levels() {
            prop_assert_eq!(restored.level_nodes(level), md.level_nodes(level));
        }

        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let orig = LumpRequest::new(kind).run(&mrp_of(md.clone())).unwrap();
            let trip = LumpRequest::new(kind).run(&mrp_of(restored.clone())).unwrap();
            prop_assert_eq!(&trip.partitions, &orig.partitions, "kind {:?}", kind);
            let orig_md = orig.mrp.matrix().md();
            let trip_md = trip.mrp.matrix().md();
            for level in 0..orig_md.num_levels() {
                prop_assert_eq!(
                    trip_md.level_nodes(level),
                    orig_md.level_nodes(level),
                    "kind {:?} level {}", kind, level
                );
            }

            let solve = |r: &mdl_core::LumpResult| {
                stationary_power(
                    &CompiledMdMatrix::compile(r.mrp.matrix()),
                    &SolverOptions::default(),
                )
            };
            match (solve(&orig), solve(&trip)) {
                (Ok(a), Ok(b)) => {
                    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
                    prop_assert_eq!(bits(&b.probabilities), bits(&a.probabilities), "kind {:?}", kind);
                }
                // Random generators produce reducible/empty chains the
                // power method rejects — identically on both sides.
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "solver divergence: {:?} vs {:?}", a.map(|_|()), b.map(|_|())),
            }
        }
    }
}
