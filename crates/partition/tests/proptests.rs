//! Property-based tests for the partition-refinement engine: the computed
//! partition must be the coarsest stable refinement, independent of input
//! order, and always structurally valid.

use proptest::prelude::*;

use mdl_partition::{comp_lumping, Partition, Splitter, StateId};

/// A dense rate matrix as the splitter context, with ordinary-lumping
/// keys (`K(s, C) = Σ_{c∈C} R(s, c)` as exact bit patterns — rates are
/// drawn from dyadic constants, so sums are exact).
struct DenseSplitter {
    rates: Vec<Vec<f64>>,
}

impl Splitter for DenseSplitter {
    type Key = u64;
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, u64)>) {
        for (s, row) in self.rates.iter().enumerate() {
            let sum: f64 = class.iter().map(|&c| row[c]).sum();
            if sum != 0.0 {
                out.push((s, sum.to_bits()));
            }
        }
    }
}

fn rates(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![0.0, 0.0, 0.5, 1.0, 2.0]), n),
        n,
    )
}

/// Reference implementation: brute-force coarsest stable partition by
/// iterating "split every class by every class" to a fixed point.
fn brute_force(rates: &[Vec<f64>], initial: &Partition) -> Partition {
    let n = rates.len();
    let mut p = initial.clone();
    loop {
        let mut changed = false;
        let classes: Vec<Vec<StateId>> = p.iter().map(|(_, m)| m.to_vec()).collect();
        for splitter in &classes {
            let key = |s: usize| -> u64 {
                let sum: f64 = splitter.iter().map(|&c| rates[s][c]).sum();
                sum.to_bits()
            };
            let refined = Partition::from_key_fn(n, |s| (p.class_of(s), key(s)));
            if refined.num_classes() != p.num_classes() {
                p = refined;
                changed = true;
            }
        }
        if !changed {
            let mut q = p.clone();
            q.canonicalize();
            return q;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_brute_force(r in rates(7)) {
        let initial = Partition::single_class(7);
        let fast =
            comp_lumping(initial.clone(), &mut DenseSplitter { rates: r.clone() }).partition;
        let slow = brute_force(&r, &initial);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn engine_matches_brute_force_with_nontrivial_initial(r in rates(6), split in 1usize..5) {
        let initial = Partition::from_key_fn(6, |s| s < split);
        let fast =
            comp_lumping(initial.clone(), &mut DenseSplitter { rates: r.clone() }).partition;
        let slow = brute_force(&r, &initial);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn result_is_valid_refinement(r in rates(8)) {
        let initial = Partition::from_key_fn(8, |s| s % 2);
        let result = comp_lumping(initial.clone(), &mut DenseSplitter { rates: r }).partition;
        prop_assert!(result.validate());
        prop_assert!(result.is_refinement_of(&initial));
    }

    #[test]
    fn result_is_stable(r in rates(6)) {
        // Stability: refining the result against any of its own classes
        // must not split anything.
        let result = comp_lumping(
            Partition::single_class(6),
            &mut DenseSplitter { rates: r.clone() },
        )
        .partition;
        for (_, members) in result.iter() {
            for (_, other) in result.iter() {
                let sums: Vec<u64> = members
                    .iter()
                    .map(|&s| {
                        let sum: f64 = other.iter().map(|&c| r[s][c]).sum();
                        sum.to_bits()
                    })
                    .collect();
                prop_assert!(sums.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn intersect_commutes(a_mod in 2usize..4, b_mod in 2usize..4) {
        let a = Partition::from_key_fn(12, |s| s % a_mod);
        let b = Partition::from_key_fn(12, |s| s / b_mod);
        let mut ab = a.intersect(&b);
        let mut ba = b.intersect(&a);
        ab.canonicalize();
        ba.canonicalize();
        prop_assert_eq!(ab, ba);
    }
}
