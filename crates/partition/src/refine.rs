use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

use crate::{ClassId, Partition, StateId};

/// The key function `K(R, s, C)` of the paper's `CompLumping` procedure,
/// abstracted over both the matrix context and the key's data type `T`.
///
/// Given a splitter class `C` (a slice of states), an implementation emits
/// `(state, key)` pairs for every state whose key with respect to `C` is
/// **not** the default ("zero") key. States that are not emitted are treated
/// as all sharing the default key — this is what makes refinement
/// proportional to the predecessors/successors of the splitter instead of
/// the whole state space.
///
/// # Contract
///
/// * Each state appears **at most once** per call (accumulate internally).
/// * A state whose key equals the canonical default (empty formal sum, zero
///   rate sum, …) must be **omitted**, so that it groups with the untouched
///   states.
/// * Keys must be canonical: two mathematically equal keys must compare
///   equal (`Eq`) and order equal (`Ord`).
pub trait Splitter {
    /// The comparable key type — the paper's "data type `T`".
    type Key: Clone + Eq + Hash + Ord + Debug;

    /// Emits `(state, key)` pairs for all states with a non-default key with
    /// respect to the splitter class `class`.
    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, Self::Key)>);
}

/// A [`Splitter`] whose key computation can abort — the hook through
/// which compute budgets (deadlines, cancellation) and fault injection
/// reach the refinement inner loop without this crate depending on any
/// budget machinery. The same key contract as [`Splitter`] applies.
///
/// Every infallible [`Splitter`] is a `FallibleSplitter` with
/// `Error = Infallible` (blanket impl), so [`comp_lumping_fallible`]
/// subsumes [`comp_lumping`].
pub trait FallibleSplitter {
    /// The comparable key type — the paper's "data type `T`".
    type Key: Clone + Eq + Hash + Ord + Debug;
    /// Why a key computation aborted (e.g. a budget ran out).
    type Error;

    /// As [`Splitter::keys`], or `Err` to abort the whole refinement.
    ///
    /// # Errors
    ///
    /// Implementation-defined; an error propagates out of
    /// [`comp_lumping_fallible`] unchanged.
    fn try_keys(
        &mut self,
        class: &[StateId],
        out: &mut Vec<(StateId, Self::Key)>,
    ) -> Result<(), Self::Error>;
}

impl<S: Splitter> FallibleSplitter for S {
    type Key = S::Key;
    type Error = std::convert::Infallible;

    fn try_keys(
        &mut self,
        class: &[StateId],
        out: &mut Vec<(StateId, Self::Key)>,
    ) -> Result<(), Self::Error> {
        self.keys(class, out);
        Ok(())
    }
}

/// Counters describing one [`comp_lumping`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefinementStats {
    /// Splitter classes popped from the worklist.
    pub splitters_processed: usize,
    /// Classes that were split into two or more subclasses.
    pub classes_split: usize,
    /// Total `(state, key)` pairs produced by the splitter.
    pub keys_emitted: usize,
}

/// Result of a [`comp_lumping`] run.
#[derive(Debug, Clone)]
pub struct RefinementResult {
    /// The computed lumpable partition (a refinement of the initial one).
    pub partition: Partition,
    /// Work counters.
    pub stats: RefinementStats,
}

/// The `CompLumping` procedure of the paper (Fig. 1b): repeatedly refines
/// `initial` with respect to a worklist of potential splitter classes until
/// every class has a uniform key with respect to every class — i.e. until
/// the partition satisfies the lumpability condition encoded by the
/// [`Splitter`].
///
/// The worklist starts with all classes of the initial partition; whenever a
/// class is split, **all** of its subclasses are enqueued (as in the paper's
/// `Split`, Fig. 1c). Splitter classes are snapshotted when enqueued;
/// refining against a stale (already-split) class is harmless — it can only
/// fail to split, never split incorrectly — and the fresh subclasses are on
/// the worklist themselves.
///
/// The returned partition is canonicalized (classes ordered by smallest
/// member) so results are reproducible.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn comp_lumping<S: Splitter>(initial: Partition, splitter: &mut S) -> RefinementResult {
    match comp_lumping_fallible(initial, splitter) {
        Ok(result) => result,
        Err(never) => match never {},
    }
}

/// [`comp_lumping`] over a [`FallibleSplitter`]: identical algorithm and
/// identical result for identical keys, but a key computation returning
/// `Err` aborts the refinement and propagates the error.
///
/// The worklist order — and therefore the sequence of splitter classes
/// each `try_keys` call sees — does not depend on anything the splitter
/// does besides the keys it emits, so a parallel splitter that emits the
/// same keys as its serial counterpart yields a bit-identical partition.
///
/// # Errors
///
/// The first error returned by `splitter.try_keys`.
pub fn comp_lumping_fallible<S: FallibleSplitter>(
    initial: Partition,
    splitter: &mut S,
) -> Result<RefinementResult, S::Error> {
    let mut partition = initial;
    let mut stats = RefinementStats::default();
    let mut worklist: VecDeque<Vec<StateId>> = partition.iter().map(|(_, m)| m.to_vec()).collect();
    let mut buf: Vec<(StateId, S::Key)> = Vec::new();

    while let Some(splitter_class) = worklist.pop_front() {
        stats.splitters_processed += 1;
        buf.clear();
        splitter.try_keys(&splitter_class, &mut buf)?;
        stats.keys_emitted += buf.len();
        if buf.is_empty() {
            continue;
        }

        // Group touched states by their current class.
        let mut touched: BTreeMap<ClassId, Vec<(StateId, S::Key)>> = BTreeMap::new();
        for (s, k) in buf.drain(..) {
            touched
                .entry(partition.class_of(s))
                .or_default()
                .push((s, k));
        }

        for (class, pairs) in touched {
            let class_len = partition.members(class).len();
            if class_len == 1 {
                continue;
            }
            // Group the touched members by key (deterministically, keys are Ord).
            let mut by_key: BTreeMap<S::Key, Vec<StateId>> = BTreeMap::new();
            let mut touched_count = 0usize;
            for (s, k) in pairs {
                by_key.entry(k).or_default().push(s);
                touched_count += 1;
            }
            let untouched_exist = touched_count < class_len;
            if by_key.len() == 1 && !untouched_exist {
                continue; // uniform key, no split
            }

            // The untouched members (default key) form one more group.
            let mut groups: Vec<Vec<StateId>> = Vec::with_capacity(by_key.len() + 1);
            if untouched_exist {
                let mut is_touched = std::collections::HashSet::with_capacity(touched_count);
                for g in by_key.values() {
                    is_touched.extend(g.iter().copied());
                }
                groups.push(
                    partition
                        .members(class)
                        .iter()
                        .copied()
                        .filter(|s| !is_touched.contains(s))
                        .collect(),
                );
            }
            groups.extend(by_key.into_values());

            stats.classes_split += 1;
            let new_ids = partition.split_class(class, groups);
            for id in new_ids {
                worklist.push_back(partition.members(id).to_vec());
            }
        }
    }

    partition.canonicalize();
    debug_assert!(partition.validate());
    Ok(RefinementResult { partition, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A splitter over an explicit dense rate matrix computing
    /// `K(s, C) = R(s, C)` (ordinary lumpability), with keys as rate bits.
    struct DenseOrdinary {
        rates: Vec<Vec<f64>>,
    }

    impl Splitter for DenseOrdinary {
        type Key = u64;
        fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, u64)>) {
            for (s, row) in self.rates.iter().enumerate() {
                let sum: f64 = class.iter().map(|&c| row[c]).sum();
                if sum != 0.0 {
                    out.push((s, sum.to_bits()));
                }
            }
        }
    }

    fn refine(rates: Vec<Vec<f64>>, initial: Partition) -> Partition {
        comp_lumping(initial, &mut DenseOrdinary { rates }).partition
    }

    #[test]
    fn symmetric_pair_lumps() {
        // 0 and 1 both go to {2} with rate 1; 2 returns to each with rate 1.
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let p = refine(rates, Partition::single_class(3));
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1));
        assert!(!p.same_class(0, 2));
    }

    #[test]
    fn asymmetric_rates_split() {
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 2.0], // different rate to 2 => not equivalent to 0
            vec![1.0, 1.0, 0.0],
        ];
        let p = refine(rates, Partition::single_class(3));
        assert_eq!(p.num_classes(), 3);
    }

    #[test]
    fn initial_partition_respected() {
        // Identical dynamics but initial partition separates 0 and 1
        // (e.g. different reward values).
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let init = Partition::from_classes(vec![vec![0], vec![1], vec![2]]);
        let p = refine(rates, init.clone());
        assert_eq!(p.num_classes(), 3);
    }

    #[test]
    fn refinement_result_refines_initial() {
        let rates = vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 2.0],
            vec![0.0, 0.0, 2.0, 0.0],
        ];
        let init = Partition::single_class(4);
        let p = refine(rates, init.clone());
        assert!(p.is_refinement_of(&init));
        // {0,1} self-symmetric with rate 1, {2,3} with rate 2: cannot merge
        // across because rates differ.
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1));
        assert!(p.same_class(2, 3));
    }

    #[test]
    fn untouched_states_group_with_default_key() {
        // State 2 has no transition into the splitter {3}; states 0, 1 do
        // with different rates. Class {0,1,2} must split three ways... but
        // 2 groups with nothing else (default key group).
        let rates = vec![
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
        ];
        let init = Partition::from_classes(vec![vec![0, 1, 2], vec![3]]);
        let p = refine(rates, init);
        assert_eq!(p.num_classes(), 4);
    }

    #[test]
    fn stats_count_work() {
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 2.0],
            vec![1.0, 1.0, 0.0],
        ];
        let r = comp_lumping(Partition::single_class(3), &mut DenseOrdinary { rates });
        assert!(r.stats.splitters_processed >= 1);
        assert!(r.stats.classes_split >= 1);
        assert!(r.stats.keys_emitted >= 2);
    }

    #[test]
    fn three_way_symmetry_found() {
        // Three identical states cycling into a hub.
        let rates = vec![
            vec![0.0, 0.0, 0.0, 5.0],
            vec![0.0, 0.0, 0.0, 5.0],
            vec![0.0, 0.0, 0.0, 5.0],
            vec![2.0, 2.0, 2.0, 0.0],
        ];
        let p = refine(rates, Partition::single_class(4));
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1) && p.same_class(1, 2));
    }

    #[test]
    fn discrete_initial_stays_discrete() {
        let rates = vec![vec![0.0; 3]; 3];
        let p = refine(rates, Partition::discrete(3));
        assert!(p.is_discrete());
    }

    /// Fails on the `fail_on`-th `try_keys` call; delegates otherwise.
    struct FailingSplitter {
        inner: DenseOrdinary,
        calls: usize,
        fail_on: usize,
    }

    impl FallibleSplitter for FailingSplitter {
        type Key = u64;
        type Error = &'static str;
        fn try_keys(
            &mut self,
            class: &[StateId],
            out: &mut Vec<(StateId, u64)>,
        ) -> Result<(), &'static str> {
            self.calls += 1;
            if self.calls == self.fail_on {
                return Err("budget expired");
            }
            self.inner.keys(class, out);
            Ok(())
        }
    }

    #[test]
    fn fallible_error_aborts_refinement() {
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 2.0],
            vec![1.0, 1.0, 0.0],
        ];
        let mut s = FailingSplitter {
            inner: DenseOrdinary { rates },
            calls: 0,
            fail_on: 1,
        };
        let err = comp_lumping_fallible(Partition::single_class(3), &mut s).unwrap_err();
        assert_eq!(err, "budget expired");
    }

    #[test]
    fn fallible_without_error_matches_infallible() {
        let rates = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 2.0],
            vec![1.0, 1.0, 0.0],
        ];
        let plain = comp_lumping(
            Partition::single_class(3),
            &mut DenseOrdinary {
                rates: rates.clone(),
            },
        );
        let mut never = FailingSplitter {
            inner: DenseOrdinary { rates },
            calls: 0,
            fail_on: usize::MAX,
        };
        let fallible = comp_lumping_fallible(Partition::single_class(3), &mut never).unwrap();
        assert_eq!(plain.partition, fallible.partition);
        assert_eq!(plain.stats, fallible.stats);
    }
}
