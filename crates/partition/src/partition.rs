use std::collections::HashMap;
use std::hash::Hash;

/// Index of a state in `{0, …, n−1}`.
pub type StateId = usize;

/// Index of an equivalence class of a [`Partition`].
pub type ClassId = usize;

/// A partition of the finite set `{0, …, n−1}` into non-empty equivalence
/// classes.
///
/// Both directions of the correspondence are stored: `class_of(s)` in O(1)
/// and the member list of each class. Class member lists are kept sorted so
/// iteration order — and therefore every algorithm built on top — is
/// deterministic.
///
/// # Example
///
/// ```
/// use mdl_partition::Partition;
///
/// let p = Partition::from_key_fn(5, |s| s % 2);
/// assert_eq!(p.num_classes(), 2);
/// assert_eq!(p.members(p.class_of(1)), &[1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    class_of: Vec<ClassId>,
    members: Vec<Vec<StateId>>,
}

impl Partition {
    /// The trivial partition: one class containing every state.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; partitions of the empty set are not meaningful
    /// for lumping.
    pub fn single_class(n: usize) -> Self {
        assert!(n > 0, "partition of an empty state space");
        Partition {
            class_of: vec![0; n],
            members: vec![(0..n).collect()],
        }
    }

    /// The discrete partition: every state in its own class.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn discrete(n: usize) -> Self {
        assert!(n > 0, "partition of an empty state space");
        Partition {
            class_of: (0..n).collect(),
            members: (0..n).map(|s| vec![s]).collect(),
        }
    }

    /// Builds a partition by grouping states that share a key.
    ///
    /// This is how the paper's initial partitions `P_ini` are formed (group
    /// by reward value for ordinary lumping; by initial probability and exit
    /// rate for exact lumping). Classes are numbered by the smallest state
    /// they contain.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_key_fn<K, F>(n: usize, mut key: F) -> Self
    where
        K: Hash + Eq,
        F: FnMut(StateId) -> K,
    {
        assert!(n > 0, "partition of an empty state space");
        let mut groups: HashMap<K, ClassId> = HashMap::new();
        let mut members: Vec<Vec<StateId>> = Vec::new();
        let mut class_of = Vec::with_capacity(n);
        for s in 0..n {
            let k = key(s);
            let c = *groups.entry(k).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            members[c].push(s);
            class_of.push(c);
        }
        Partition { class_of, members }
    }

    /// Builds a partition from explicit class member lists.
    ///
    /// # Panics
    ///
    /// Panics unless the lists are a partition of `{0, …, n−1}` for some
    /// `n > 0` (each state exactly once, no empty class).
    pub fn from_classes(classes: Vec<Vec<StateId>>) -> Self {
        let n: usize = classes.iter().map(Vec::len).sum();
        assert!(n > 0, "partition of an empty state space");
        let mut class_of = vec![usize::MAX; n];
        let mut members = classes;
        for (c, m) in members.iter_mut().enumerate() {
            assert!(!m.is_empty(), "empty class {c}");
            m.sort_unstable();
            for &s in m.iter() {
                assert!(s < n, "state {s} out of range for {n} states");
                assert!(class_of[s] == usize::MAX, "state {s} in two classes");
                class_of[s] = c;
            }
        }
        Partition { class_of, members }
    }

    /// Fallible [`Self::from_classes`], for class lists that crossed a
    /// serialization boundary and cannot be trusted.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first defect: an empty
    /// class list, an empty class, an out-of-range state, or a state in
    /// two classes.
    pub fn try_from_classes(classes: Vec<Vec<StateId>>) -> Result<Self, String> {
        let n: usize = classes.iter().map(Vec::len).sum();
        if n == 0 {
            return Err("partition of an empty state space".into());
        }
        let mut class_of = vec![usize::MAX; n];
        let mut members = classes;
        for (c, m) in members.iter_mut().enumerate() {
            if m.is_empty() {
                return Err(format!("class {c} is empty"));
            }
            m.sort_unstable();
            for &s in m.iter() {
                if s >= n {
                    return Err(format!("state {s} out of range for {n} states"));
                }
                if class_of[s] != usize::MAX {
                    return Err(format!("state {s} appears in two classes"));
                }
                class_of[s] = c;
            }
        }
        Ok(Partition { class_of, members })
    }

    /// Number of states the partition covers.
    pub fn num_states(&self) -> usize {
        self.class_of.len()
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// The class containing state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn class_of(&self, s: StateId) -> ClassId {
        self.class_of[s]
    }

    /// Sorted member list of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn members(&self, c: ClassId) -> &[StateId] {
        &self.members[c]
    }

    /// The representative (smallest member) of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn representative(&self, c: ClassId) -> StateId {
        self.members[c][0]
    }

    /// Iterates over all classes as `(class id, member slice)`.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &[StateId])> {
        self.members
            .iter()
            .enumerate()
            .map(|(c, m)| (c, m.as_slice()))
    }

    /// `true` when two states are equivalent.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn same_class(&self, a: StateId, b: StateId) -> bool {
        self.class_of[a] == self.class_of[b]
    }

    /// `true` if every class of `self` is contained in a class of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the partitions cover different numbers of states.
    pub fn is_refinement_of(&self, other: &Partition) -> bool {
        assert_eq!(self.num_states(), other.num_states());
        self.members.iter().all(|m| {
            let c = other.class_of[m[0]];
            m.iter().all(|&s| other.class_of[s] == c)
        })
    }

    /// The coarsest common refinement of two partitions (classwise
    /// intersection).
    ///
    /// # Panics
    ///
    /// Panics if the partitions cover different numbers of states.
    pub fn intersect(&self, other: &Partition) -> Partition {
        assert_eq!(self.num_states(), other.num_states());
        Partition::from_key_fn(self.num_states(), |s| (self.class_of[s], other.class_of[s]))
    }

    /// Splits class `c` according to `groups`, a partition of its member
    /// list. The first group keeps id `c`; the rest get fresh ids, returned
    /// in order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `groups` is not a partition of the
    /// members of `c`, or (always) if any group is empty.
    pub(crate) fn split_class(&mut self, c: ClassId, groups: Vec<Vec<StateId>>) -> Vec<ClassId> {
        debug_assert_eq!(
            groups.iter().map(Vec::len).sum::<usize>(),
            self.members[c].len(),
            "groups must cover the class"
        );
        let mut new_ids = Vec::with_capacity(groups.len());
        for (i, mut g) in groups.into_iter().enumerate() {
            assert!(!g.is_empty(), "empty group in split");
            g.sort_unstable();
            let id = if i == 0 {
                self.members[c] = g.clone();
                c
            } else {
                self.members.push(g.clone());
                self.members.len() - 1
            };
            for &s in &g {
                self.class_of[s] = id;
            }
            new_ids.push(id);
        }
        new_ids
    }

    /// Renumbers classes so they are ordered by their smallest member.
    ///
    /// Refinement allocates class ids in discovery order; canonicalizing
    /// makes partitions comparable across algorithms and runs.
    pub fn canonicalize(&mut self) {
        let mut order: Vec<ClassId> = (0..self.members.len()).collect();
        order.sort_unstable_by_key(|&c| self.members[c][0]);
        let mut new_members = Vec::with_capacity(self.members.len());
        for &c in &order {
            new_members.push(std::mem::take(&mut self.members[c]));
        }
        self.members = new_members;
        for (c, m) in self.members.iter().enumerate() {
            for &s in m {
                self.class_of[s] = c;
            }
        }
    }

    /// Sizes of all classes, indexed by class id.
    pub fn class_sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// `true` when every class is a singleton.
    pub fn is_discrete(&self) -> bool {
        self.members.len() == self.class_of.len()
    }

    /// Internal consistency check, used by tests and debug assertions.
    pub fn validate(&self) -> bool {
        let n = self.class_of.len();
        let mut seen = vec![false; n];
        for (c, m) in self.members.iter().enumerate() {
            if m.is_empty() || m.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            for &s in m {
                if s >= n || seen[s] || self.class_of[s] != c {
                    return false;
                }
                seen[s] = true;
            }
        }
        seen.into_iter().all(|b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_covers_everything() {
        let p = Partition::single_class(4);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.members(0), &[0, 1, 2, 3]);
        assert!(p.validate());
    }

    #[test]
    fn discrete_is_discrete() {
        let p = Partition::discrete(3);
        assert!(p.is_discrete());
        assert!(p.validate());
        assert!(!p.same_class(0, 1));
    }

    #[test]
    fn from_key_fn_groups() {
        let p = Partition::from_key_fn(6, |s| s % 3);
        assert_eq!(p.num_classes(), 3);
        assert!(p.same_class(0, 3));
        assert!(!p.same_class(0, 1));
        assert!(p.validate());
    }

    #[test]
    fn from_classes_round_trip() {
        let p = Partition::from_classes(vec![vec![2, 0], vec![1], vec![3, 4]]);
        assert_eq!(p.members(0), &[0, 2]);
        assert_eq!(p.class_of(4), 2);
        assert!(p.validate());
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn from_classes_rejects_overlap() {
        let _ = Partition::from_classes(vec![vec![0, 1], vec![1]]);
    }

    #[test]
    fn refinement_relation() {
        let coarse = Partition::from_classes(vec![vec![0, 1, 2], vec![3]]);
        let fine = Partition::from_classes(vec![vec![0, 1], vec![2], vec![3]]);
        assert!(fine.is_refinement_of(&coarse));
        assert!(!coarse.is_refinement_of(&fine));
        assert!(fine.is_refinement_of(&fine));
    }

    #[test]
    fn intersect_is_common_refinement() {
        let a = Partition::from_key_fn(6, |s| s % 2);
        let b = Partition::from_key_fn(6, |s| s / 3);
        let i = a.intersect(&b);
        assert!(i.is_refinement_of(&a));
        assert!(i.is_refinement_of(&b));
        assert_eq!(i.num_classes(), 4);
        assert!(i.validate());
    }

    #[test]
    fn split_class_reuses_id_and_allocates() {
        let mut p = Partition::single_class(5);
        let ids = p.split_class(0, vec![vec![0, 2], vec![1, 3], vec![4]]);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(p.num_classes(), 3);
        assert!(p.same_class(0, 2));
        assert!(!p.same_class(0, 1));
        assert!(p.validate());
    }

    #[test]
    fn canonicalize_orders_by_min_member() {
        let mut p = Partition::from_classes(vec![vec![3, 4], vec![0, 1], vec![2]]);
        p.canonicalize();
        assert_eq!(p.members(0), &[0, 1]);
        assert_eq!(p.members(1), &[2]);
        assert_eq!(p.members(2), &[3, 4]);
        assert!(p.validate());
    }

    #[test]
    fn class_sizes_and_representative() {
        let p = Partition::from_classes(vec![vec![0, 1, 4], vec![2, 3]]);
        assert_eq!(p.class_sizes(), vec![3, 2]);
        assert_eq!(p.representative(0), 0);
        assert_eq!(p.representative(1), 2);
    }
}
