//! Partitions of finite state spaces and the generic partition-refinement
//! engine used for Markov chain lumping.
//!
//! This crate implements the machinery of Fig. 1 and Fig. 2 of
//! *Derisavi, Kemper & Sanders, “Lumping Matrix Diagram Representations of
//! Markov Models”, DSN 2005*:
//!
//! * [`Partition`] — an equivalence relation on `{0, …, n−1}` with explicit
//!   class member lists;
//! * [`Splitter`] — the paper's key function `K(R, s, C)` abstracted over the
//!   key's "data type `T`": any `Eq + Hash + Ord` type works, which is what
//!   allows the same engine to run with scalar keys (flat state-level
//!   lumping, `K = R(s, C)`), with formal-sum keys (the paper's Section 4
//!   MD-local condition), or with anything else;
//! * [`comp_lumping`] — the `CompLumping` procedure: repeated refinement of
//!   an initial partition against a queue of potential splitters until the
//!   lumpability conditions hold.
//!
//! # Example: ordinary lumping of a tiny chain by hand
//!
//! ```
//! use mdl_partition::{comp_lumping, Partition, Splitter, StateId};
//!
//! // A 4-state chain where states {0,1} and {2,3} behave identically.
//! // rate(s -> t):
//! let rates = [
//!     [0.0, 0.0, 1.0, 1.0],
//!     [0.0, 0.0, 1.0, 1.0],
//!     [2.0, 2.0, 0.0, 0.0],
//!     [2.0, 2.0, 0.0, 0.0],
//! ];
//!
//! struct RowSum<'a>(&'a [[f64; 4]; 4]);
//! impl Splitter for RowSum<'_> {
//!     type Key = u64;
//!     fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, u64)>) {
//!         for s in 0..4 {
//!             let sum: f64 = class.iter().map(|&c| self.0[s][c]).sum();
//!             if sum != 0.0 {
//!                 out.push((s, sum.to_bits()));
//!             }
//!         }
//!     }
//! }
//!
//! let result = comp_lumping(Partition::single_class(4), &mut RowSum(&rates));
//! assert_eq!(result.partition.num_classes(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod partition;
mod refine;

pub use partition::{ClassId, Partition, StateId};
pub use refine::{
    comp_lumping, comp_lumping_fallible, FallibleSplitter, RefinementResult, RefinementStats,
    Splitter,
};
