//! End-to-end tests of the `report` benchmark-baseline binary: the
//! baseline file format and the regression gate's exit code only exist
//! at the process boundary.

use std::path::PathBuf;
use std::process::{Command, Output};

use mdl_obs::json::{self, Json};

struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> TempFile {
        TempFile(std::env::temp_dir().join(format!(
            "mdl-bench-report-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_report"));
    cmd.args(args)
        .env_remove("MDL_BENCH_JSONL")
        .env_remove("MDL_FAILPOINTS")
        .env_remove("MDL_BENCH_REV");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("report binary runs")
}

#[test]
fn baseline_emits_versioned_metrics_and_gate_flags_injected_slowdown() {
    let baseline = TempFile::new("baseline");
    let out = run(
        &[
            "--smoke",
            "--reps",
            "1",
            "--rev",
            "testrev",
            "--out",
            baseline.0.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // The baseline file: one meta line plus one bench_metric per line,
    // all valid JSON, with wall-time and peak-memory fields.
    let text = std::fs::read_to_string(&baseline.0).expect("baseline written");
    let mut names = Vec::new();
    let mut meta_rev = None;
    for line in text.lines() {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("bad line ({e}): {line}"));
        match doc.get("type").and_then(Json::as_str) {
            Some("bench_meta") => {
                meta_rev = doc.get("rev").and_then(Json::as_str).map(str::to_owned);
            }
            Some("bench_metric") => {
                assert!(doc.get("wall_ns").and_then(Json::as_u64).is_some());
                assert!(doc.get("peak_bytes").and_then(Json::as_u64).is_some());
                names.push(
                    doc.get("name")
                        .and_then(Json::as_str)
                        .expect("metric name")
                        .to_owned(),
                );
            }
            other => panic!("unexpected record type {other:?}: {line}"),
        }
    }
    assert_eq!(meta_rev.as_deref(), Some("testrev"));
    for expected in [
        "build.tandem",
        "lump.ordinary",
        "compile.kernel",
        "kernel.walk.product",
        "kernel.compiled.product",
        "solve.stationary.lumped",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "metric {expected} present"
        );
    }
    // The counting allocator is installed in this binary, so pipeline
    // stages must report real allocation peaks.
    let doc = json::parse(
        text.lines()
            .find(|l| l.contains("build.tandem"))
            .expect("build metric line"),
    )
    .unwrap();
    assert!(
        doc.get("peak_bytes").and_then(Json::as_u64).unwrap_or(0) > 0,
        "build.tandem reports a nonzero peak"
    );

    // Gate sanity: a re-run with an absurdly loose threshold passes …
    let out2 = TempFile::new("out2");
    let pass = run(
        &[
            "--smoke",
            "--reps",
            "1",
            "--check",
            baseline.0.to_str().unwrap(),
            "--max-wall-regress",
            "100000",
            "--max-mem-regress",
            "100000",
            "--out",
            out2.0.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(pass.status.code(), Some(0), "loose gate passes: {pass:?}");

    // … and an injected per-rep sleep makes the default gate fail: the
    // acceptance check that the regression harness actually bites.
    let out3 = TempFile::new("out3");
    let fail = run(
        &[
            "--smoke",
            "--reps",
            "1",
            "--check",
            baseline.0.to_str().unwrap(),
            "--out",
            out3.0.to_str().unwrap(),
        ],
        &[("MDL_FAILPOINTS", "bench.rep=sleep:400ms")],
    );
    assert_eq!(
        fail.status.code(),
        Some(1),
        "injected slowdown flagged: {fail:?}"
    );
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(stderr.contains("regression"), "{stderr}");
}
