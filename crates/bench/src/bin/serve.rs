//! Closed-loop throughput and tail latency of the `mdl-serve` daemon.
//!
//! Starts an in-process daemon over a scratch warm cache (or targets a
//! running one via `--addr`), then drives it with closed loops of 1, 4
//! and 16 concurrent clients — each client sends a request, waits for
//! the response, repeats. Emits one JSONL row per client count with
//! throughput and latency quantiles; the EXPERIMENTS.md concurrent-
//! throughput table comes from these rows.
//!
//! Run with `cargo run -p mdl-bench --release --bin serve
//! [--smoke | --addr HOST:PORT] [--requests N]`:
//!
//! * `--addr HOST:PORT` — benchmark an externally started daemon (the
//!   CI chaos gate uses this to drive the real binary) instead of the
//!   in-process one.
//! * `--requests N` — requests per client per round (default 50).
//! * `--smoke` — 1 and 4 clients, 5 requests each; exits nonzero if
//!   any response violates the status trichotomy, no request
//!   succeeded, or the warm single-client p50 exceeds 250 ms — the CI
//!   latency contract, deliberately loose for shared runners.
//!
//! Row fields: `type="serve"`, `clients`, `requests`, `ns`,
//! `throughput_rps`, `p50_us`, `p99_us`, `ok`, `shed`, `error`.

use std::time::{Duration, Instant};

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_obs::json::{self, Json, JsonObject};
use mdl_serve::client::{Client, SolveLine};
use mdl_serve::server::{Server, ServerConfig};
use mdl_serve::EXAMPLE_MODEL;

struct Config {
    addr: Option<String>,
    requests: usize,
    smoke: bool,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let requests = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5 } else { 50 });
    Config {
        addr,
        requests,
        smoke,
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    shed: u64,
    error: u64,
    other: u64,
    latencies_us: Vec<u64>,
}

/// One closed-loop client: request, await, repeat.
fn client_loop(addr: &str, requests: usize, tenant: &str) -> Tally {
    let mut tally = Tally::default();
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("socket timeout");
    let line = SolveLine::new(EXAMPLE_MODEL).tenant(tenant).build();
    for _ in 0..requests {
        let t0 = Instant::now();
        let reply = client.request(&line).expect("request");
        tally
            .latencies_us
            .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let status = json::parse(&reply)
            .ok()
            .and_then(|r| r.get("status").and_then(Json::as_str).map(str::to_string));
        match status.as_deref() {
            Some("ok") => tally.ok += 1,
            Some("shed") => tally.shed += 1,
            Some("error") => tally.error += 1,
            _ => tally.other += 1,
        }
    }
    tally
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

struct Round {
    clients: usize,
    requests: usize,
    elapsed: Duration,
    tally: Tally,
}

fn round(addr: &str, clients: usize, requests: usize) -> Round {
    let t0 = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| scope.spawn(move || client_loop(addr, requests, &format!("bench-{}", i % 4))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    let mut tally = Tally::default();
    for t in tallies {
        tally.ok += t.ok;
        tally.shed += t.shed;
        tally.error += t.error;
        tally.other += t.other;
        tally.latencies_us.extend(t.latencies_us);
    }
    tally.latencies_us.sort_unstable();
    Round {
        clients,
        requests,
        elapsed,
        tally,
    }
}

fn row(r: &Round) -> String {
    let total = (r.clients * r.requests) as u64;
    let rps = total as f64 / r.elapsed.as_secs_f64().max(1e-9);
    let mut obj = JsonObject::new();
    obj.str("type", "serve")
        .u64("clients", r.clients as u64)
        .u64("requests", total)
        .u64("ns", duration_ns(r.elapsed))
        .f64("throughput_rps", rps)
        .u64("p50_us", percentile(&r.tally.latencies_us, 0.50))
        .u64("p99_us", percentile(&r.tally.latencies_us, 0.99))
        .u64("ok", r.tally.ok)
        .u64("shed", r.tally.shed)
        .u64("error", r.tally.error);
    obj.close()
}

fn main() {
    let cfg = config();
    // An in-process daemon unless --addr points at a running one. The
    // scratch cache is pre-warmed below so every measured request hits
    // warm stages — the steady-state number the table reports.
    let local = if cfg.addr.is_none() {
        let dir = std::env::temp_dir().join(format!("mdl-bench-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch cache dir");
        let server = Server::start(ServerConfig {
            workers: 4,
            queue_limit: 64,
            tenant_cap: 64,
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .expect("daemon starts");
        Some((server, dir))
    } else {
        None
    };
    let addr = match (&cfg.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some((server, _))) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    // Warm the cache and the in-memory kernel so rounds measure the
    // steady state, not the one-time compile.
    let warmup = client_loop(&addr, 2, "warmup");
    if warmup.ok == 0 {
        eprintln!("serve bench: warmup failed against {addr}");
        std::process::exit(1);
    }

    let client_counts: &[usize] = if cfg.smoke { &[1, 4] } else { &[1, 4, 16] };
    let mut rows = Vec::new();
    let mut rounds = Vec::new();
    for &clients in client_counts {
        let r = round(&addr, clients, cfg.requests);
        rows.push(row(&r));
        eprintln!(
            "serve: {:>2} clients  {:>6.1} req/s  p50 {:>7} us  p99 {:>7} us  ({} ok / {} shed / {} error)",
            r.clients,
            (r.clients * r.requests) as f64 / r.elapsed.as_secs_f64().max(1e-9),
            percentile(&r.tally.latencies_us, 0.50),
            percentile(&r.tally.latencies_us, 0.99),
            r.tally.ok,
            r.tally.shed,
            r.tally.error,
        );
        rounds.push(r);
    }
    emit_jsonl(&rows);

    if let Some((server, dir)) = local {
        server.drain();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    if cfg.smoke {
        let trichotomy_ok = rounds.iter().all(|r| r.tally.other == 0);
        let any_ok = rounds.iter().any(|r| r.tally.ok > 0);
        let p50 = percentile(&rounds[0].tally.latencies_us, 0.50);
        let fast_enough = p50 <= 250_000;
        if !(trichotomy_ok && any_ok && fast_enough) {
            eprintln!(
                "serve bench smoke FAILED: trichotomy_ok={trichotomy_ok} any_ok={any_ok} \
                 single-client p50={p50}us (bound 250000us)"
            );
            std::process::exit(1);
        }
        eprintln!("serve bench smoke OK: single-client p50 {p50} us");
    }
}
