//! The Section 5 solution-cost claims: lumping shrinks the iteration
//! vectors (the space bottleneck of symbolic CTMC solution) by the overall
//! reduction factor and makes each iteration proportionally cheaper, while
//! the computed measures agree.
//!
//! For each `J` this binary measures, on the symbolic (MD × vector)
//! representation:
//!
//! * solution-vector length, unlumped vs. lumped;
//! * wall-clock time of a fixed number of `y += x·R` sweeps on each;
//! * the stationary availability measure from both (full solve; skipped
//!   for the unlumped chain above a size threshold, where only the
//!   per-iteration cost is reported — exactly the regime the paper targets,
//!   where the unlumped solve is impractical).
//!
//! Run with `cargo run -p mdl-bench --release --bin solution_cost [J…]`.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_ctmc::SolverOptions;
use mdl_linalg::RateMatrix;
use mdl_models::tandem::TandemReward;
use mdl_obs::json::JsonObject;

const SWEEPS: usize = 20;
const FULL_SOLVE_LIMIT: usize = 600_000;

fn sweep_time<M: RateMatrix>(m: &M) -> std::time::Duration {
    let n = m.num_states();
    let x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let t0 = Instant::now();
    for _ in 0..SWEEPS {
        y.iter_mut().for_each(|v| *v = 0.0);
        m.acc_vec_mat(&x, &mut y);
    }
    t0.elapsed() / SWEEPS as u32
}

fn main() {
    let jobs = mdl_bench::jobs_from_args();
    println!("Solution cost, unlumped vs. compositionally lumped (symbolic solves)");
    println!(
        "{:>3} {:>10} {:>10} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "J",
        "vec full",
        "vec lump",
        "sweep full",
        "sweep lump",
        "ratio",
        "avail full",
        "avail lumped"
    );
    let mut lines = Vec::new();
    for j in jobs {
        eprintln!("J = {j}: building and lumping …");
        let (_, mrp, result) = mdl_bench::tandem_row(j, TandemReward::Availability);

        let full_sweep = sweep_time(mrp.matrix());
        let lumped_sweep = sweep_time(result.mrp.matrix());
        let ratio = full_sweep.as_secs_f64() / lumped_sweep.as_secs_f64();

        let opts = SolverOptions {
            tolerance: 1e-12,
            ..SolverOptions::default()
        };
        let lumped_avail = result
            .mrp
            .expected_stationary_reward(&opts)
            .expect("lumped solve");
        let full_avail = if mrp.num_states() <= FULL_SOLVE_LIMIT {
            Some(mrp.expected_stationary_reward(&opts).expect("full solve"))
        } else {
            None
        };

        println!(
            "{:>3} {:>10} {:>10} {:>12} {:>12} {:>7.1}x {:>14} {:>14.9}",
            j,
            mrp.num_states(),
            result.mrp.num_states(),
            format!("{:.2?}", full_sweep),
            format!("{:.2?}", lumped_sweep),
            ratio,
            full_avail
                .map(|a| format!("{a:.9}"))
                .unwrap_or_else(|| "(too large)".into()),
            lumped_avail,
        );
        if let Some(a) = full_avail {
            println!(
                "    measure agreement: |full − lumped| = {:.3e}",
                (a - lumped_avail).abs()
            );
        }

        let mut obj = JsonObject::new();
        obj.str("type", "solution_cost")
            .u64("jobs", j as u64)
            .u64("vector_full", mrp.num_states() as u64)
            .u64("vector_lumped", result.mrp.num_states() as u64)
            .u64("sweep_full_ns", duration_ns(full_sweep))
            .u64("sweep_lumped_ns", duration_ns(lumped_sweep))
            .f64("sweep_ratio", ratio)
            .f64("availability_lumped", lumped_avail);
        if let Some(a) = full_avail {
            obj.f64("availability_full", a)
                .f64("measure_abs_diff", (a - lumped_avail).abs());
        }
        lines.push(obj.close());
    }
    emit_jsonl(&lines);
    println!();
    println!(
        "(paper: vector 1/40–1/55 of original, per-iteration time reduced roughly \
         proportionately, measures exact)"
    );
}
