//! Benchmark baseline report and regression gate.
//!
//! Runs the pipeline's representative measurements — tandem model build,
//! compositional lumping, kernel compilation, walk vs. compiled
//! matrix–vector products, the stationary solve, and the observability
//! no-op overheads — with the counting allocator installed, and emits a
//! versioned baseline: one JSONL file of per-metric wall-time medians,
//! spreads and peak-memory high-water marks over `--reps` repetitions.
//!
//! ```text
//! report [--smoke] [--jobs J] [--reps N] [--rev REV] [--out FILE]
//!        [--check BASELINE.json]
//!        [--max-wall-regress PCT] [--max-mem-regress PCT]
//! ```
//!
//! * Without `--check`: measure and write `BENCH_<rev>.json` (`--rev`
//!   defaults to `MDL_BENCH_REV` or `dev`).
//! * With `--check BASELINE.json`: additionally compare the fresh
//!   measurements against the baseline and **exit nonzero** if any
//!   metric's wall time regressed more than `--max-wall-regress` percent
//!   (default 75) or its peak memory more than `--max-mem-regress`
//!   percent (default 50). Thresholds are deliberately loose by default:
//!   the gate is for catching "it got twice as slow", not µs jitter.
//! * `--smoke`: small model (`J = 1`), few reps — the CI configuration.
//! * `--jobs J`: tandem size (default 1 for `--smoke`, else 2; `--jobs 3`
//!   produces the per-stage breakdown table recorded in EXPERIMENTS.md).
//!   The stationary solve runs on the **lumped** quotient — solving the
//!   small chain is the paper's point, and it keeps `J = 3` tractable.
//!
//! The rep loop consults the `bench.rep` failpoint, so the gate itself
//! is testable: `MDL_FAILPOINTS=bench.rep=sleep:80ms` injects a uniform
//! slowdown that a `--check` run against a clean baseline must flag.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::{LumpKind, LumpRequest};
use mdl_ctmc::{stationary_power, SolverOptions};
use mdl_linalg::RateMatrix;
use mdl_md::CompiledMdMatrix;
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::{self, Json, JsonObject};
use mdl_store::{KernelImage, Store};

/// Allocation tracking needs the counting wrapper installed as the
/// global allocator; it stays dormant (one relaxed load per call) until
/// `set_mem_tracking(true)`.
#[global_allocator]
static ALLOC: mdl_obs::CountingAllocator = mdl_obs::CountingAllocator;

struct Config {
    smoke: bool,
    jobs: usize,
    reps: usize,
    rev: String,
    out: Option<String>,
    check: Option<String>,
    max_wall_regress: f64,
    max_mem_regress: f64,
}

fn value_of(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} needs a value")),
        },
    }
}

fn config() -> Result<Config, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps = match value_of(&args, "--reps")? {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--reps: not a positive count: {v}"))?,
        None => {
            if smoke {
                3
            } else {
                5
            }
        }
    };
    let jobs = match value_of(&args, "--jobs")? {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| format!("--jobs: not a positive count: {v}"))?,
        None => {
            if smoke {
                1
            } else {
                2
            }
        }
    };
    let rev = match value_of(&args, "--rev")? {
        Some(v) => v,
        None => std::env::var("MDL_BENCH_REV").unwrap_or_else(|_| "dev".into()),
    };
    let pct = |flag: &str, default: f64| -> Result<f64, String> {
        match value_of(&args, flag)? {
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|p| p.is_finite() && *p >= 0.0)
                .ok_or_else(|| format!("{flag}: not a percentage: {v}")),
            None => Ok(default),
        }
    };
    Ok(Config {
        smoke,
        jobs,
        reps,
        rev,
        out: value_of(&args, "--out")?,
        check: value_of(&args, "--check")?,
        max_wall_regress: pct("--max-wall-regress", 75.0)?,
        max_mem_regress: pct("--max-mem-regress", 50.0)?,
    })
}

/// One measured metric: medians over the rep samples.
struct Metric {
    name: &'static str,
    wall_ns: u64,
    /// `(max − min) / median` wall time, percent — run-to-run noise.
    wall_spread_pct: f64,
    peak_bytes: u64,
    alloc_bytes: u64,
}

impl Metric {
    fn to_json(&self, reps: usize) -> String {
        let mut obj = JsonObject::new();
        obj.str("type", "bench_metric")
            .str("name", self.name)
            .u64("wall_ns", self.wall_ns)
            .f64("wall_spread_pct", self.wall_spread_pct)
            .u64("peak_bytes", self.peak_bytes)
            .u64("alloc_bytes", self.alloc_bytes)
            .u64("reps", reps as u64);
        obj.close()
    }
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs `f` `reps` times, measuring wall time and (when tracking is on)
/// the allocation delta and peak high-water mark of each rep; reports
/// per-sample medians. The `bench.rep` failpoint sits *inside* the
/// timed region so injected sleeps show up as wall-time regressions.
fn measure<T>(name: &'static str, reps: usize, mut f: impl FnMut() -> T) -> Metric {
    let mut wall = Vec::with_capacity(reps);
    let mut peak = Vec::with_capacity(reps);
    let mut alloc = Vec::with_capacity(reps);
    for _ in 0..reps {
        mdl_obs::reset_mem_peak();
        let before = mdl_obs::mem_stats();
        let t0 = Instant::now();
        let _ = mdl_obs::failpoint::hit("bench.rep");
        let out = f();
        let elapsed = t0.elapsed();
        std::hint::black_box(&out);
        let after = mdl_obs::mem_stats();
        drop(out);
        wall.push(duration_ns(elapsed));
        peak.push(after.peak_bytes.saturating_sub(before.current_bytes));
        alloc.push(after.allocated_bytes.saturating_sub(before.allocated_bytes));
    }
    let med = median(&mut wall);
    let spread = if med > 0 {
        (wall[wall.len() - 1] - wall[0]) as f64 / med as f64 * 100.0
    } else {
        0.0
    };
    Metric {
        name,
        wall_ns: med,
        wall_spread_pct: spread,
        peak_bytes: median(&mut peak),
        alloc_bytes: median(&mut alloc),
    }
}

/// Per-product sweep over `m` (the kernel benches' access pattern).
fn products<M: RateMatrix>(m: &M, sweeps: usize) -> Vec<f64> {
    let n = m.num_states();
    let x: Vec<f64> = (0..n).map(|i| 0.5 + 0.25 * (i % 11) as f64).collect();
    let mut y = vec![0.0; n];
    for _ in 0..sweeps {
        y.iter_mut().for_each(|v| *v = 0.0);
        m.acc_vec_mat(&x, &mut y);
    }
    y
}

fn run_measurements(cfg: &Config) -> Vec<Metric> {
    let jobs = cfg.jobs;
    let sweeps = if cfg.smoke || jobs >= 3 { 3 } else { 10 };
    let reps = cfg.reps;
    eprintln!("measuring tandem J={jobs}, {reps} reps …");

    let mut metrics = Vec::new();
    let build = |jobs| {
        TandemModel::new(TandemConfig {
            jobs,
            ..TandemConfig::default()
        })
        .build_md_mrp_with_reward(TandemReward::Availability)
        .expect("tandem model builds")
    };
    metrics.push(measure("build.tandem", reps, || build(jobs)));

    let mrp = build(jobs);
    metrics.push(measure("lump.ordinary", reps, || {
        LumpRequest::new(LumpKind::Ordinary)
            .run(&mrp)
            .expect("tandem model lumps")
    }));
    let matrix = mrp.matrix();
    metrics.push(measure("compile.kernel", reps, || {
        CompiledMdMatrix::compile(matrix)
    }));
    let compiled = CompiledMdMatrix::compile(matrix);
    metrics.push(measure("kernel.walk.product", reps, || {
        products(matrix, sweeps)
    }));
    metrics.push(measure("kernel.compiled.product", reps, || {
        products(&compiled, sweeps)
    }));
    // The stationary solve runs on the lumped quotient: solving the
    // small chain is what lumping buys (and the unlumped J = 3 chain,
    // at 2.17M states, would drown the rest of the report).
    let lumped = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("tandem model lumps");
    let lumped_compiled = CompiledMdMatrix::compile(lumped.mrp.matrix());
    metrics.push(measure("solve.stationary.lumped", reps, || {
        stationary_power(&lumped_compiled, &SolverOptions::default()).expect("lumped tandem solves")
    }));

    // Warm-open cost: re-opening the persisted kernel for a new run.
    // `warm_open.decode` is the classic path (read, checksum, copy every
    // slab); `warm_open.map` is the mmap(2) path (first open validates
    // and enters the process-wide mapping cache, every open after that
    // borrows the shared region). Both rows open the same `.mdlm` file.
    let warm_dir = std::env::temp_dir().join(format!("mdl-bench-warmopen-{}", std::process::id()));
    std::fs::remove_dir_all(&warm_dir).ok();
    let warm_store = Store::open(&warm_dir).expect("warm-open store opens");
    const WARM_KEY: u64 = 0xbead;
    warm_store
        .save(WARM_KEY, &KernelImage(compiled.to_parts()))
        .expect("kernel image saves");
    const OPENS: usize = 8;
    // One cold map up front: entering the mapping cache (the only FNV
    // pass the file will ever get) is not the warm path being measured.
    if cfg!(unix) {
        let _: Option<KernelImage> = warm_store.map(WARM_KEY).expect("cold map succeeds");
    }
    metrics.push(measure("warm_open.decode", reps, || {
        for _ in 0..OPENS {
            let img: KernelImage = warm_store
                .load(WARM_KEY)
                .expect("decode open succeeds")
                .expect("kernel image present");
            std::hint::black_box(&img);
        }
    }));
    if cfg!(unix) {
        metrics.push(measure("warm_open.map", reps, || {
            for _ in 0..OPENS {
                let img: KernelImage = warm_store
                    .map(WARM_KEY)
                    .expect("mapped open succeeds")
                    .expect("kernel image present");
                std::hint::black_box(&img);
            }
        }));
    }
    std::fs::remove_dir_all(&warm_dir).ok();

    // Observability no-op overheads: the disabled fast paths the whole
    // codebase leans on. Totals over 1M operations.
    const OPS: u64 = 1_000_000;
    let c = mdl_obs::counter("bench.noop.counter");
    metrics.push(measure("obs.noop.counter.1m", reps, || {
        for _ in 0..OPS {
            std::hint::black_box(&c).inc();
        }
    }));
    metrics.push(measure("obs.noop.failpoint.1m", reps, || {
        for _ in 0..OPS {
            std::hint::black_box(mdl_obs::failpoint::hit("bench.noop.fp"));
        }
    }));
    metrics
}

/// One baseline record parsed back out of a `BENCH_*.json` file.
struct BaselineMetric {
    wall_ns: u64,
    peak_bytes: u64,
}

fn load_baseline(path: &str) -> Result<Vec<(String, BaselineMetric)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", lineno + 1))?;
        if doc.get("type").and_then(Json::as_str) != Some("bench_metric") {
            continue;
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}:{}: bench_metric without name", lineno + 1))?;
        let wall_ns = doc.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
        let peak_bytes = doc.get("peak_bytes").and_then(Json::as_u64).unwrap_or(0);
        out.push((
            name.to_owned(),
            BaselineMetric {
                wall_ns,
                peak_bytes,
            },
        ));
    }
    if out.is_empty() {
        return Err(format!("{path}: no bench_metric records"));
    }
    Ok(out)
}

/// Compares fresh metrics against a baseline; returns the failures.
fn check(cfg: &Config, current: &[Metric], baseline_path: &str) -> Result<Vec<String>, String> {
    let baseline = load_baseline(baseline_path)?;
    let mut failures = Vec::new();
    println!();
    println!(
        "regression gate vs {baseline_path} (wall > +{:.0}%, peak mem > +{:.0}%):",
        cfg.max_wall_regress, cfg.max_mem_regress
    );
    for (name, base) in &baseline {
        let Some(cur) = current.iter().find(|m| m.name == name) else {
            println!("  {name:<28} missing from this run — skipped");
            continue;
        };
        let wall_pct = if base.wall_ns > 0 {
            (cur.wall_ns as f64 - base.wall_ns as f64) / base.wall_ns as f64 * 100.0
        } else {
            0.0
        };
        let mem_pct = if base.peak_bytes > 0 {
            (cur.peak_bytes as f64 - base.peak_bytes as f64) / base.peak_bytes as f64 * 100.0
        } else {
            0.0
        };
        let wall_bad = wall_pct > cfg.max_wall_regress;
        // Zero-peak baselines (tracking wasn't installed, or the metric
        // allocates nothing) can't gate memory.
        let mem_bad = base.peak_bytes > 0 && mem_pct > cfg.max_mem_regress;
        let verdict = if wall_bad || mem_bad { "FAIL" } else { "ok" };
        println!(
            "  {name:<28} wall {:>+8.1}%  peak {:>+8.1}%  {verdict}",
            wall_pct, mem_pct
        );
        if wall_bad {
            failures.push(format!(
                "{name}: wall time {} -> {} (+{wall_pct:.1}% > {:.0}%)",
                mdl_obs::fmt_nanos(base.wall_ns),
                mdl_obs::fmt_nanos(cur.wall_ns),
                cfg.max_wall_regress
            ));
        }
        if mem_bad {
            failures.push(format!(
                "{name}: peak memory {} -> {} (+{mem_pct:.1}% > {:.0}%)",
                mdl_obs::fmt_bytes(base.peak_bytes),
                mdl_obs::fmt_bytes(cur.peak_bytes),
                cfg.max_mem_regress
            ));
        }
    }
    Ok(failures)
}

fn main() {
    let cfg = match config() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let tracking = mdl_obs::set_mem_tracking(true);
    if !tracking {
        eprintln!("warning: counting allocator not installed; memory columns will be zero");
    }

    let metrics = run_measurements(&cfg);

    let mut lines = Vec::with_capacity(metrics.len() + 1);
    let mut meta = JsonObject::new();
    meta.str("type", "bench_meta")
        .str("rev", &cfg.rev)
        .u64("jobs", cfg.jobs as u64)
        .u64("reps", cfg.reps as u64)
        .bool("smoke", cfg.smoke)
        .bool("mem_tracking", tracking);
    lines.push(meta.close());
    println!(
        "{:<28} {:>12} {:>9} {:>12} {:>12}",
        "metric", "wall(med)", "spread", "peak mem", "alloc"
    );
    for m in &metrics {
        println!(
            "{:<28} {:>12} {:>8.1}% {:>12} {:>12}",
            m.name,
            mdl_obs::fmt_nanos(m.wall_ns),
            m.wall_spread_pct,
            mdl_obs::fmt_bytes(m.peak_bytes),
            mdl_obs::fmt_bytes(m.alloc_bytes),
        );
        lines.push(m.to_json(cfg.reps));
    }

    let out_path = cfg
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", cfg.rev));
    let mut file_content = String::new();
    for line in &lines {
        file_content.push_str(line);
        file_content.push('\n');
    }
    if let Err(e) = std::fs::write(&out_path, &file_content) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nbaseline written to {out_path}");
    emit_jsonl(&lines);

    // Warm-open speedup: the mapped path must beat the decode path by a
    // wide margin — that is the whole point of shipping kernel images.
    // Printed always; enforced (>= 10x) whenever the gate runs.
    let warm_speedup = {
        let wall = |name: &str| metrics.iter().find(|m| m.name == name).map(|m| m.wall_ns);
        match (wall("warm_open.decode"), wall("warm_open.map")) {
            (Some(decode), Some(map)) if map > 0 => {
                let ratio = decode as f64 / map as f64;
                println!("warm_open: map {ratio:.1}x faster than decode");
                Some(ratio)
            }
            _ => None,
        }
    };

    if let Some(baseline) = &cfg.check {
        let gate = check(&cfg, &metrics, baseline).map(|mut failures| {
            // The mapped warm open must beat the decode path by a wide
            // margin — the arena-image artifacts exist for this.
            if let Some(ratio) = warm_speedup {
                if ratio < 10.0 {
                    failures.push(format!(
                        "warm_open: map only {ratio:.1}x faster than decode (< 10x)"
                    ));
                }
            }
            failures
        });
        match gate {
            Ok(failures) if failures.is_empty() => {
                println!("gate OK: no regressions vs {baseline}");
            }
            Ok(failures) => {
                eprintln!("\nFAIL: {} regression(s) vs {baseline}:", failures.len());
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
