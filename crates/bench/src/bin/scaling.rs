//! Scaling sweep extending Table 1's `J` column and varying the model's
//! structural parameters: how state-space sizes, reduction factors and
//! lumping time grow with the job population, the MSMQ server count and
//! the cube dimension.
//!
//! Run with `cargo run -p mdl-bench --release --bin scaling`.

use mdl_bench::{duration_ns, emit_jsonl, json_usize_array};
use mdl_core::{LumpKind, LumpRequest};
use mdl_models::multi_bank::{MultiBankConfig, MultiBankModel};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;

fn scaling_json(
    label: &str,
    original: u64,
    lumped: u64,
    reduction: f64,
    gen: std::time::Duration,
    lump: std::time::Duration,
    nodes: &[usize],
) -> String {
    let mut obj = JsonObject::new();
    obj.str("type", "scaling")
        .str("label", label)
        .u64("original_states", original)
        .u64("lumped_states", lumped)
        .f64("reduction", reduction)
        .u64("generation_ns", duration_ns(gen))
        .u64("lumping_ns", duration_ns(lump))
        .raw("nodes_per_level", &json_usize_array(nodes));
    obj.close()
}

fn run(label: &str, config: TandemConfig) -> Option<String> {
    let t0 = std::time::Instant::now();
    let model = TandemModel::new(config);
    let mrp = match model.build_md_mrp_with_reward(TandemReward::Availability) {
        Ok(m) => m,
        Err(e) => {
            println!("{label:<24} skipped: {e}");
            return None;
        }
    };
    let gen = t0.elapsed();
    let t1 = std::time::Instant::now();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lump");
    let lump = t1.elapsed();
    println!(
        "{label:<24} states {:>10} -> {:>8}  (x{:>6.1})  gen {:>9} lump {:>9}  nodes {:?}",
        result.stats.original_states,
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        format!("{gen:.2?}"),
        format!("{lump:.2?}"),
        mrp.matrix().md().nodes_per_level(),
    );
    Some(scaling_json(
        label,
        result.stats.original_states,
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        gen,
        lump,
        &mrp.matrix().md().nodes_per_level(),
    ))
}

fn main() {
    let mut lines = Vec::new();
    println!("Scaling sweeps (tandem model)");
    println!();
    println!("Job population J (paper sweeps 1-3):");
    for jobs in 1..=3 {
        lines.extend(run(
            &format!("J = {jobs}"),
            TandemConfig {
                jobs,
                ..TandemConfig::default()
            },
        ));
    }
    println!();
    println!("MSMQ servers (J = 1):");
    for servers in 1..=4 {
        lines.extend(run(
            &format!("msmq_servers = {servers}"),
            TandemConfig {
                jobs: 1,
                msmq_servers: servers,
                ..TandemConfig::default()
            },
        ));
    }
    println!();
    println!("Cube dimension (J = 1):");
    for dim in 1..=4 {
        lines.extend(run(
            &format!("cube_dim = {dim}"),
            TandemConfig {
                jobs: 1,
                cube_dim: dim,
                ..TandemConfig::default()
            },
        ));
    }
    println!();
    println!("MSMQ queues (J = 1):");
    for queues in 2..=5 {
        lines.extend(run(
            &format!("msmq_queues = {queues}"),
            TandemConfig {
                jobs: 1,
                msmq_queues: queues,
                ..TandemConfig::default()
            },
        ));
    }

    println!();
    println!("Deep MDs: multi-bank model, G banks of M = 3 machines (G + 1 levels):");
    for banks in 1..=5 {
        let t0 = std::time::Instant::now();
        let model = MultiBankModel::new(MultiBankConfig {
            banks,
            machines_per_bank: 3,
            ..MultiBankConfig::default()
        });
        let mrp = model.build_md_mrp().expect("build");
        let gen = t0.elapsed();
        let t1 = std::time::Instant::now();
        let result = LumpRequest::new(LumpKind::Ordinary)
            .run(&mrp)
            .expect("lump");
        let lump = t1.elapsed();
        println!(
            "G = {banks} ({} levels)      states {:>10} -> {:>8}  (x{:>6.1})  gen {:>9} lump {:>9}",
            banks + 1,
            result.stats.original_states,
            result.stats.lumped_states,
            result.stats.reduction_factor(),
            format!("{gen:.2?}"),
            format!("{lump:.2?}"),
        );
        lines.push(scaling_json(
            &format!("multi_bank G = {banks}"),
            result.stats.original_states,
            result.stats.lumped_states,
            result.stats.reduction_factor(),
            gen,
            lump,
            &mrp.matrix().md().nodes_per_level(),
        ));
    }
    emit_jsonl(&lines);
}
