//! Walk vs. compiled vs. compiled+threads matrix–vector kernel comparison.
//!
//! Every iterative solve is dominated by `y += x·R` products over the
//! MD×MDD pair; this binary measures the per-product cost of
//!
//! * the recursive walk (`MdMatrix::acc_vec_mat`),
//! * the compiled kernel (`CompiledMdMatrix`, serial),
//! * the compiled kernel with one worker per hardware thread,
//! * a flat `ParCsr` baseline (explicit CSR, default threads),
//!
//! on the tandem model (whose three levels are the MSMQ, hypercube and
//! pool submodels of the paper) for `J ∈ {1, 2, 3}`, verifies that all
//! kernel products are **bit-identical** to the walk, and emits one JSONL
//! row per configuration (see EXPERIMENTS.md for the field list).
//!
//! Run with `cargo run -p mdl-bench --release --bin kernel [--smoke | J…]`.
//! `--smoke` runs only `J = 1` with few sweeps and exits nonzero if any
//! kernel product differs from the walk — the CI contract check.

use std::time::{Duration, Instant};

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_ctmc::ParCsr;
use mdl_linalg::RateMatrix;
use mdl_md::{default_threads, CompiledMdMatrix, MdMatrix};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;

/// Per-product sweep time and the final output vector (for bit-identity
/// comparison across kernels).
fn product_time<M: RateMatrix>(m: &M, sweeps: usize) -> (Duration, Vec<f64>) {
    let n = m.num_states();
    let x: Vec<f64> = (0..n).map(|i| 0.5 + 0.25 * (i % 11) as f64).collect();
    let mut y = vec![0.0; n];
    let t0 = Instant::now();
    for _ in 0..sweeps {
        y.iter_mut().for_each(|v| *v = 0.0);
        m.acc_vec_mat(&x, &mut y);
    }
    (t0.elapsed() / sweeps as u32, y)
}

struct Config {
    jobs: Vec<usize>,
    sweeps: usize,
    smoke: bool,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return Config {
            jobs: vec![1],
            sweeps: 3,
            smoke: true,
        };
    }
    let jobs: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    Config {
        jobs: if jobs.is_empty() { vec![1, 2, 3] } else { jobs },
        sweeps: 0, // chosen per model size below
        smoke: false,
    }
}

fn main() {
    let cfg = config();
    let threads = default_threads();
    println!("MD×MDD matrix–vector kernel: walk vs compiled vs compiled+threads");
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "J", "states", "walk", "compiled", "threaded", "flat-par", "comp.x", "thr.x"
    );
    let mut lines = Vec::new();
    let mut all_identical = true;
    for &j in &cfg.jobs {
        eprintln!("J = {j}: building tandem model …");
        let model = TandemModel::new(TandemConfig {
            jobs: j,
            ..TandemConfig::default()
        });
        let mrp = model
            .build_md_mrp_with_reward(TandemReward::Availability)
            .expect("tandem model builds");
        let matrix: &MdMatrix = mrp.matrix();
        let n = matrix.num_states();
        let sweeps = if cfg.sweeps > 0 {
            cfg.sweeps
        } else if n > 500_000 {
            3
        } else {
            10
        };

        let t0 = Instant::now();
        let serial = CompiledMdMatrix::compile(matrix);
        let compile_time = t0.elapsed();
        let threaded = CompiledMdMatrix::compile_with_threads(matrix, threads);
        let stats = serial.stats().clone();

        let (walk_t, walk_y) = product_time(matrix, sweeps);
        let (serial_t, serial_y) = product_time(&serial, sweeps);
        let (threaded_t, threaded_y) = product_time(&threaded, sweeps);

        eprintln!("J = {j}: flattening for the flat parallel baseline …");
        let flat = ParCsr::with_default_threads(matrix.flatten());
        let (flat_t, flat_y) = product_time(&flat, sweeps);

        let identical = walk_y == serial_y && walk_y == threaded_y;
        all_identical &= identical;
        let speedup_compiled = walk_t.as_secs_f64() / serial_t.as_secs_f64();
        let speedup_threaded = walk_t.as_secs_f64() / threaded_t.as_secs_f64();

        println!(
            "{:>3} {:>10} {:>12} {:>12} {:>12} {:>12} {:>7.1}x {:>7.1}x",
            j,
            n,
            format!("{walk_t:.2?}"),
            format!("{serial_t:.2?}"),
            format!("{threaded_t:.2?}"),
            format!("{flat_t:.2?}"),
            speedup_compiled,
            speedup_threaded,
        );
        println!(
            "    compile {:.2?}; {} blocks, {} leaf entries for {} flat entries \
             (dedup ×{:.1}); bit-identical to walk: {identical}",
            compile_time,
            stats.blocks,
            stats.leaf_entries,
            stats.flat_entries,
            stats.dedup_ratio(),
        );
        // The flat baseline sums duplicate formal-sum contributions at
        // flatten time, so it is compared by tolerance, not bitwise.
        let flat_diff = mdl_linalg::vec_ops::max_abs_diff(&walk_y, &flat_y);
        if flat_diff > 1e-9 {
            eprintln!("warning: flat baseline diverges from walk by {flat_diff:.3e}");
            all_identical = false;
        }

        let mut obj = JsonObject::new();
        obj.str("type", "kernel")
            .str("model", "tandem")
            .u64("jobs", j as u64)
            .u64("states", n as u64)
            .u64("blocks", stats.blocks as u64)
            .u64("leaf_entries", stats.leaf_entries as u64)
            .u64("flat_entries", stats.flat_entries)
            .f64("dedup_ratio", stats.dedup_ratio())
            .u64("compile_ns", duration_ns(compile_time))
            .u64("walk_product_ns", duration_ns(walk_t))
            .u64("compiled_product_ns", duration_ns(serial_t))
            .u64("threaded_product_ns", duration_ns(threaded_t))
            .u64("flat_par_product_ns", duration_ns(flat_t))
            .u64("threads", threads as u64)
            .f64("speedup_compiled", speedup_compiled)
            .f64("speedup_threaded", speedup_threaded)
            .bool("bit_identical", identical);
        lines.push(obj.close());
    }
    emit_jsonl(&lines);
    if !all_identical {
        eprintln!("FAIL: kernel products are not bit-identical to the recursive walk");
        std::process::exit(1);
    }
    if cfg.smoke {
        println!("smoke OK: all kernels bit-identical to the walk");
    }
}
