//! Cold-vs-warm timing of the staged pipeline's content-addressed cache.
//!
//! Runs the full staged solve — build → lump → kernel compile → solve →
//! measure — on the tandem model twice against one cache directory
//! (DESIGN.md §13). The first pass populates the store; the second pass
//! must restore every stage from it, so its wall clock is pure
//! deserialization. Emits one JSONL row per pass.
//!
//! Run with `cargo run -p mdl-bench --release --bin cache_warm
//! [--smoke | J]`. `--smoke` runs `J = 1` and exits nonzero unless the
//! warm pass was all hits (no misses, no writes) and reproduced the
//! cold pass's measure bit-for-bit — the CI contract check.
//!
//! Row fields: `type="cache_warm"`, `model`, `jobs`, `run`
//! (`"cold"`/`"warm"`), `ns`, `store_hit`, `store_miss`,
//! `store_write_bytes`, `measure` (the stationary expected reward).
//! Speedups are environment-dependent and printed, never asserted.

use std::path::Path;
use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::{CoreError, LumpKind, LumpRequest, Pipeline, SolveOutcome, SolveRequest, Staged};
use mdl_ctmc::SolverOptions;
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;
use mdl_obs::Budget;
use mdl_store::Store;

struct Config {
    jobs: usize,
    smoke: bool,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return Config {
            jobs: 1,
            smoke: true,
        };
    }
    let jobs = args.iter().find_map(|a| a.parse().ok()).unwrap_or(3);
    Config { jobs, smoke: false }
}

/// One counter out of an obs snapshot (0 when it never fired).
fn counter(report: &mdl_obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

struct Pass {
    ns: u64,
    hit: u64,
    miss: u64,
    write_bytes: u64,
    measure: f64,
}

/// One full staged solve against the cache directory, mirroring the
/// CLI's `solve` path: every stage keyed off the model text and the
/// result-relevant options, so the second call is pure cache hits.
fn pass(cache_dir: &Path, jobs: usize) -> Pass {
    mdl_obs::set_enabled(true);
    mdl_obs::reset();
    let key = mdl_core::model_source_key(&format!("bench:cache_warm tandem jobs={jobs}"));
    let store = Store::open(cache_dir).expect("cache directory opens");
    let pipeline = Pipeline::with_store(key, store);

    let t0 = Instant::now();
    let built = pipeline
        .build(|| {
            TandemModel::new(TandemConfig {
                jobs,
                ..TandemConfig::default()
            })
            .build_md_mrp_with_reward(TandemReward::Availability)
            .map_err(|e| CoreError::Build {
                detail: e.to_string(),
            })
        })
        .expect("tandem model builds");
    let lumped = pipeline
        .lump(&built, &LumpRequest::new(LumpKind::Ordinary))
        .expect("tandem model lumps");
    let lumped_mrp = Staged {
        value: lumped.value.mrp.clone(),
        key: lumped.key,
        cached: lumped.cached,
    };
    let kernel = pipeline
        .compile(&lumped_mrp, 0, &Budget::unlimited())
        .expect("kernel compiles");
    let request = SolveRequest::stationary()
        .solver_options(SolverOptions {
            tolerance: 1e-12,
            ..SolverOptions::default()
        })
        .prebuilt_kernel(kernel.value.clone());
    let (outcome, _report) = pipeline.solve(&lumped_mrp, &request);
    let staged = outcome.expect("stationary solve succeeds");
    let measure = pipeline
        .measure(staged.key, "expected-reward", || match &staged.value {
            SolveOutcome::Distribution(sol) => Ok(vec![
                sol.try_expected_reward(&lumped_mrp.value.reward_vector())?
            ]),
            SolveOutcome::Value(v) => Ok(vec![*v]),
        })
        .expect("measure computes");
    let elapsed = t0.elapsed();

    let report = mdl_obs::snapshot();
    mdl_obs::set_enabled(false);
    Pass {
        ns: duration_ns(elapsed),
        hit: counter(&report, "store.hit"),
        miss: counter(&report, "store.miss"),
        write_bytes: counter(&report, "store.write_bytes"),
        measure: measure.value[0],
    }
}

fn main() {
    let cfg = config();
    println!("staged pipeline cache: cold vs warm pass on the tandem model");
    let cache_dir = std::env::temp_dir().join(format!(
        "mdl-bench-cache-warm-{}-j{}",
        std::process::id(),
        cfg.jobs
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold = pass(&cache_dir, cfg.jobs);
    let warm = pass(&cache_dir, cfg.jobs);
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "{:>6} {:>12} {:>6} {:>6} {:>12} {:>20}",
        "run", "time", "hits", "miss", "written", "measure"
    );
    let mut lines = Vec::new();
    for (run, p) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{:>6} {:>12} {:>6} {:>6} {:>12} {:>20.12}",
            run,
            format!("{:.2?}", std::time::Duration::from_nanos(p.ns)),
            p.hit,
            p.miss,
            format!("{} B", p.write_bytes),
            p.measure,
        );
        let mut obj = JsonObject::new();
        obj.str("type", "cache_warm")
            .str("model", "tandem")
            .u64("jobs", cfg.jobs as u64)
            .str("run", run)
            .u64("ns", p.ns)
            .u64("store_hit", p.hit)
            .u64("store_miss", p.miss)
            .u64("store_write_bytes", p.write_bytes)
            .f64("measure", p.measure);
        lines.push(obj.close());
    }
    emit_jsonl(&lines);
    if warm.ns > 0 {
        println!("speedup: {:.1}x", cold.ns as f64 / warm.ns as f64);
    }

    let all_hits = warm.miss == 0 && warm.write_bytes == 0 && warm.hit >= 4;
    if !all_hits {
        eprintln!(
            "FAIL: warm pass was not pure cache hits (hit={}, miss={}, written={})",
            warm.hit, warm.miss, warm.write_bytes
        );
        std::process::exit(1);
    }
    if warm.measure.to_bits() != cold.measure.to_bits() {
        eprintln!(
            "FAIL: warm measure {} != cold measure {}",
            warm.measure, cold.measure
        );
        std::process::exit(1);
    }
    if cfg.smoke {
        println!("smoke OK: warm pass restored every stage, measures bit-identical");
    }
}
