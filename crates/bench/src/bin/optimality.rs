//! The Section 5 optimality check: "we verified that our compositional
//! algorithm generates the smallest lumped CTMC possible … by running the
//! compositional algorithm result through our implementation of the
//! state-level lumping algorithm \[9\]".
//!
//! For each `J` (default 1 and 2 — the flat matrices must fit in memory),
//! this binary:
//!
//! 1. builds and compositionally lumps the tandem model;
//! 2. independently **verifies** the lump on the flattened chains
//!    (Theorem 1/2 conditions);
//! 3. flattens the lumped chain and runs optimal state-level lumping on
//!    it — any further reduction would mean the local conditions left
//!    lumpability on the table;
//! 4. for calibration, also runs optimal state-level lumping directly on
//!    the **unlumped** flat chain, giving the true optimum to compare
//!    against.
//!
//! Run with `cargo run -p mdl-bench --release --bin optimality [J…]`.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::verify;
use mdl_linalg::Tolerance;
use mdl_models::tandem::TandemReward;
use mdl_obs::json::JsonObject;
use mdl_statelump::{ordinary_partition, LumpOptions};

fn main() {
    let jobs: Vec<usize> = {
        let parsed: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![1, 2]
        } else {
            parsed
        }
    };
    let options = LumpOptions {
        tolerance: Tolerance::default(),
        ..Default::default()
    };

    println!("Optimality of compositional lumping on the tandem model");
    println!(
        "{:>3} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "J", "unlumped", "composit.", "post-lumped", "optimal", "verified"
    );
    let mut lines = Vec::new();
    for j in jobs {
        eprintln!("J = {j}: building, lumping, verifying, flattening …");
        let (row, mrp, result) = mdl_bench::tandem_row(j, TandemReward::Availability);

        // Independent verification of the compositional result.
        let verified = verify::verify_ordinary(&mrp, &result, Tolerance::default()).is_ok();

        // State-level lumping on the compositionally lumped chain.
        let lumped_flat = result.mrp.matrix().flatten();
        let lumped_reward = result.mrp.reward_vector();
        let t0 = Instant::now();
        let post = ordinary_partition(&lumped_flat, &lumped_reward, &options);
        let post_time = t0.elapsed();

        // True optimum: state-level lumping on the unlumped flat chain.
        let flat = mrp.matrix().flatten();
        let reward = mrp.reward_vector();
        let t1 = Instant::now();
        let optimal = ordinary_partition(&flat, &reward, &options);
        let optimal_time = t1.elapsed();

        println!(
            "{:>3} {:>10} {:>10} {:>12} {:>12} {:>10}",
            j,
            row.overall,
            row.lumped_overall,
            post.num_classes(),
            optimal.num_classes(),
            if verified { "yes" } else { "NO" },
        );
        println!(
            "    residual lumpability left by the local conditions: {:.2}% of lumped states",
            100.0 * (1.0 - post.num_classes() as f64 / row.lumped_overall as f64)
        );
        println!(
            "    times: compositional {:?}, state-level on lumped {post_time:?}, state-level on full {optimal_time:?}",
            row.lumping
        );

        let mut obj = JsonObject::new();
        obj.str("type", "optimality")
            .u64("jobs", j as u64)
            .u64("unlumped", row.overall)
            .u64("compositional", row.lumped_overall)
            .u64("post_lumped", post.num_classes() as u64)
            .u64("optimal", optimal.num_classes() as u64)
            .bool("verified", verified)
            .u64("compositional_ns", duration_ns(row.lumping))
            .u64("post_lump_ns", duration_ns(post_time))
            .u64("optimal_lump_ns", duration_ns(optimal_time));
        lines.push(obj.close());
    }
    emit_jsonl(&lines);
}
