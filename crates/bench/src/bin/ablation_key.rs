//! Ablation of the Section 4 design choice: comparing formal sums over
//! node references (the paper's key function `K`) against the rejected
//! alternative of expanding child matrices (sufficient **and** necessary,
//! but "prohibitively time-consuming").
//!
//! For each level of the tandem model and of a family of planted-symmetry
//! models, this runs level-local refinement with both keys and reports the
//! partition sizes and running times.
//!
//! Run with `cargo run -p mdl-bench --release --bin ablation_key`.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::ablation::comp_lumping_level_expanded;
use mdl_core::{comp_lumping_level, LumpKind};
use mdl_linalg::Tolerance;
use mdl_md::Md;
use mdl_models::random::{planted_model, LevelSpec};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;
use mdl_partition::Partition;

fn compare(md: &Md, level: usize, name: &str) -> String {
    let n = md.sizes()[level];
    let initial = Partition::single_class(n);

    let t0 = Instant::now();
    let (formal, _) = comp_lumping_level(
        &md.level_nodes(level),
        initial.clone(),
        LumpKind::Ordinary,
        Tolerance::default(),
    );
    let formal_time = t0.elapsed();

    let expanded =
        comp_lumping_level_expanded(md, level, initial, LumpKind::Ordinary, Tolerance::default());

    let coarser = formal.num_classes() != expanded.partition.num_classes();
    println!(
        "{name:<28} level {level}: |S|={n:>6}  formal: {:>5} classes in {:>10}  expanded: {:>5} classes in {:>10}{}",
        formal.num_classes(),
        format!("{formal_time:.2?}"),
        expanded.partition.num_classes(),
        format!("{:.2?}", expanded.elapsed),
        if coarser { "  (expanded key is coarser!)" } else { "" }
    );

    let mut obj = JsonObject::new();
    obj.str("type", "ablation_key")
        .str("model", name)
        .u64("level", level as u64)
        .u64("states", n as u64)
        .u64("formal_classes", formal.num_classes() as u64)
        .u64("formal_ns", duration_ns(formal_time))
        .u64("expanded_classes", expanded.partition.num_classes() as u64)
        .u64("expanded_ns", duration_ns(expanded.elapsed))
        .bool("partitions_differ", coarser);
    obj.close()
}

fn main() {
    println!("Key-function ablation: formal sums (Section 4) vs. expanded matrices");
    println!();

    // Tandem model, J = 1: levels 0 and 1 have non-trivial suffixes.
    eprintln!("building tandem J = 1 …");
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = model
        .build_md_mrp_with_reward(TandemReward::Constant)
        .expect("build");
    let md = mrp.matrix().md();
    let mut lines = Vec::new();
    for level in 0..md.num_levels() {
        lines.push(compare(md, level, "tandem J=1"));
    }
    println!();

    // Planted-symmetry models of growing size: the expanded key's cost
    // grows with the suffix product, the formal key's does not.
    for copies in [2usize, 3, 4] {
        let pm = planted_model(
            42,
            &[
                LevelSpec::uniform(3, copies),
                LevelSpec::uniform(3, copies),
                LevelSpec::uniform(3, copies),
            ],
            LumpKind::Ordinary,
            2,
            2,
        );
        let md = pm.expr.to_md().expect("planted model builds");
        lines.push(compare(&md, 0, &format!("planted 3x{copies} (3 levels)")));
    }
    println!();
    println!(
        "(expected shape: identical partitions on these models; the expanded key's \
         time grows with the product of the lower levels, the formal key's does not)"
    );
    emit_jsonl(&lines);
}
