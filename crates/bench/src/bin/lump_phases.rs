//! Thread-scaling of the parallel lumping engine's two hot phases.
//!
//! The multi-threaded lumping engine (DESIGN.md §12) parallelizes the
//! formal-sum **key** computations and evaluates per-level **refinement**
//! with block-owned output ranges, so results are bit-identical to the
//! serial engine at any worker count. This binary runs
//! `LumpRequest::new(..).threads(t)` on the tandem model for
//! `t ∈ {1, 2, 4}`, splits the wall clock into the keys and refine
//! phases from the `mdl-obs` span histograms (`lump.keys.serial`,
//! `lump.keys.parallel`, `lump.level`), verifies that every thread count
//! reproduces the same lumped sizes, and emits one JSONL row per
//! `(threads, phase)` pair.
//!
//! Run with `cargo run -p mdl-bench --release --bin lump_phases
//! [--smoke | J]`.
//! `--smoke` runs `J = 1` only and exits nonzero unless keys-phase rows
//! were recorded at every thread count — the CI contract check.
//!
//! Row fields: `type="lump_phases"`, `model`, `jobs`, `kind`, `threads`,
//! `phase` (`"keys"` or `"refine"`), `ns` (phase time, summed over
//! spans), `spans`, `total_ns` (whole lump), `lumped_states`. The refine
//! rows time whole per-level refinements, so they *include* the keys
//! time. On a single-core container the timings are still emitted —
//! speedups are environment-dependent and never asserted.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::{LumpKind, LumpRequest};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;

struct Config {
    jobs: usize,
    threads: Vec<usize>,
    smoke: bool,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return Config {
            jobs: 1,
            threads: vec![1, 2, 4],
            smoke: true,
        };
    }
    let jobs = args.iter().find_map(|a| a.parse().ok()).unwrap_or(3);
    Config {
        jobs,
        threads: vec![1, 2, 4],
        smoke: false,
    }
}

/// Sum and count of one span histogram in the current obs snapshot.
fn histogram_ns(report: &mdl_obs::Report, name: &str) -> (u64, u64) {
    report
        .histograms
        .iter()
        .find(|h| h.name == name)
        .map_or((0, 0), |h| (h.sum, h.count))
}

fn main() {
    let cfg = config();
    println!("parallel lumping engine: keys/refine phase times by thread count");
    let model = TandemModel::new(TandemConfig {
        jobs: cfg.jobs,
        ..TandemConfig::default()
    });
    let mrp = model
        .build_md_mrp_with_reward(TandemReward::Availability)
        .expect("tandem model builds");

    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "threads", "states", "keys", "refine", "total", "lumped"
    );
    let mut lines = Vec::new();
    let mut lumped_sizes: Vec<u64> = Vec::new();
    let mut keys_rows_ok = true;
    for &t in &cfg.threads {
        mdl_obs::set_enabled(true);
        mdl_obs::reset();
        let t0 = Instant::now();
        let result = LumpRequest::new(LumpKind::Ordinary)
            .threads(t)
            .run(&mrp)
            .expect("tandem model lumps");
        let total = t0.elapsed();
        let report = mdl_obs::snapshot();
        mdl_obs::set_enabled(false);

        let (serial_ns, serial_spans) = histogram_ns(&report, "lump.keys.serial");
        let (par_ns, par_spans) = histogram_ns(&report, "lump.keys.parallel");
        let keys_ns = serial_ns + par_ns;
        let keys_spans = serial_spans + par_spans;
        let (refine_ns, refine_spans) = histogram_ns(&report, "lump.level");
        lumped_sizes.push(result.stats.lumped_states);
        keys_rows_ok &= keys_spans > 0;

        println!(
            "{:>7} {:>10} {:>12} {:>12} {:>12} {:>8}",
            t,
            mrp.matrix().reach().count(),
            format!("{:.2?}", std::time::Duration::from_nanos(keys_ns)),
            format!("{:.2?}", std::time::Duration::from_nanos(refine_ns)),
            format!("{total:.2?}"),
            result.stats.lumped_states,
        );

        for (phase, ns, spans) in [
            ("keys", keys_ns, keys_spans),
            ("refine", refine_ns, refine_spans),
        ] {
            let mut obj = JsonObject::new();
            obj.str("type", "lump_phases")
                .str("model", "tandem")
                .u64("jobs", cfg.jobs as u64)
                .str("kind", "ordinary")
                .u64("threads", t as u64)
                .str("phase", phase)
                .u64("ns", ns)
                .u64("spans", spans)
                .u64("parallel_spans", par_spans)
                .u64("total_ns", duration_ns(total))
                .u64("lumped_states", result.stats.lumped_states);
            lines.push(obj.close());
        }
    }
    emit_jsonl(&lines);

    let all_equal = lumped_sizes.windows(2).all(|w| w[0] == w[1]);
    if !all_equal {
        eprintln!("FAIL: lumped sizes differ across thread counts: {lumped_sizes:?}");
        std::process::exit(1);
    }
    if !keys_rows_ok {
        eprintln!("FAIL: a thread count recorded no keys-phase spans");
        std::process::exit(1);
    }
    if cfg.smoke {
        println!("smoke OK: keys-phase rows recorded at every thread count, lumped sizes agree");
    }
}
