//! Regenerates **Table 1** of the paper: MD representation statistics of
//! the tandem multi-processor system, unlumped and compositionally lumped,
//! for `J ∈ {1, 2, 3}` (override with `table1 1 2`).
//!
//! Run with `cargo run -p mdl-bench --release --bin table1`.

use mdl_bench::{emit_jsonl, jobs_from_args, print_table1, tandem_row};
use mdl_models::tandem::TandemReward;

fn main() {
    let jobs = jobs_from_args();
    let mut rows = Vec::new();
    for j in jobs {
        eprintln!("building and lumping tandem model, J = {j} …");
        let (row, _, _) = tandem_row(j, TandemReward::Availability);
        rows.push(row);
    }
    print_table1(&rows);
    let lines: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
    emit_jsonl(&lines);
}
