//! Regenerates **Table 1** of the paper: MD representation statistics of
//! the tandem multi-processor system, unlumped and compositionally lumped,
//! for `J ∈ {1, 2, 3}` (override with `table1 1 2`).
//!
//! Run with `cargo run -p mdl-bench --release --bin table1`.

use mdl_bench::{jobs_from_args, print_table1, tandem_row};
use mdl_models::tandem::TandemReward;

fn main() {
    let jobs = jobs_from_args();
    let mut rows = Vec::new();
    for j in jobs {
        eprintln!("building and lumping tandem model, J = {j} …");
        let (row, _, _) = tandem_row(j, TandemReward::Availability);
        rows.push(row);
    }
    print_table1(&rows);
    println!();
    println!("machine-readable: {}", serde_json::to_string_mock(&rows));
}

/// Minimal JSON rendering (serde derive is on the rows; avoid a serde_json
/// dependency by formatting the fields directly).
mod serde_json {
    use mdl_bench::TandemRow;

    pub fn to_string_mock(rows: &[TandemRow]) -> String {
        let items: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"jobs\":{},\"overall\":{},\"lumped\":{},\"reduction\":{:.2},\"gen_ms\":{},\"lump_ms\":{},\"mem_unlumped\":{},\"mem_lumped\":{}}}",
                    r.jobs,
                    r.overall,
                    r.lumped_overall,
                    r.reduction_overall,
                    r.generation.as_millis(),
                    r.lumping.as_millis(),
                    r.memory_unlumped,
                    r.memory_lumped,
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}
