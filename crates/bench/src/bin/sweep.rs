//! Parameter-sweep economics: naive repeated full solves vs the sweep
//! engine (DESIGN.md §15).
//!
//! Sweeps the tandem network's hypercube service rate `mu_h` over an
//! inclusive grid. The **naive** baseline treats every point as a fresh
//! model: reachability exploration, lumping from scratch, kernel
//! compilation, cold solve. The **sweep** engine computes reachability
//! once, re-lumps only the levels whose local matrices the point
//! changed, and (in its warm pass) seeds each solve from the nearest
//! solved neighbor.
//!
//! Run with `cargo run -p mdl-bench --release --bin sweep
//! [--smoke | J [POINTS]]` (defaults `J = 3`, 32 points). `--smoke` runs
//! `J = 1` with 5 points and exits nonzero unless every cold-sweep
//! measure is bit-identical to its naive counterpart and the sweep total
//! beats the naive total — the CI contract check. Speedup magnitudes are
//! environment-dependent: printed, never asserted.
//!
//! Per-point row fields: `type="sweep_point"`, `model`, `jobs`, `mu`,
//! `naive_ns`, `cold_ns`, `warm_ns`, `levels_relumped`, `naive_iters`,
//! `warm_iters`, `measure`, `bit_identical`. Summary row:
//! `type="sweep_total"` with grid shape, totals and speedups.

use std::time::Instant;

use mdl_bench::{duration_ns, emit_jsonl};
use mdl_core::{
    model_source_key, sweep_grid, CoreError, DecomposableVector, LumpKind, LumpRequest, Pipeline,
    SolveRequest, SweepOutcome, SweepRequest,
};
use mdl_ctmc::SolverOptions;
use mdl_mdd::Mdd;
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_models::ComposedModel;
use mdl_obs::json::JsonObject;

/// The swept event: the hypercube pool's service rate `mu_h`.
const EVENT: &str = "hyper_service";

struct Config {
    jobs: usize,
    points: usize,
    smoke: bool,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return Config {
            jobs: 1,
            points: 5,
            smoke: true,
        };
    }
    let mut nums = args.iter().filter_map(|a| a.parse::<usize>().ok());
    Config {
        jobs: nums.next().unwrap_or(3),
        points: nums.next().unwrap_or(32),
        smoke: false,
    }
}

/// The inclusive `mu_h` grid: 0.5..2.0, `count` points.
fn mu_grid(count: usize) -> Vec<f64> {
    (0..count)
        .map(|i| 0.5 + 1.5 * i as f64 / (count - 1).max(1) as f64)
        .collect()
}

fn solve_request() -> SolveRequest {
    SolveRequest::stationary().solver_options(SolverOptions {
        tolerance: 1e-12,
        ..SolverOptions::default()
    })
}

struct PointRun {
    measure: f64,
    iterations: usize,
    ns: u64,
    levels_relumped: usize,
}

/// One naive point: re-rate, then rebuild *everything* — reachability,
/// lumping, kernel, cold solve — exactly as independent CLI invocations
/// would.
fn naive_point(base: &ComposedModel, reward: &DecomposableVector, mu: f64) -> PointRun {
    let t0 = Instant::now();
    let mut model = base.clone();
    model.set_event_rate(EVENT, mu).expect("event re-rates");
    let mrp = model
        .build_md_mrp(reward.clone())
        .expect("tandem model builds");
    let lumped = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("tandem model lumps");
    let (outcome, _) = solve_request().run(&lumped.mrp);
    let sol = outcome
        .expect("stationary solve succeeds")
        .into_solution()
        .expect("stationary outcome is a distribution");
    let measure = sol
        .try_expected_reward(&lumped.mrp.reward_vector())
        .expect("reward lengths match");
    PointRun {
        measure,
        iterations: sol.stats.iterations,
        ns: duration_ns(t0.elapsed()),
        levels_relumped: lumped.partitions.len(),
    }
}

/// One sweep pass over the whole grid: shared reachability, seeded
/// re-lumping, and (when `warm`) neighbor warm starts.
fn sweep_pass(
    base: &ComposedModel,
    reward: &DecomposableVector,
    reach: &Mdd,
    mus: &[f64],
    jobs: usize,
    warm: bool,
) -> (Vec<PointRun>, SweepOutcome) {
    let pipeline = Pipeline::new(model_source_key(&format!(
        "bench:sweep tandem jobs={jobs} warm={warm}"
    )));
    let points = sweep_grid(&[(EVENT.to_string(), mus.to_vec())]);
    let request = SweepRequest::new(LumpRequest::new(LumpKind::Ordinary), solve_request())
        .warm_start(warm)
        .threads(0);
    let outcome = pipeline
        .sweep(&points, &request, |pt| {
            let mut model = base.clone();
            model
                .set_event_rate(EVENT, pt.params[0].1)
                .map_err(|e| CoreError::Build {
                    detail: e.to_string(),
                })?;
            model
                .build_md_mrp_with_reach(reward.clone(), reach.clone())
                .map_err(|e| CoreError::Build {
                    detail: e.to_string(),
                })
        })
        .expect("sweep succeeds");
    let runs = outcome
        .points
        .iter()
        .map(|r| {
            let sol = r.outcome.solution().expect("stationary distribution");
            PointRun {
                measure: sol
                    .try_expected_reward(&r.lump.mrp.reward_vector())
                    .expect("reward lengths match"),
                iterations: sol.stats.iterations,
                ns: duration_ns(r.elapsed),
                levels_relumped: r.levels_relumped,
            }
        })
        .collect();
    (runs, outcome)
}

fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

fn main() {
    let cfg = config();
    let mus = mu_grid(cfg.points);
    println!(
        "parameter sweep: tandem J={}, {} points of {EVENT} in [{:.2}, {:.2}]",
        cfg.jobs,
        mus.len(),
        mus[0],
        mus[mus.len() - 1]
    );

    let model = TandemModel::new(TandemConfig {
        jobs: cfg.jobs,
        ..TandemConfig::default()
    });
    let base = model.composed().clone();
    // Availability is rate-independent, so one reward serves every point.
    let reward = model
        .reward(TandemReward::Availability)
        .expect("reward builds");
    let reach = base.reachable().expect("tandem model explores");

    let t0 = Instant::now();
    let naive: Vec<PointRun> = mus
        .iter()
        .map(|&mu| naive_point(&base, &reward, mu))
        .collect();
    let naive_total = duration_ns(t0.elapsed());

    let (cold, cold_outcome) = sweep_pass(&base, &reward, &reach, &mus, cfg.jobs, false);
    let cold_total = duration_ns(cold_outcome.elapsed);
    let (warm, warm_outcome) = sweep_pass(&base, &reward, &reach, &mus, cfg.jobs, true);
    let warm_total = duration_ns(warm_outcome.elapsed);

    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>8} {:>12} {:>12} {:>20}",
        "point", "mu", "naive", "sweep", "warm", "relump", "naive_iters", "warm_iters", "measure"
    );
    let mut lines = Vec::new();
    let mut bit_identical = true;
    for (i, mu) in mus.iter().enumerate() {
        let same = naive[i].measure.to_bits() == cold[i].measure.to_bits();
        bit_identical &= same;
        println!(
            "{:>6} {:>8.4} {:>10} {:>10} {:>10} {:>5}/{:<2} {:>12} {:>12} {:>20.12}{}",
            i,
            mu,
            ms(naive[i].ns),
            ms(cold[i].ns),
            ms(warm[i].ns),
            cold[i].levels_relumped,
            naive[i].levels_relumped,
            naive[i].iterations,
            warm[i].iterations,
            naive[i].measure,
            if same { "" } else { "  MISMATCH" },
        );
        let mut obj = JsonObject::new();
        obj.str("type", "sweep_point")
            .str("model", "tandem")
            .u64("jobs", cfg.jobs as u64)
            .f64("mu", *mu)
            .u64("naive_ns", naive[i].ns)
            .u64("cold_ns", cold[i].ns)
            .u64("warm_ns", warm[i].ns)
            .u64("levels_relumped", cold[i].levels_relumped as u64)
            .u64("naive_iters", naive[i].iterations as u64)
            .u64("warm_iters", warm[i].iterations as u64)
            .f64("measure", naive[i].measure)
            .bool("bit_identical", same);
        lines.push(obj.close());
    }

    let naive_iters: usize = naive.iter().map(|p| p.iterations).sum();
    let warm_iters: usize = warm.iter().map(|p| p.iterations).sum();
    let speedup = |total: u64| {
        if total > 0 {
            naive_total as f64 / total as f64
        } else {
            f64::INFINITY
        }
    };
    println!(
        "totals: naive {} | sweep {} ({:.1}x) | warm sweep {} ({:.1}x)",
        ms(naive_total),
        ms(cold_total),
        speedup(cold_total),
        ms(warm_total),
        speedup(warm_total),
    );
    println!(
        "levels: {} reused, {} re-lumped of {} naive; iterations: {} naive -> {} warm ({:.0}% saved)",
        cold_outcome.levels_reused,
        cold_outcome.levels_relumped,
        naive.iter().map(|p| p.levels_relumped).sum::<usize>(),
        naive_iters,
        warm_iters,
        100.0 * (1.0 - warm_iters as f64 / naive_iters.max(1) as f64),
    );
    let mut total = JsonObject::new();
    total
        .str("type", "sweep_total")
        .str("model", "tandem")
        .u64("jobs", cfg.jobs as u64)
        .u64("points", mus.len() as u64)
        .u64("naive_ns", naive_total)
        .u64("cold_ns", cold_total)
        .u64("warm_ns", warm_total)
        .u64("levels_reused", cold_outcome.levels_reused as u64)
        .u64("levels_relumped", cold_outcome.levels_relumped as u64)
        .u64("naive_iters", naive_iters as u64)
        .u64("warm_iters", warm_iters as u64)
        .bool("bit_identical", bit_identical);
    lines.push(total.close());
    emit_jsonl(&lines);

    if !bit_identical {
        eprintln!("FAIL: cold-sweep measures are not bit-identical to the naive path");
        std::process::exit(1);
    }
    if cfg.smoke {
        if cold_total >= naive_total {
            eprintln!(
                "FAIL: sweep ({}) not faster than naive ({})",
                ms(cold_total),
                ms(naive_total)
            );
            std::process::exit(1);
        }
        println!("smoke OK: measures bit-identical, sweep beat naive");
    }
}
