//! Certified-bounds smoke gate: bound width vs. lumping tolerance.
//!
//! Runs `certified_bounds` (the `mdlump-cli solve --bounds` engine) on
//! two configurations and checks the certification property on each row:
//!
//! * the shared-repair model with a small per-machine failure spread —
//!   tolerance-lumpable only, so the rate envelope is non-empty and the
//!   sweeps produce a genuine interval that must **enclose** the
//!   unlumped chain's measure;
//! * the tandem model (`J = 1`) — exactly lumpable, so the enclosure
//!   must degenerate to the zero-width interval of the scalar solve.
//!
//! The binary exits non-zero when any row violates its property (a bound
//! is non-finite, a non-degenerate interval misses the unlumped value,
//! or a degenerate interval has width), which makes it usable as a CI
//! gate. Run with `cargo run -p mdl-bench --release --bin bounds`.

use mdl_cli::commands::{certified_bounds, Measure};
use mdl_core::KernelOptions;
use mdl_ctmc::SolverOptions;
use mdl_linalg::Tolerance;
use mdl_models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;
use mdl_obs::Budget;

struct Row {
    model: &'static str,
    tolerance: String,
    lumped: u64,
    deviation: f64,
    lo: f64,
    hi: f64,
    full: f64,
    degenerate: bool,
    tight: bool,
    ok: bool,
}

fn check(model: &'static str, mrp: &mdl_core::MdMrp, tolerance: Tolerance, full: f64) -> Row {
    let kernel = KernelOptions::default();
    let budget = Budget::unlimited();
    let cb = certified_bounds(mrp, Measure::Stationary, tolerance, &kernel, &budget)
        .expect("certified bounds solve");
    let width = cb.bounds.hi - cb.bounds.lo;
    let mid = 0.5 * (cb.bounds.lo + cb.bounds.hi);
    let scale = 1.0 + full.abs();
    // Strict enclosure of the cross-check value is only meaningful when
    // the interval is wider than the cross-check's own iteration error
    // (the unlumped chain is solved to ~1e-9 residual, not exactly).
    // Narrower intervals — the degenerate point included — are checked
    // by midpoint agreement instead, mirroring `solve --bounds`'s
    // degenerate |Δ| display.
    let tight = width <= 1e-8 * scale;
    let ok = cb.bounds.lo.is_finite()
        && cb.bounds.hi.is_finite()
        && cb.bounds.lo <= cb.bounds.hi
        && (!cb.degenerate || width == 0.0)
        && if tight {
            (mid - full).abs() <= 1e-6 * scale
        } else {
            // The acceptance property: the certified interval encloses
            // the unlumped chain's measure.
            cb.bounds.lo <= full && full <= cb.bounds.hi
        };
    Row {
        model,
        tolerance: format!("{tolerance:?}"),
        lumped: cb.lump.stats.lumped_states,
        deviation: cb.lump.stats.max_rate_deviation,
        lo: cb.bounds.lo,
        hi: cb.bounds.hi,
        full,
        degenerate: cb.degenerate,
        tight,
        ok,
    }
}

fn main() {
    println!("Certified bounds: width vs. lumping tolerance");

    let shared = SharedRepairModel::new(SharedRepairConfig {
        machines: 6,
        failure_spread: 1e-4,
        ..SharedRepairConfig::default()
    });
    let shared_mrp = shared.build_md_mrp().expect("shared-repair model builds");
    let shared_full = shared_mrp
        .expected_stationary_reward(&SolverOptions::default())
        .expect("unlumped solve");

    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let tandem_mrp = tandem
        .build_md_mrp_with_reward(TandemReward::Availability)
        .expect("tandem model builds");
    let tandem_full = tandem_mrp
        .expected_stationary_reward(&SolverOptions::default())
        .expect("unlumped solve");

    let mut rows = Vec::new();
    for decimals in [2, 3, 4] {
        rows.push(check(
            "shared-repair",
            &shared_mrp,
            Tolerance::Decimals(decimals),
            shared_full,
        ));
    }
    rows.push(check(
        "shared-repair",
        &shared_mrp,
        Tolerance::Exact,
        shared_full,
    ));
    rows.push(check(
        "tandem-J1",
        &tandem_mrp,
        Tolerance::default(),
        tandem_full,
    ));

    println!(
        "{:<14} {:<12} {:>7} {:>10} {:>14} {:>14} {:>10} {:>11}",
        "model", "tolerance", "lumped", "max dev", "lo", "hi", "width", "verdict"
    );
    let mut lines = Vec::new();
    let mut failed = false;
    for row in &rows {
        let width = row.hi - row.lo;
        let verdict = match (row.ok, row.degenerate, row.tight) {
            (true, true, _) => "degenerate",
            (true, false, true) => "agrees",
            (true, false, false) => "enclosed",
            (false, ..) => "VIOLATED",
        };
        failed |= !row.ok;
        println!(
            "{:<14} {:<12} {:>7} {:>10.3e} {:>14.10} {:>14.10} {:>10.3e} {:>11}",
            row.model, row.tolerance, row.lumped, row.deviation, row.lo, row.hi, width, verdict
        );

        let mut obj = JsonObject::new();
        obj.str("type", "bounds")
            .str("model", row.model)
            .str("tolerance", &row.tolerance)
            .u64("lumped", row.lumped)
            .f64("max_deviation", row.deviation)
            .f64("lo", row.lo)
            .f64("hi", row.hi)
            .f64("width", width)
            .f64("unlumped", row.full)
            .bool("degenerate", row.degenerate)
            .bool("ok", row.ok);
        lines.push(obj.close());
    }
    mdl_bench::emit_jsonl(&lines);

    if failed {
        eprintln!("certified-bounds gate: FAILED (see VIOLATED rows above)");
        std::process::exit(1);
    }
    println!("certified-bounds gate: ok ({} rows)", rows.len());
}
