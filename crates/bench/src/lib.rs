//! Shared experiment harness for regenerating the paper's evaluation.
//!
//! The paper's evaluation is Table 1 plus quantitative claims in the
//! Section 5 prose; every binary in this crate regenerates one of them
//! (see `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results):
//!
//! * `table1` — the full Table 1 (sizes, node counts, reductions, times,
//!   memory) for `J ∈ {1, 2, 3}`;
//! * `optimality` — the Section 5 check that state-level lumping finds no
//!   further reduction on the compositionally lumped chain;
//! * `solution_cost` — solution-vector size, per-iteration time and
//!   measure agreement, lumped vs. unlumped;
//! * `ablation_key` — formal-sum vs. expanded-matrix key function
//!   (Section 4's rejected alternative);
//! * `scaling` — growth beyond the paper's `J ≤ 3` column.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use mdl_core::{LumpKind, LumpRequest, LumpResult, MdMrp};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_obs::json::JsonObject;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct TandemRow {
    /// Number of jobs `J`.
    pub jobs: usize,
    /// Overall reachable states (unlumped).
    pub overall: u64,
    /// Per-level local state-space sizes `S₁, S₂, S₃`.
    pub level_sizes: Vec<usize>,
    /// MD nodes per level `N₁, N₂, N₃`.
    pub nodes_per_level: Vec<usize>,
    /// Overall lumped states.
    pub lumped_overall: u64,
    /// Per-level lumped sizes `Ŝ₁, Ŝ₂, Ŝ₃`.
    pub lumped_level_sizes: Vec<usize>,
    /// Overall reduction factor.
    pub reduction_overall: f64,
    /// Per-level reduction factors.
    pub reduction_per_level: Vec<f64>,
    /// State-space generation time (model build + MD + reachability).
    pub generation: Duration,
    /// Compositional lumping time.
    pub lumping: Duration,
    /// Unlumped symbolic memory (MD + MDD), bytes.
    pub memory_unlumped: usize,
    /// Lumped symbolic memory (MD + MDD), bytes.
    pub memory_lumped: usize,
}

/// Builds the tandem model for `jobs` and runs the full Table-1 pipeline.
///
/// # Panics
///
/// Panics if the model fails to build or lump (should not happen for the
/// supported configurations).
pub fn tandem_row(jobs: usize, reward: TandemReward) -> (TandemRow, MdMrp, LumpResult) {
    let t0 = Instant::now();
    let model = TandemModel::new(TandemConfig {
        jobs,
        ..TandemConfig::default()
    });
    let mrp = model
        .build_md_mrp_with_reward(reward)
        .expect("tandem model builds");
    let generation = t0.elapsed();

    let t1 = Instant::now();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("tandem model lumps");
    let lumping = t1.elapsed();

    let row = TandemRow {
        jobs,
        overall: mrp.matrix().reach().count(),
        level_sizes: model.level_sizes(),
        nodes_per_level: mrp.matrix().md().nodes_per_level(),
        lumped_overall: result.stats.lumped_states,
        lumped_level_sizes: result
            .stats
            .per_level
            .iter()
            .map(|l| l.lumped_size)
            .collect(),
        reduction_overall: result.stats.reduction_factor(),
        reduction_per_level: result
            .stats
            .per_level
            .iter()
            .map(|l| l.original_size as f64 / l.lumped_size as f64)
            .collect(),
        generation,
        lumping,
        memory_unlumped: result.stats.memory_before,
        memory_lumped: result.stats.memory_after,
    };
    (row, mrp, result)
}

impl TandemRow {
    /// Encodes the row as one line of JSON (the `BENCH_*.json` record
    /// format; see EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("type", "table1")
            .u64("jobs", self.jobs as u64)
            .u64("overall", self.overall)
            .raw("level_sizes", &json_usize_array(&self.level_sizes))
            .raw("nodes_per_level", &json_usize_array(&self.nodes_per_level))
            .u64("lumped_overall", self.lumped_overall)
            .raw(
                "lumped_level_sizes",
                &json_usize_array(&self.lumped_level_sizes),
            )
            .f64("reduction_overall", self.reduction_overall)
            .raw(
                "reduction_per_level",
                &json_f64_array(&self.reduction_per_level),
            )
            .u64("generation_ns", duration_ns(self.generation))
            .u64("lumping_ns", duration_ns(self.lumping))
            .u64("memory_unlumped", self.memory_unlumped as u64)
            .u64("memory_lumped", self.memory_lumped as u64);
        obj.close()
    }
}

/// Saturating nanosecond count of a duration.
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Renders a `usize` slice as a JSON array.
pub fn json_usize_array(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Renders an `f64` slice as a JSON array (non-finite entries become
/// `null`, matching `mdl_obs::json`).
pub fn json_f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        mdl_obs::json::write_f64(&mut out, *x);
    }
    out.push(']');
    out
}

/// Emits machine-readable rows alongside the human tables: one JSON
/// object per line to stdout, and appended to the file named by the
/// `MDL_BENCH_JSONL` environment variable when it is set (so sweeps can
/// accumulate a `BENCH_*.json` trajectory across invocations).
pub fn emit_jsonl(lines: &[String]) {
    if lines.is_empty() {
        return;
    }
    println!();
    println!("machine-readable (JSONL):");
    for line in lines {
        println!("{line}");
    }
    if let Ok(path) = std::env::var("MDL_BENCH_JSONL") {
        if path.is_empty() {
            return;
        }
        use std::io::Write as _;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                for line in lines {
                    let _ = writeln!(f, "{line}");
                }
            }
            Err(e) => eprintln!("warning: cannot append bench JSONL to {path}: {e}"),
        }
    }
}

/// Formats a byte count the way the paper's Table 1 does (KB).
pub fn kb(bytes: usize) -> String {
    format!("{:.1} KB", bytes as f64 / 1024.0)
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3} s", d.as_secs_f64())
}

/// Prints the regenerated Table 1 next to the paper's reported values.
pub fn print_table1(rows: &[TandemRow]) {
    println!("Table 1 — MD representation of the tandem system's CTMC (reproduction)");
    println!("(paper values in brackets; see EXPERIMENTS.md for the shape discussion)");
    println!();
    println!("Unlumped state-space sizes and MD nodes:");
    println!(
        "{:>3} {:>12} {:>6} {:>8} {:>8}   {:>10}",
        "J", "overall", "S1", "S2", "S3", "N1/N2/N3"
    );
    let paper_top = [
        (1, 22_100u64, 2, 650, 160, "1/3/3"),
        (2, 197_600, 3, 3_575, 700, "1/5/4"),
        (3, 1_236_300, 4, 14_300, 2_220, "1/7/5"),
    ];
    for row in rows {
        let nodes = row
            .nodes_per_level
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:>3} {:>12} {:>6} {:>8} {:>8}   {:>10}",
            row.jobs,
            row.overall,
            row.level_sizes[0],
            row.level_sizes[1],
            row.level_sizes[2],
            nodes
        );
        if let Some(p) = paper_top.iter().find(|p| p.0 == row.jobs) {
            println!(
                "    [paper: overall={} S1={} S2={} S3={} N={}]",
                p.1, p.2, p.3, p.4, p.5
            );
        }
    }
    println!();
    println!("Lumped sizes and reductions:");
    println!(
        "{:>3} {:>12} {:>6} {:>8} {:>8}   {:>9} {:>7} {:>7}",
        "J", "lumped", "Ŝ1", "Ŝ2", "Ŝ3", "overall×", "l2×", "l3×"
    );
    let paper_mid = [
        (1, 395u64, 2, 30, 40, 55.9, 21.7, 4.0),
        (2, 4_075, 3, 178, 175, 48.4, 20.4, 4.0),
        (3, 28_090, 4, 803, 555, 44.0, 17.8, 4.0),
    ];
    for row in rows {
        println!(
            "{:>3} {:>12} {:>6} {:>8} {:>8}   {:>9.1} {:>7.1} {:>7.1}",
            row.jobs,
            row.lumped_overall,
            row.lumped_level_sizes[0],
            row.lumped_level_sizes[1],
            row.lumped_level_sizes[2],
            row.reduction_overall,
            row.reduction_per_level[1],
            row.reduction_per_level[2],
        );
        if let Some(p) = paper_mid.iter().find(|p| p.0 == row.jobs) {
            println!(
                "    [paper: lumped={} Ŝ1={} Ŝ2={} Ŝ3={} overall×{} l2×{} l3×{}]",
                p.1, p.2, p.3, p.4, p.5, p.6, p.7
            );
        }
    }
    println!();
    println!("Times and symbolic memory:");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "J", "gen time", "MD space", "lump time", "lumped space"
    );
    let paper_bottom = [
        (1, "0.05 s", "53.9 KB", "0.04 s", "4.7 KB"),
        (2, "0.80 s", "421.0 KB", "0.26 s", "36.0 KB"),
        (3, "12.10 s", "2230.0 KB", "1.80 s", "201.0 KB"),
    ];
    for row in rows {
        println!(
            "{:>3} {:>12} {:>12} {:>12} {:>12}",
            row.jobs,
            secs(row.generation),
            kb(row.memory_unlumped),
            secs(row.lumping),
            kb(row.memory_lumped),
        );
        if let Some(p) = paper_bottom.iter().find(|p| p.0 == row.jobs) {
            println!(
                "    [paper: gen={} md={} lump={} lumped={}]",
                p.1, p.2, p.3, p.4
            );
        }
    }
}

/// Parses the `J` list from argv (defaults to `1 2 3`).
pub fn jobs_from_args() -> Vec<usize> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    if args.is_empty() {
        vec![1, 2, 3]
    } else {
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tandem_row_smoke() {
        let (row, mrp, result) = tandem_row(1, TandemReward::Availability);
        assert_eq!(row.jobs, 1);
        assert_eq!(row.overall, mrp.matrix().reach().count());
        assert_eq!(row.lumped_overall, result.stats.lumped_states);
        assert!(row.reduction_overall > 1.0);
        assert_eq!(row.level_sizes.len(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(2048), "2.0 KB");
        assert!(secs(Duration::from_millis(1500)).starts_with("1.500"));
        assert_eq!(json_usize_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(json_f64_array(&[0.5, f64::NAN]), "[0.5,null]");
        assert_eq!(duration_ns(Duration::from_micros(2)), 2_000);
    }

    #[test]
    fn tandem_row_json_is_one_line_with_all_fields() {
        let (row, _, _) = tandem_row(1, TandemReward::Availability);
        let json = row.to_json();
        assert!(!json.contains('\n'));
        for key in [
            "\"type\":\"table1\"",
            "\"jobs\":1",
            "\"level_sizes\":[",
            "\"generation_ns\":",
            "\"memory_lumped\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
