//! Benchmarks symbolic matrix-vector sweeps and stationary solves on the
//! unlumped vs. lumped tandem chain — the per-iteration-cost claim of
//! Section 5.

use criterion::{criterion_group, criterion_main, Criterion};

use mdl_core::{LumpKind, LumpRequest};
use mdl_ctmc::SolverOptions;
use mdl_linalg::RateMatrix;
use mdl_models::tandem::{TandemConfig, TandemModel};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = tandem.build_md_mrp().expect("tandem builds");
    let lumped = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");

    let n_full = mrp.num_states();
    let x_full = vec![1.0 / n_full as f64; n_full];
    group.bench_function("sweep_unlumped_40k", |b| {
        b.iter(|| {
            let mut y = vec![0.0; n_full];
            mrp.matrix().acc_vec_mat(&x_full, &mut y);
            y
        })
    });

    let n_lump = lumped.mrp.num_states();
    let x_lump = vec![1.0 / n_lump as f64; n_lump];
    group.bench_function("sweep_lumped_505", |b| {
        b.iter(|| {
            let mut y = vec![0.0; n_lump];
            lumped.mrp.matrix().acc_vec_mat(&x_lump, &mut y);
            y
        })
    });

    let opts = SolverOptions {
        tolerance: 1e-8,
        ..SolverOptions::default()
    };
    group.bench_function("stationary_lumped", |b| {
        b.iter(|| lumped.mrp.stationary(&opts).expect("solves"))
    });

    // Flat baseline sweep for the same chain (materialized sparse matrix).
    let flat = mrp.matrix().flatten();
    group.bench_function("sweep_flat_baseline_40k", |b| {
        b.iter(|| {
            let mut y = vec![0.0; n_full];
            flat.acc_vec_mat(&x_full, &mut y);
            y
        })
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
