//! Benchmarks state-space generation: MD construction from the Kronecker
//! expression and explicit reachability exploration into the MDD — the
//! "gen time" column of Table 1.

use criterion::{criterion_group, criterion_main, Criterion};

use mdl_models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdl_models::tandem::{TandemConfig, TandemModel};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);

    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    group.bench_function("tandem_j1_md", |b| {
        b.iter(|| tandem.composed().kronecker().to_md().expect("md builds"))
    });
    group.bench_function("tandem_j1_reachability", |b| {
        b.iter(|| tandem.composed().reachable().expect("reachable"))
    });

    let repair = SharedRepairModel::new(SharedRepairConfig {
        machines: 10,
        ..SharedRepairConfig::default()
    });
    group.bench_function("shared_repair_m10_full_pipeline", |b| {
        b.iter(|| repair.build_md_mrp().expect("mrp builds"))
    });

    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
