//! Benchmarks the MDD substrate: construction from tuple sets, indexing,
//! set operations and quotienting — the costs underneath every symbolic
//! state-space manipulation in the stack.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mdl_mdd::Mdd;
use mdl_partition::Partition;

fn random_tuples(seed: u64, sizes: &[usize], count: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples: Vec<Vec<u32>> = (0..count)
        .map(|_| sizes.iter().map(|&s| rng.gen_range(0..s as u32)).collect())
        .collect();
    tuples.sort_unstable();
    tuples.dedup();
    tuples
}

fn bench_mdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdd_ops");
    group.sample_size(10);

    let sizes = vec![16usize, 64, 64];
    let tuples = random_tuples(1, &sizes, 50_000);
    group.bench_function("build_50k_tuples", |b| {
        b.iter(|| Mdd::from_sorted_unique_tuples(sizes.clone(), &tuples))
    });

    let mdd = Mdd::from_sorted_unique_tuples(sizes.clone(), &tuples);
    group.bench_function("index_of_all", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &tuples {
                acc += mdd.index_of(t).expect("member");
            }
            acc
        })
    });

    let other = Mdd::from_tuples(sizes.clone(), random_tuples(2, &sizes, 50_000)).unwrap();
    group.bench_function("union_50k_50k", |b| {
        b.iter(|| mdd.union(&other).expect("same shape"))
    });
    group.bench_function("intersection_50k_50k", |b| {
        b.iter(|| mdd.intersection(&other).expect("same shape"))
    });

    // Quotient by pairing adjacent locals (compatible for the full product).
    let full = Mdd::full(sizes.clone()).unwrap();
    let partitions: Vec<Partition> = sizes
        .iter()
        .map(|&s| Partition::from_key_fn(s, |x| x / 2))
        .collect();
    group.bench_function("quotient_full_product", |b| {
        b.iter(|| full.quotient(&partitions).expect("compatible"))
    });

    group.finish();
}

criterion_group!(benches, bench_mdd);
criterion_main!(benches);
