//! Benchmarks the optimal state-level lumping baseline [9] on flat chains
//! of growing size — the engine the compositional algorithm applies
//! per level, and the cost the paper's approach avoids paying on the full
//! state space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdl_linalg::{CooMatrix, CsrMatrix};
use mdl_models::tandem::{TandemConfig, TandemModel, TandemReward};
use mdl_statelump::{ordinary_lump, LumpOptions};

/// A ring of `blocks` identical 4-state blocks (known 4x lumpable).
fn ring_of_blocks(blocks: usize) -> CsrMatrix {
    let n = blocks * 4;
    let mut coo = CooMatrix::new(n, n);
    for b in 0..blocks {
        let base = b * 4;
        let next = ((b + 1) % blocks) * 4;
        for k in 0..4 {
            coo.push(base + k, base + (k + 1) % 4, 1.0); // internal cycle
            coo.push(base + k, next + k, 0.5); // to the same slot next block
        }
    }
    coo.to_csr()
}

fn bench_statelump(c: &mut Criterion) {
    let mut group = c.benchmark_group("statelump");
    group.sample_size(10);

    for blocks in [100usize, 1_000, 10_000] {
        let r = ring_of_blocks(blocks);
        let reward = vec![0.0; r.nrows()];
        group.bench_with_input(
            BenchmarkId::new("ring_of_blocks", blocks * 4),
            &blocks,
            |b, _| b.iter(|| ordinary_lump(&r, &reward, &LumpOptions::default())),
        );
    }

    // The flattened tandem chain (J = 1): the cost of flat optimal lumping
    // that the compositional algorithm sidesteps.
    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = tandem
        .build_md_mrp_with_reward(TandemReward::Availability)
        .expect("tandem builds");
    let flat = mrp.matrix().flatten();
    let reward = mrp.reward_vector();
    group.bench_function("tandem_j1_flat_40k", |b| {
        b.iter(|| ordinary_lump(&flat, &reward, &LumpOptions::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_statelump);
criterion_main!(benches);
