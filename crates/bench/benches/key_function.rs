//! Benchmarks the two level-local key functions of Section 4: formal sums
//! over node references (the paper's choice) vs. expanded child matrices
//! (the rejected sufficient-and-necessary alternative).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdl_core::ablation::comp_lumping_level_expanded;
use mdl_core::{comp_lumping_level, LumpKind};
use mdl_linalg::Tolerance;
use mdl_models::random::{planted_model, LevelSpec};
use mdl_partition::Partition;

fn bench_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_function");
    group.sample_size(10);

    for copies in [2usize, 3, 4] {
        let pm = planted_model(
            7,
            &[
                LevelSpec::uniform(3, copies),
                LevelSpec::uniform(3, copies),
                LevelSpec::uniform(3, copies),
            ],
            LumpKind::Ordinary,
            2,
            2,
        );
        let md = pm.expr.to_md().expect("planted model builds");
        let n = md.sizes()[0];

        group.bench_with_input(BenchmarkId::new("formal_sum", copies), &copies, |b, _| {
            b.iter(|| {
                comp_lumping_level(
                    &md.level_nodes(0),
                    Partition::single_class(n),
                    LumpKind::Ordinary,
                    Tolerance::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("expanded", copies), &copies, |b, _| {
            b.iter(|| {
                comp_lumping_level_expanded(
                    &md,
                    0,
                    Partition::single_class(n),
                    LumpKind::Ordinary,
                    Tolerance::default(),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_keys);
criterion_main!(benches);
