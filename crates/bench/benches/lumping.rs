//! Benchmarks the compositional lumping algorithm itself — the "lump
//! time" column of Table 1 — including the combined-key vs. per-node
//! fixed-point variants and the quasi-reduction post-pass.

use criterion::{criterion_group, criterion_main, Criterion};

use mdl_core::{LumpKind, LumpRequest};
use mdl_models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdl_models::tandem::{TandemConfig, TandemModel};

fn bench_lumping(c: &mut Criterion) {
    let mut group = c.benchmark_group("lumping");
    group.sample_size(10);

    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = tandem.build_md_mrp().expect("tandem builds");
    group.bench_function("tandem_j1_ordinary", |b| {
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .run(&mrp)
                .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_ordinary_per_node", |b| {
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .per_node_fixed_point(true)
                .run(&mrp)
                .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_ordinary_quasi_reduce", |b| {
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .quasi_reduce(true)
                .run(&mrp)
                .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_ordinary_canonicalize", |b| {
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .canonicalize(true)
                .run(&mrp)
                .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_exact", |b| {
        b.iter(|| LumpRequest::new(LumpKind::Exact).run(&mrp).expect("lumps"))
    });

    // Overhead of the observability layer: the same lump with metrics
    // enabled (counters + span histograms, no subscribers). Compare
    // against `tandem_j1_ordinary`, which runs with obs disabled — the
    // disabled no-op path must not regress it.
    group.bench_function("tandem_j1_ordinary_obs_enabled", |b| {
        mdl_obs::set_enabled(true);
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .run(&mrp)
                .expect("lumps")
        });
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
    });

    let repair = SharedRepairModel::new(SharedRepairConfig {
        machines: 10,
        ..SharedRepairConfig::default()
    });
    let repair_mrp = repair.build_md_mrp().expect("repair builds");
    group.bench_function("shared_repair_m10_ordinary", |b| {
        b.iter(|| {
            LumpRequest::new(LumpKind::Ordinary)
                .run(&repair_mrp)
                .expect("lumps")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lumping);
criterion_main!(benches);
