//! Benchmarks the compositional lumping algorithm itself — the "lump
//! time" column of Table 1 — including the combined-key vs. per-node
//! fixed-point variants and the quasi-reduction post-pass.

use criterion::{criterion_group, criterion_main, Criterion};

use mdl_core::{compositional_lump, compositional_lump_with, LumpKind, LumpOptions};
use mdl_models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdl_models::tandem::{TandemConfig, TandemModel};

fn bench_lumping(c: &mut Criterion) {
    let mut group = c.benchmark_group("lumping");
    group.sample_size(10);

    let tandem = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = tandem.build_md_mrp().expect("tandem builds");
    group.bench_function("tandem_j1_ordinary", |b| {
        b.iter(|| compositional_lump(&mrp, LumpKind::Ordinary).expect("lumps"))
    });
    group.bench_function("tandem_j1_ordinary_per_node", |b| {
        b.iter(|| {
            compositional_lump_with(
                &mrp,
                LumpKind::Ordinary,
                &LumpOptions {
                    per_node_fixed_point: true,
                    ..Default::default()
                },
            )
            .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_ordinary_quasi_reduce", |b| {
        b.iter(|| {
            compositional_lump_with(
                &mrp,
                LumpKind::Ordinary,
                &LumpOptions {
                    quasi_reduce: true,
                    ..Default::default()
                },
            )
            .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_ordinary_canonicalize", |b| {
        b.iter(|| {
            compositional_lump_with(
                &mrp,
                LumpKind::Ordinary,
                &LumpOptions {
                    canonicalize: true,
                    ..Default::default()
                },
            )
            .expect("lumps")
        })
    });
    group.bench_function("tandem_j1_exact", |b| {
        b.iter(|| compositional_lump(&mrp, LumpKind::Exact).expect("lumps"))
    });

    // Overhead of the observability layer: the same lump with metrics
    // enabled (counters + span histograms, no subscribers). Compare
    // against `tandem_j1_ordinary`, which runs with obs disabled — the
    // disabled no-op path must not regress it.
    group.bench_function("tandem_j1_ordinary_obs_enabled", |b| {
        mdl_obs::set_enabled(true);
        b.iter(|| compositional_lump(&mrp, LumpKind::Ordinary).expect("lumps"));
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
    });

    let repair = SharedRepairModel::new(SharedRepairConfig {
        machines: 10,
        ..SharedRepairConfig::default()
    });
    let repair_mrp = repair.build_md_mrp().expect("repair builds");
    group.bench_function("shared_repair_m10_ordinary", |b| {
        b.iter(|| compositional_lump(&repair_mrp, LumpKind::Ordinary).expect("lumps"))
    });

    group.finish();
}

criterion_group!(benches, bench_lumping);
criterion_main!(benches);
