use std::collections::HashMap;

use mdl_arena::Slab;

use crate::mdd::{relabel, Mdd, MddError, MddLevel, NO_CHILD, TERMINAL};

/// Per-level hash-consing tables used while assembling an [`Mdd`]
/// bottom-up. Shared by construction, set operations and quotienting.
pub(crate) struct Interner {
    sizes: Vec<usize>,
    /// Children rows per level (node payloads before finalization).
    levels: Vec<Vec<Vec<u32>>>,
    unique: Vec<HashMap<Vec<u32>, u32>>,
    hits: mdl_obs::Counter,
    misses: mdl_obs::Counter,
}

impl Interner {
    pub(crate) fn new(sizes: Vec<usize>) -> Self {
        let l = sizes.len();
        Interner {
            sizes,
            levels: vec![Vec::new(); l],
            unique: vec![HashMap::new(); l],
            hits: mdl_obs::counter("mdd.unique.hit"),
            misses: mdl_obs::counter("mdd.unique.miss"),
        }
    }

    pub(crate) fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Interns a children row at `level`, returning the node index.
    pub(crate) fn intern(&mut self, level: usize, children: Vec<u32>) -> u32 {
        debug_assert_eq!(children.len(), self.sizes[level]);
        if let Some(&idx) = self.unique[level].get(&children) {
            self.hits.inc();
            return idx;
        }
        self.misses.inc();
        let idx = self.levels[level].len() as u32;
        self.levels[level].push(children.clone());
        self.unique[level].insert(children, idx);
        idx
    }

    /// Finalizes into an [`Mdd`] rooted at `root` (a level-0 node index):
    /// drops unreachable interned nodes, renumbers, and computes the count
    /// and offset labelling.
    pub(crate) fn finish(self, root: u32) -> Mdd {
        let num_levels = self.sizes.len();
        // Mark reachable nodes level by level.
        let mut keep: Vec<Vec<bool>> = self
            .levels
            .iter()
            .map(|nodes| vec![false; nodes.len()])
            .collect();
        if !self.levels[0].is_empty() {
            keep[0][root as usize] = true;
            for l in 0..num_levels - 1 {
                for (i, row) in self.levels[l].iter().enumerate() {
                    if !keep[l][i] {
                        continue;
                    }
                    for &c in row {
                        if c != NO_CHILD {
                            keep[l + 1][c as usize] = true;
                        }
                    }
                }
            }
        }
        // Renumber.
        let remap: Vec<Vec<u32>> = keep
            .iter()
            .map(|k| {
                let mut map = vec![u32::MAX; k.len()];
                let mut next = 0;
                for (i, &kept) in k.iter().enumerate() {
                    if kept {
                        map[i] = next;
                        next += 1;
                    }
                }
                map
            })
            .collect();

        // Pack kept rows into the per-level flat child slabs, rewriting
        // references through the remap.
        let mut levels: Vec<MddLevel> = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let size = self.sizes[l];
            let kept = keep[l].iter().filter(|&&k| k).count();
            let mut flat: Vec<u32> = Vec::with_capacity(kept * size);
            for (i, row) in self.levels[l].iter().enumerate() {
                if !keep[l][i] {
                    continue;
                }
                flat.extend(row.iter().map(|&c| {
                    if c == NO_CHILD || c == TERMINAL {
                        c
                    } else {
                        remap[l + 1][c as usize]
                    }
                }));
            }
            levels.push(MddLevel {
                size,
                children: flat.into(),
                offsets: Slab::new(),
                counts: Slab::new(),
            });
        }

        // Ensure a root exists even for the empty set.
        if levels[0].children.is_empty() {
            debug_assert!(levels.iter().all(|lv| lv.children.is_empty()));
            levels[0].children = vec![NO_CHILD; self.sizes[0]].into();
        }

        let total = relabel(&mut levels);
        Mdd {
            sizes: self.sizes,
            levels,
            total,
        }
    }
}

impl Mdd {
    /// Builds an MDD from a set of tuples over local state spaces of the
    /// given `sizes` (duplicates are collapsed).
    ///
    /// # Errors
    ///
    /// * [`MddError::InvalidShape`] if `sizes` is empty or contains zero;
    /// * [`MddError::WrongArity`] / [`MddError::ValueOutOfRange`] for
    ///   malformed tuples.
    pub fn from_tuples(sizes: Vec<usize>, mut tuples: Vec<Vec<u32>>) -> Result<Mdd, MddError> {
        if sizes.is_empty() || sizes.iter().any(|&s| s == 0 || s > u32::MAX as usize) {
            return Err(MddError::InvalidShape);
        }
        for t in &tuples {
            if t.len() != sizes.len() {
                return Err(MddError::WrongArity {
                    got: t.len(),
                    expected: sizes.len(),
                });
            }
            for (l, (&v, &size)) in t.iter().zip(&sizes).enumerate() {
                if v as usize >= size {
                    return Err(MddError::ValueOutOfRange {
                        level: l,
                        value: v,
                        size,
                    });
                }
            }
        }
        tuples.sort_unstable();
        tuples.dedup();
        Ok(Self::from_sorted_unique_tuples(sizes, &tuples))
    }

    /// Builds the MDD of the **full product** `S₁ × … × S_L`: one node per
    /// level with every child present. Useful as the trivial "all states
    /// reachable" index set.
    ///
    /// # Errors
    ///
    /// [`MddError::InvalidShape`] if `sizes` is empty or contains zero.
    pub fn full(sizes: Vec<usize>) -> Result<Mdd, MddError> {
        if sizes.is_empty() || sizes.iter().any(|&s| s == 0 || s > u32::MAX as usize) {
            return Err(MddError::InvalidShape);
        }
        let mut interner = Interner::new(sizes.clone());
        let last = sizes.len() - 1;
        let mut child = TERMINAL;
        for l in (0..=last).rev() {
            let row = vec![if l == last { TERMINAL } else { child }; sizes[l]];
            child = interner.intern(l, row);
        }
        Ok(interner.finish(child))
    }

    /// Builds from tuples already sorted lexicographically with no
    /// duplicates; components must be in range (checked only in debug
    /// builds). This is the fast path used by state-space generators.
    pub fn from_sorted_unique_tuples(sizes: Vec<usize>, tuples: &[Vec<u32>]) -> Mdd {
        debug_assert!(
            tuples.windows(2).all(|w| w[0] < w[1]),
            "tuples sorted and unique"
        );
        let mut interner = Interner::new(sizes);
        let root = if tuples.is_empty() {
            let empty = vec![NO_CHILD; interner.sizes()[0]];
            interner.intern(0, empty)
        } else {
            build_range(&mut interner, 0, tuples)
        };
        interner.finish(root)
    }
}

fn build_range(interner: &mut Interner, level: usize, tuples: &[Vec<u32>]) -> u32 {
    let size = interner.sizes()[level];
    let last = level == interner.sizes().len() - 1;
    let mut children = vec![NO_CHILD; size];
    let mut start = 0;
    while start < tuples.len() {
        let v = tuples[start][level];
        let mut end = start + 1;
        while end < tuples.len() && tuples[end][level] == v {
            end += 1;
        }
        children[v as usize] = if last {
            TERMINAL
        } else {
            build_range(interner, level + 1, &tuples[start..end])
        };
        start = end;
    }
    interner.intern(level, children)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_fast_path_matches_general() {
        let sizes = vec![2, 3];
        let tuples = vec![vec![0, 0], vec![0, 2], vec![1, 1]];
        let a = Mdd::from_tuples(sizes.clone(), tuples.clone()).unwrap();
        let b = Mdd::from_sorted_unique_tuples(sizes, &tuples);
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.nodes_per_level(), b.nodes_per_level());
    }

    #[test]
    fn full_product_mdd() {
        let m = Mdd::full(vec![2, 3]).unwrap();
        assert_eq!(m.count(), 6);
        assert_eq!(m.nodes_per_level(), vec![1, 1]);
        for a in 0..2 {
            for b in 0..3 {
                assert_eq!(m.index_of(&[a, b]), Some((a * 3 + b) as u64));
            }
        }
    }

    #[test]
    fn invalid_shape_rejected() {
        assert!(matches!(
            Mdd::from_tuples(vec![], vec![]),
            Err(MddError::InvalidShape)
        ));
        assert!(matches!(
            Mdd::from_tuples(vec![2, 0], vec![]),
            Err(MddError::InvalidShape)
        ));
    }

    #[test]
    fn counts_and_offsets_consistent() {
        let m = Mdd::from_tuples(
            vec![3, 2, 2],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![2, 0, 0], vec![2, 1, 1]],
        )
        .unwrap();
        assert_eq!(m.count(), 4);
        // Every tuple's index_of must equal its rank from for_each_tuple.
        m.for_each_tuple(|t, rank| {
            assert_eq!(m.index_of(t), Some(rank));
        });
    }

    #[test]
    fn unreachable_nodes_dropped() {
        // Construction only interns reachable nodes, but `finish` must also
        // produce consecutive numbering: check structural integrity by
        // round-tripping.
        let tuples: Vec<Vec<u32>> = (0..20u32)
            .map(|i| vec![i % 4, (i / 4) % 3, i % 2])
            .collect();
        let m = Mdd::from_tuples(vec![4, 3, 2], tuples.clone()).unwrap();
        let mut expect = tuples;
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(m.tuples(), expect);
    }
}
