use std::fmt;

use mdl_arena::{ImageView, ImageWriter, Slab, SlabSource};

/// Sentinel: no child at this local state (the tuple set contains nothing
/// below this edge).
pub(crate) const NO_CHILD: u32 = u32::MAX;
/// Sentinel used at the last level: the edge terminates in the accepting
/// terminal (the tuple is in the set).
pub(crate) const TERMINAL: u32 = u32::MAX - 1;

/// Image section holding the level sizes (`u64` elements).
const TAG_SIZES: u32 = 0;
/// First per-level section tag; level `l` owns tags
/// `LEVEL_TAG_BASE + 4l ..= LEVEL_TAG_BASE + 4l + 2`.
const LEVEL_TAG_BASE: u32 = 16;

fn level_tag(level: usize) -> u32 {
    LEVEL_TAG_BASE + (level as u32) * 4
}

/// Identifies a node of an [`Mdd`]: its level (0-based, `0` is the root
/// level) and its index within that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MddNodeId {
    /// 0-based level (paper levels are 1-based: paper level `i` is `i − 1`
    /// here).
    pub level: u32,
    /// Index of the node within its level.
    pub index: u32,
}

/// One level of an [`Mdd`] as three parallel slabs: node `i`'s child slots
/// occupy `children[i*size .. (i+1)*size]`, its offset labelling the same
/// range of `offsets`, and its tuple count `counts[i]`. Slabs are either
/// owned or zero-copy views into a mapped artifact (see `mdl-arena`).
#[derive(Debug, Clone)]
pub(crate) struct MddLevel {
    /// Slots per node (= the level's local state-space size).
    pub(crate) size: usize,
    /// Child slots, `size` per node: `NO_CHILD`, `TERMINAL` (last level
    /// only) or a next-level node index.
    pub(crate) children: Slab<u32>,
    /// `offsets[i*size + s]` = tuples below node `i` through local states
    /// `< s` — the indexing-function labelling.
    pub(crate) offsets: Slab<u64>,
    /// `counts[i]` = tuples encoded below node `i`.
    pub(crate) counts: Slab<u64>,
}

impl MddLevel {
    pub(crate) fn num_nodes(&self) -> usize {
        self.counts.len()
    }

    pub(crate) fn children_of(&self, node: usize) -> &[u32] {
        &self.children[node * self.size..(node + 1) * self.size]
    }

    pub(crate) fn offsets_of(&self, node: usize) -> &[u64] {
        &self.offsets[node * self.size..(node + 1) * self.size]
    }
}

/// Recomputes the count and offset labelling of `levels` bottom-up from
/// the children tables alone, returning the total tuple count.
pub(crate) fn relabel(levels: &mut [MddLevel]) -> u64 {
    let num_levels = levels.len();
    for l in (0..num_levels).rev() {
        let (upper, lower) = levels.split_at_mut(l + 1);
        let level = &mut upper[l];
        let lower_counts: Option<&[u64]> = lower.first().map(|lv| &lv.counts[..]);
        let n = level.children.len() / level.size;
        let mut offsets = Vec::with_capacity(level.children.len());
        let mut counts = Vec::with_capacity(n);
        for node in 0..n {
            let mut acc = 0u64;
            for s in 0..level.size {
                offsets.push(acc);
                let c = level.children[node * level.size + s];
                if c == TERMINAL {
                    acc += 1;
                } else if c != NO_CHILD {
                    acc += lower_counts.expect("inner level has a lower level")[c as usize];
                }
            }
            counts.push(acc);
        }
        level.offsets = offsets.into();
        level.counts = counts.into();
    }
    levels[0].counts.first().copied().unwrap_or(0)
}

/// Errors from MDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MddError {
    /// A tuple component was outside its level's local state space.
    ValueOutOfRange {
        /// Level of the offending component (0-based).
        level: usize,
        /// The component value.
        value: u32,
        /// The size of the level's local state space.
        size: usize,
    },
    /// A tuple had the wrong number of components.
    WrongArity {
        /// Number of components supplied.
        got: usize,
        /// Number of levels of the MDD.
        expected: usize,
    },
    /// `sizes` was empty or contained a zero.
    InvalidShape,
    /// A raw child slot held an invalid reference (see
    /// [`Mdd::from_raw_levels`]).
    InvalidChild {
        /// Level of the offending node (0-based).
        level: usize,
        /// Index of the node within its level.
        node: usize,
        /// Local-state slot within the node.
        slot: usize,
    },
    /// An arena image could not be decoded into an MDD.
    Image(String),
}

impl fmt::Display for MddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MddError::ValueOutOfRange { level, value, size } => {
                write!(
                    f,
                    "component {value} at level {level} exceeds local space of size {size}"
                )
            }
            MddError::WrongArity { got, expected } => {
                write!(f, "tuple has {got} components, expected {expected}")
            }
            MddError::InvalidShape => write!(f, "sizes must be non-empty and positive"),
            MddError::InvalidChild { level, node, slot } => {
                write!(
                    f,
                    "node {node} at level {level} has an invalid child reference in slot {slot}"
                )
            }
            MddError::Image(detail) => write!(f, "malformed MDD image: {detail}"),
        }
    }
}

impl std::error::Error for MddError {}

/// A borrowed handle to one node of an [`Mdd`] — the index-based
/// replacement for handing out references into per-node heap structures.
/// Obtained from [`Mdd::node_ref`]; all per-node queries (children,
/// counts, offsets) go through it without copying.
#[derive(Clone, Copy)]
pub struct MddNodeRef<'a> {
    level: &'a MddLevel,
    id: MddNodeId,
}

impl<'a> MddNodeRef<'a> {
    /// The node's identity.
    pub fn id(&self) -> MddNodeId {
        self.id
    }

    /// The raw child slots (one per local state): [`Mdd::RAW_NO_CHILD`],
    /// [`Mdd::RAW_TERMINAL`] (last level only) or a next-level node index.
    pub fn children(&self) -> &'a [u32] {
        self.level.children_of(self.id.index as usize)
    }

    /// The offset labelling: `offsets()[s]` = tuples below this node
    /// through local states `< s`.
    pub fn offsets(&self) -> &'a [u64] {
        self.level.offsets_of(self.id.index as usize)
    }

    /// Number of tuples encoded below this node.
    pub fn count(&self) -> u64 {
        self.level.counts[self.id.index as usize]
    }

    /// `true` when the node has an outgoing edge at `local`.
    pub fn is_present(&self, local: usize) -> bool {
        self.children()[local] != NO_CHILD
    }
}

impl fmt::Debug for MddNodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MddNodeRef")
            .field("id", &self.id)
            .field("count", &self.count())
            .finish()
    }
}

/// A quasi-reduced, hash-consed multi-valued decision diagram over
/// `S₁ × … × S_L`, with the offset labelling needed to index vectors over
/// the encoded set.
///
/// Nodes live in per-level slabs (`mdl-arena`): each level is three
/// parallel arrays — child slots, offsets, counts — addressed by node
/// index. A deserialized MDD can borrow those arrays zero-copy from a
/// mapped store artifact; the API is identical either way.
///
/// Immutable after construction; see the [crate-level docs](crate) and
/// [`Mdd::from_tuples`].
#[derive(Debug, Clone)]
pub struct Mdd {
    pub(crate) sizes: Vec<usize>,
    pub(crate) levels: Vec<MddLevel>,
    pub(crate) total: u64,
}

impl Mdd {
    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Local state-space sizes `|S₁|, …, |S_L|`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The root node (level 0, index 0).
    pub fn root(&self) -> MddNodeId {
        MddNodeId { level: 0, index: 0 }
    }

    /// Total number of tuples encoded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when the encoded set is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of nodes on each level.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(MddLevel::num_nodes).collect()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().map(MddLevel::num_nodes).sum()
    }

    /// A borrowed handle to the node `id`; panics if out of range.
    pub fn node_ref(&self, id: MddNodeId) -> MddNodeRef<'_> {
        let level = &self.levels[id.level as usize];
        assert!(
            (id.index as usize) < level.num_nodes(),
            "node index {} out of range at level {}",
            id.index,
            id.level
        );
        MddNodeRef { level, id }
    }

    /// The flat child table of one level: node `i`'s slots occupy
    /// `[i * sizes[level], (i + 1) * sizes[level])`. Zero-copy — this is
    /// the slab itself, possibly a view into a mapped artifact.
    pub fn raw_level_children(&self, level: usize) -> &[u32] {
        &self.levels[level].children
    }

    /// Sentinel in level child tables: the slot has no child.
    pub const RAW_NO_CHILD: u32 = NO_CHILD;
    /// Sentinel in level child tables: the slot reaches the accepting
    /// terminal (valid at the last level only).
    pub const RAW_TERMINAL: u32 = TERMINAL;

    /// Rebuilds an MDD from flat per-level child tables (the layout of
    /// [`Mdd::raw_level_children`]), validating every reference and
    /// recomputing counts, offsets and the total — intended for format
    /// converters (deserialization); normal construction goes through
    /// [`Mdd::from_tuples`].
    ///
    /// # Errors
    ///
    /// * [`MddError::InvalidShape`] if `sizes` is empty/zero, level counts
    ///   mismatch, a level's row is not a multiple of its size, or the
    ///   root level does not hold exactly one node;
    /// * [`MddError::InvalidChild`] for a slot holding `RAW_TERMINAL` above
    ///   the last level or an out-of-range node index.
    pub fn from_raw_levels(sizes: Vec<usize>, children: Vec<Vec<u32>>) -> Result<Mdd, MddError> {
        if sizes.is_empty() || sizes.contains(&0) || sizes.len() != children.len() {
            return Err(MddError::InvalidShape);
        }
        let num_levels = sizes.len();
        for (level, row) in children.iter().enumerate() {
            let size = sizes[level];
            if row.len() % size != 0 {
                return Err(MddError::InvalidShape);
            }
            // Inner levels may be empty (the empty-set MDD keeps only its
            // root); the root level must hold exactly one node.
            if level == 0 && row.len() / size != 1 {
                return Err(MddError::InvalidShape);
            }
        }
        for level in 0..num_levels {
            let last = level == num_levels - 1;
            let size = sizes[level];
            let next_count = if last {
                0
            } else {
                children[level + 1].len() / sizes[level + 1]
            };
            for (flat, &c) in children[level].iter().enumerate() {
                let ok = c == NO_CHILD
                    || (last && c == TERMINAL)
                    || (!last && c != TERMINAL && (c as usize) < next_count);
                if !ok {
                    return Err(MddError::InvalidChild {
                        level,
                        node: flat / size,
                        slot: flat % size,
                    });
                }
            }
        }
        let mut levels: Vec<MddLevel> = sizes
            .iter()
            .zip(children)
            .map(|(&size, row)| MddLevel {
                size,
                children: row.into(),
                offsets: Slab::new(),
                counts: Slab::new(),
            })
            .collect();
        let total = relabel(&mut levels);
        Ok(Mdd {
            sizes,
            levels,
            total,
        })
    }

    /// Raw child slot — `pub(crate)` workhorse of the set operations and
    /// quotienting.
    pub(crate) fn raw_child(&self, level: usize, node: u32, slot: usize) -> u32 {
        let lv = &self.levels[level];
        lv.children[node as usize * lv.size + slot]
    }

    /// The child of `node` at local state `local`: `None` if absent, the
    /// next-level node otherwise. At the last level a present child is
    /// reported as `None`ʼs complement via [`Mdd::is_present`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `local` are out of range, or if `node` is on the
    /// last level (use [`Mdd::is_present`]).
    pub fn child(&self, node: MddNodeId, local: usize) -> Option<MddNodeId> {
        assert!(
            (node.level as usize) < self.num_levels() - 1,
            "last level has no child nodes"
        );
        assert!(local < self.sizes[node.level as usize], "local state");
        let c = self.raw_child(node.level as usize, node.index, local);
        (c != NO_CHILD).then_some(MddNodeId {
            level: node.level + 1,
            index: c,
        })
    }

    /// `true` when `node` has an outgoing edge at `local` (on the last
    /// level this means the tuple ending here is in the set).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_present(&self, node: MddNodeId, local: usize) -> bool {
        assert!(local < self.sizes[node.level as usize], "local state");
        self.raw_child(node.level as usize, node.index, local) != NO_CHILD
    }

    /// Number of tuples below `node`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn count_below(&self, node: MddNodeId) -> u64 {
        self.levels[node.level as usize].counts[node.index as usize]
    }

    /// Offset labelling: number of tuples below `node` reached through
    /// local states `< local`. `index_of` is the sum of these along the
    /// accepting path.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn offset(&self, node: MddNodeId, local: usize) -> u64 {
        let lv = &self.levels[node.level as usize];
        assert!(local < lv.size, "local state");
        lv.offsets[node.index as usize * lv.size + local]
    }

    /// Membership test.
    ///
    /// # Errors
    ///
    /// Returns [`MddError::WrongArity`] or [`MddError::ValueOutOfRange`]
    /// for malformed tuples.
    pub fn try_contains(&self, tuple: &[u32]) -> Result<bool, MddError> {
        if tuple.len() != self.num_levels() {
            return Err(MddError::WrongArity {
                got: tuple.len(),
                expected: self.num_levels(),
            });
        }
        for (l, (&v, &size)) in tuple.iter().zip(&self.sizes).enumerate() {
            if v as usize >= size {
                return Err(MddError::ValueOutOfRange {
                    level: l,
                    value: v,
                    size,
                });
            }
        }
        let mut idx = 0u32;
        for (l, &v) in tuple.iter().enumerate() {
            let c = self.raw_child(l, idx, v as usize);
            if c == NO_CHILD {
                return Ok(false);
            }
            idx = c;
        }
        Ok(true)
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics on malformed tuples; see [`Mdd::try_contains`].
    pub fn contains(&self, tuple: &[u32]) -> bool {
        self.try_contains(tuple).expect("well-formed tuple")
    }

    /// The lexicographic rank of `tuple` within the encoded set, or `None`
    /// if the tuple is not in the set.
    ///
    /// # Panics
    ///
    /// Panics on malformed tuples.
    pub fn index_of(&self, tuple: &[u32]) -> Option<u64> {
        assert_eq!(tuple.len(), self.num_levels(), "tuple arity");
        let mut idx = 0u32;
        let mut offset = 0u64;
        for (l, &v) in tuple.iter().enumerate() {
            let lv = &self.levels[l];
            let flat = idx as usize * lv.size + v as usize;
            let c = lv.children[flat];
            if c == NO_CHILD {
                return None;
            }
            offset += lv.offsets[flat];
            idx = c;
        }
        Some(offset)
    }

    /// The tuple with lexicographic rank `index` (inverse of
    /// [`Mdd::index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    pub fn tuple_at(&self, mut index: u64) -> Vec<u32> {
        assert!(
            index < self.total,
            "index {index} out of range ({} tuples)",
            self.total
        );
        let mut tuple = Vec::with_capacity(self.num_levels());
        let mut idx = 0u32;
        for l in 0..self.num_levels() {
            let lv = &self.levels[l];
            let base = idx as usize * lv.size;
            // Find the local state whose child interval contains `index`.
            let mut chosen = None;
            for s in 0..self.sizes[l] {
                let c = lv.children[base + s];
                if c == NO_CHILD {
                    continue;
                }
                let below = if c == TERMINAL {
                    1
                } else {
                    self.levels[l + 1].counts[c as usize]
                };
                if index < lv.offsets[base + s] + below {
                    index -= lv.offsets[base + s];
                    chosen = Some((s as u32, c));
                    break;
                }
            }
            let (s, c) = chosen.expect("index within counted range");
            tuple.push(s);
            idx = if c == TERMINAL { 0 } else { c };
        }
        tuple
    }

    /// Visits every tuple in lexicographic order, passing `(tuple, rank)`.
    pub fn for_each_tuple<F: FnMut(&[u32], u64)>(&self, mut f: F) {
        let mut scratch = vec![0u32; self.num_levels()];
        let mut rank = 0u64;
        self.walk(0, 0, &mut scratch, &mut rank, &mut f);
    }

    fn walk<F: FnMut(&[u32], u64)>(
        &self,
        level: usize,
        node: u32,
        scratch: &mut Vec<u32>,
        rank: &mut u64,
        f: &mut F,
    ) {
        let last = level == self.num_levels() - 1;
        let lv = &self.levels[level];
        let base = node as usize * lv.size;
        for s in 0..self.sizes[level] {
            let c = lv.children[base + s];
            if c == NO_CHILD {
                continue;
            }
            scratch[level] = s as u32;
            if last {
                f(scratch, *rank);
                *rank += 1;
            } else {
                self.walk(level + 1, c, scratch, rank, f);
            }
        }
    }

    /// Collects all tuples (small sets / tests only).
    pub fn tuples(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.total as usize);
        self.for_each_tuple(|t, _| out.push(t.to_vec()));
        out
    }

    /// Approximate memory footprint in bytes: heap owned by this MDD.
    /// Mapped slabs count zero here — their pages are shared and accounted
    /// once at the store layer.
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.children.owned_bytes() + l.offsets.owned_bytes() + l.counts.owned_bytes())
            .sum()
    }

    /// `true` when any level borrows its slabs from a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.levels.iter().any(|l| l.children.is_mapped())
    }

    /// Serializes the MDD into arena image sections: tag
    /// [`TAG_SIZES`] holds the level sizes, level `l` owns tags
    /// `16 + 4l` (children, `u32`), `16 + 4l + 1` (offsets, `u64`) and
    /// `16 + 4l + 2` (counts, `u64`).
    pub fn write_image(&self, w: &mut ImageWriter) {
        let sizes: Vec<u64> = self.sizes.iter().map(|&s| s as u64).collect();
        w.put_u64(TAG_SIZES, &sizes);
        for (l, level) in self.levels.iter().enumerate() {
            let base = level_tag(l);
            w.put_u32(base, &level.children);
            w.put_u64(base + 1, &level.offsets);
            w.put_u64(base + 2, &level.counts);
        }
    }

    /// Rebuilds an MDD from arena image sections written by
    /// [`Mdd::write_image`]. With [`SlabSource::Mapped`] the level slabs
    /// borrow the mapped region zero-copy (falling back to copies on
    /// non-little-endian or misaligned layouts).
    ///
    /// Child references are re-validated by a linear scan (a corrupt slot
    /// would otherwise panic far from the cause); the count/offset
    /// labelling is trusted — the store checksums the payload before
    /// handing it here, and both labels are deterministic functions of the
    /// children the writer computed with the same code.
    ///
    /// # Errors
    ///
    /// [`MddError::Image`] on missing/mistyped sections or inconsistent
    /// section lengths; [`MddError::InvalidChild`] /
    /// [`MddError::InvalidShape`] as in [`Mdd::from_raw_levels`].
    pub fn read_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Mdd, MddError> {
        let img = |e: mdl_arena::ArenaError| MddError::Image(e.to_string());
        let sizes_u64 = view.vec_u64(TAG_SIZES).map_err(img)?;
        if sizes_u64.is_empty() || sizes_u64.iter().any(|&s| s == 0 || s > u32::MAX as u64) {
            return Err(MddError::InvalidShape);
        }
        let sizes: Vec<usize> = sizes_u64.iter().map(|&s| s as usize).collect();
        let num_levels = sizes.len();
        let mut levels = Vec::with_capacity(num_levels);
        for (l, &size) in sizes.iter().enumerate() {
            let base = level_tag(l);
            let children = view.slab_u32(base, source).map_err(img)?;
            let offsets = view.slab_u64(base + 1, source).map_err(img)?;
            let counts = view.slab_u64(base + 2, source).map_err(img)?;
            if children.len() % size != 0
                || offsets.len() != children.len()
                || counts.len() != children.len() / size
            {
                return Err(MddError::Image(format!(
                    "level {l}: slab lengths inconsistent ({} children, {} offsets, {} counts, size {size})",
                    children.len(),
                    offsets.len(),
                    counts.len()
                )));
            }
            if l == 0 && counts.len() != 1 {
                return Err(MddError::InvalidShape);
            }
            levels.push(MddLevel {
                size,
                children,
                offsets,
                counts,
            });
        }
        for level in 0..num_levels {
            let last = level == num_levels - 1;
            let size = sizes[level];
            let next_count = if last {
                0
            } else {
                levels[level + 1].num_nodes()
            };
            for (flat, &c) in levels[level].children.iter().enumerate() {
                let ok = c == NO_CHILD
                    || (last && c == TERMINAL)
                    || (!last && c != TERMINAL && (c as usize) < next_count);
                if !ok {
                    return Err(MddError::InvalidChild {
                        level,
                        node: flat / size,
                        slot: flat % size,
                    });
                }
            }
        }
        let total = levels[0].counts[0];
        Ok(Mdd {
            sizes,
            levels,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_product() -> Mdd {
        Mdd::from_tuples(
            vec![2, 2, 2],
            (0..8)
                .map(|i| vec![(i >> 2) & 1, (i >> 1) & 1, i & 1])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn full_product_is_one_node_per_level() {
        let m = cross_product();
        assert_eq!(m.count(), 8);
        assert_eq!(m.nodes_per_level(), vec![1, 1, 1]);
    }

    #[test]
    fn index_of_is_lexicographic_rank() {
        let m = cross_product();
        for i in 0..8u64 {
            let t = vec![((i >> 2) & 1) as u32, ((i >> 1) & 1) as u32, (i & 1) as u32];
            assert_eq!(m.index_of(&t), Some(i));
            assert_eq!(m.tuple_at(i), t);
        }
    }

    #[test]
    fn sparse_set_indexing_skips_absent() {
        let m = Mdd::from_tuples(vec![3, 3], vec![vec![0, 1], vec![2, 0], vec![2, 2]]).unwrap();
        assert_eq!(m.count(), 3);
        assert_eq!(m.index_of(&[0, 1]), Some(0));
        assert_eq!(m.index_of(&[2, 0]), Some(1));
        assert_eq!(m.index_of(&[2, 2]), Some(2));
        assert_eq!(m.index_of(&[1, 1]), None);
        assert_eq!(m.tuple_at(1), vec![2, 0]);
    }

    #[test]
    fn for_each_tuple_visits_in_order() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![1, 0], vec![0, 1]]).unwrap();
        let mut seen = Vec::new();
        m.for_each_tuple(|t, r| seen.push((t.to_vec(), r)));
        assert_eq!(seen, vec![(vec![0, 1], 0), (vec![1, 0], 1)]);
    }

    #[test]
    fn empty_set_supported() {
        let m = Mdd::from_tuples(vec![2, 2], vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert!(!m.contains(&[0, 0]));
        assert_eq!(m.index_of(&[1, 1]), None);
    }

    #[test]
    fn malformed_tuples_error() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0]]).unwrap();
        assert!(matches!(
            m.try_contains(&[0]),
            Err(MddError::WrongArity { .. })
        ));
        assert!(matches!(
            m.try_contains(&[0, 5]),
            Err(MddError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn sharing_collapses_identical_suffix_sets() {
        // Rows 0 and 1 admit the same column set {0, 2}: one shared node.
        let m = Mdd::from_tuples(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 2], vec![1, 0], vec![1, 2], vec![2, 1]],
        )
        .unwrap();
        assert_eq!(m.nodes_per_level(), vec![1, 2]);
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(cross_product().memory_bytes() > 0);
    }

    #[test]
    fn duplicates_collapse() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0], vec![0, 0]]).unwrap();
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn node_ref_exposes_slab_rows() {
        let m = Mdd::from_tuples(vec![3, 3], vec![vec![0, 1], vec![2, 0], vec![2, 2]]).unwrap();
        let root = m.node_ref(m.root());
        assert_eq!(root.id(), m.root());
        assert_eq!(root.count(), 3);
        assert_eq!(root.children().len(), 3);
        assert!(root.is_present(0) && !root.is_present(1) && root.is_present(2));
        assert_eq!(root.offsets(), &[0, 1, 1]);
    }

    #[test]
    fn image_round_trip_preserves_everything() {
        let m = Mdd::from_tuples(
            vec![3, 2, 4],
            (0..24u32)
                .filter(|i| i % 3 != 1)
                .map(|i| vec![i % 3, (i / 4) % 2, i % 4])
                .collect(),
        )
        .unwrap();
        let mut w = ImageWriter::new();
        m.write_image(&mut w);
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        let back = Mdd::read_image(&view, SlabSource::Copy).unwrap();
        assert_eq!(back.sizes(), m.sizes());
        assert_eq!(back.count(), m.count());
        assert_eq!(back.tuples(), m.tuples());
        for l in 0..m.num_levels() {
            assert_eq!(back.raw_level_children(l), m.raw_level_children(l));
            assert_eq!(&back.levels[l].offsets[..], &m.levels[l].offsets[..]);
            assert_eq!(&back.levels[l].counts[..], &m.levels[l].counts[..]);
        }
    }

    #[test]
    fn image_with_corrupt_child_is_rejected() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0], vec![1, 1]]).unwrap();
        let mut w = ImageWriter::new();
        m.write_image(&mut w);
        let payload = w.finish();
        // Rewrite the level-1 children section to hold a bogus index by
        // round-tripping through raw levels instead of poking bytes: poke
        // the payload where the first level-0 child lives is brittle, so
        // decode, corrupt, re-encode via from_raw_levels and expect the
        // validation path to fire there too.
        let view = ImageView::parse(&payload).unwrap();
        let ok = Mdd::read_image(&view, SlabSource::Copy).unwrap();
        let mut raw: Vec<Vec<u32>> = (0..ok.num_levels())
            .map(|l| ok.raw_level_children(l).to_vec())
            .collect();
        raw[0][0] = 7; // points past level 1's two nodes
        assert!(matches!(
            Mdd::from_raw_levels(vec![2, 2], raw),
            Err(MddError::InvalidChild {
                level: 0,
                node: 0,
                slot: 0
            })
        ));
    }
}
