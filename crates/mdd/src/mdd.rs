use std::fmt;

/// Sentinel: no child at this local state (the tuple set contains nothing
/// below this edge).
pub(crate) const NO_CHILD: u32 = u32::MAX;
/// Sentinel used at the last level: the edge terminates in the accepting
/// terminal (the tuple is in the set).
pub(crate) const TERMINAL: u32 = u32::MAX - 1;

/// Identifies a node of an [`Mdd`]: its level (0-based, `0` is the root
/// level) and its index within that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MddNodeId {
    /// 0-based level (paper levels are 1-based: paper level `i` is `i − 1`
    /// here).
    pub level: u32,
    /// Index of the node within its level.
    pub index: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// One slot per local state; `NO_CHILD`, `TERMINAL` (last level only)
    /// or the index of a node at the next level.
    pub(crate) children: Vec<u32>,
    /// Number of tuples encoded below this node.
    pub(crate) count: u64,
    /// `offsets[s]` = number of tuples below this node through local states
    /// `< s` — the indexing-function labelling.
    pub(crate) offsets: Vec<u64>,
}

/// Errors from MDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MddError {
    /// A tuple component was outside its level's local state space.
    ValueOutOfRange {
        /// Level of the offending component (0-based).
        level: usize,
        /// The component value.
        value: u32,
        /// The size of the level's local state space.
        size: usize,
    },
    /// A tuple had the wrong number of components.
    WrongArity {
        /// Number of components supplied.
        got: usize,
        /// Number of levels of the MDD.
        expected: usize,
    },
    /// `sizes` was empty or contained a zero.
    InvalidShape,
    /// A raw child slot held an invalid reference (see
    /// [`Mdd::from_raw_levels`]).
    InvalidChild {
        /// Level of the offending node (0-based).
        level: usize,
        /// Index of the node within its level.
        node: usize,
        /// Local-state slot within the node.
        slot: usize,
    },
}

impl fmt::Display for MddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MddError::ValueOutOfRange { level, value, size } => {
                write!(
                    f,
                    "component {value} at level {level} exceeds local space of size {size}"
                )
            }
            MddError::WrongArity { got, expected } => {
                write!(f, "tuple has {got} components, expected {expected}")
            }
            MddError::InvalidShape => write!(f, "sizes must be non-empty and positive"),
            MddError::InvalidChild { level, node, slot } => {
                write!(
                    f,
                    "node {node} at level {level} has an invalid child reference in slot {slot}"
                )
            }
        }
    }
}

impl std::error::Error for MddError {}

/// A quasi-reduced, hash-consed multi-valued decision diagram over
/// `S₁ × … × S_L`, with the offset labelling needed to index vectors over
/// the encoded set.
///
/// Immutable after construction; see the [crate-level docs](crate) and
/// [`Mdd::from_tuples`].
#[derive(Debug, Clone)]
pub struct Mdd {
    pub(crate) sizes: Vec<usize>,
    pub(crate) levels: Vec<Vec<Node>>,
    pub(crate) total: u64,
}

impl Mdd {
    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Local state-space sizes `|S₁|, …, |S_L|`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The root node (level 0, index 0).
    pub fn root(&self) -> MddNodeId {
        MddNodeId { level: 0, index: 0 }
    }

    /// Total number of tuples encoded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when the encoded set is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of nodes on each level.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Raw child tables, one flat row per level: node `i`'s slots occupy
    /// `[i * sizes[l], (i + 1) * sizes[l])`. Slots hold
    /// [`Mdd::RAW_NO_CHILD`], [`Mdd::RAW_TERMINAL`] (last level only) or a
    /// next-level node index. Counts and offsets are derived data and are
    /// not included; [`Mdd::from_raw_levels`] recomputes them.
    pub fn raw_children(&self) -> Vec<Vec<u32>> {
        self.levels
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .flat_map(|n| n.children.iter().copied())
                    .collect()
            })
            .collect()
    }

    /// Sentinel in [`Mdd::raw_children`]: the slot has no child.
    pub const RAW_NO_CHILD: u32 = NO_CHILD;
    /// Sentinel in [`Mdd::raw_children`]: the slot reaches the accepting
    /// terminal (valid at the last level only).
    pub const RAW_TERMINAL: u32 = TERMINAL;

    /// Rebuilds an MDD from [`Mdd::raw_children`] output, validating every
    /// reference and recomputing counts, offsets and the total — intended
    /// for format converters (deserialization); normal construction goes
    /// through [`Mdd::from_tuples`].
    ///
    /// # Errors
    ///
    /// * [`MddError::InvalidShape`] if `sizes` is empty/zero, level counts
    ///   mismatch, a level's row is not a multiple of its size, or the
    ///   root level does not hold exactly one node;
    /// * [`MddError::InvalidChild`] for a slot holding `RAW_TERMINAL` above
    ///   the last level or an out-of-range node index.
    pub fn from_raw_levels(sizes: Vec<usize>, children: Vec<Vec<u32>>) -> Result<Mdd, MddError> {
        if sizes.is_empty() || sizes.contains(&0) || sizes.len() != children.len() {
            return Err(MddError::InvalidShape);
        }
        let num_levels = sizes.len();
        let mut levels: Vec<Vec<Node>> = Vec::with_capacity(num_levels);
        for (level, row) in children.iter().enumerate() {
            let size = sizes[level];
            if row.len() % size != 0 {
                return Err(MddError::InvalidShape);
            }
            // Inner levels may be empty (the empty-set MDD keeps only its
            // root); the root level must hold exactly one node.
            if level == 0 && row.len() / size != 1 {
                return Err(MddError::InvalidShape);
            }
            levels.push(
                row.chunks(size)
                    .map(|slots| Node {
                        children: slots.to_vec(),
                        count: 0,
                        offsets: Vec::new(),
                    })
                    .collect(),
            );
        }
        for level in 0..num_levels {
            let last = level == num_levels - 1;
            let next_count = if last { 0 } else { levels[level + 1].len() };
            for (ni, node) in levels[level].iter().enumerate() {
                for (slot, &c) in node.children.iter().enumerate() {
                    let ok = c == NO_CHILD
                        || (last && c == TERMINAL)
                        || (!last && c != TERMINAL && (c as usize) < next_count);
                    if !ok {
                        return Err(MddError::InvalidChild {
                            level,
                            node: ni,
                            slot,
                        });
                    }
                }
            }
        }
        // Bottom-up count/offset labelling, mirroring the interner's
        // finish pass.
        for l in (0..num_levels).rev() {
            let (upper, lower) = levels.split_at_mut(l + 1);
            let nodes = &mut upper[l];
            let lower: Option<&[Node]> = lower.first().map(|v| v.as_slice());
            for node in nodes.iter_mut() {
                let mut acc = 0u64;
                node.offsets = Vec::with_capacity(node.children.len());
                for &c in &node.children {
                    node.offsets.push(acc);
                    if c == TERMINAL {
                        acc += 1;
                    } else if c != NO_CHILD {
                        acc += lower.expect("inner level has a lower level")[c as usize].count;
                    }
                }
                node.count = acc;
            }
        }
        let total = levels[0].first().map_or(0, |n| n.count);
        Ok(Mdd {
            sizes,
            levels,
            total,
        })
    }

    /// The child of `node` at local state `local`: `None` if absent, the
    /// next-level node otherwise. At the last level a present child is
    /// reported as `None`ʼs complement via [`Mdd::is_present`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `local` are out of range, or if `node` is on the
    /// last level (use [`Mdd::is_present`]).
    pub fn child(&self, node: MddNodeId, local: usize) -> Option<MddNodeId> {
        assert!(
            (node.level as usize) < self.num_levels() - 1,
            "last level has no child nodes"
        );
        let c = self.levels[node.level as usize][node.index as usize].children[local];
        (c != NO_CHILD).then_some(MddNodeId {
            level: node.level + 1,
            index: c,
        })
    }

    /// `true` when `node` has an outgoing edge at `local` (on the last
    /// level this means the tuple ending here is in the set).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_present(&self, node: MddNodeId, local: usize) -> bool {
        self.levels[node.level as usize][node.index as usize].children[local] != NO_CHILD
    }

    /// Number of tuples below `node`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn count_below(&self, node: MddNodeId) -> u64 {
        self.levels[node.level as usize][node.index as usize].count
    }

    /// Offset labelling: number of tuples below `node` reached through
    /// local states `< local`. `index_of` is the sum of these along the
    /// accepting path.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn offset(&self, node: MddNodeId, local: usize) -> u64 {
        self.levels[node.level as usize][node.index as usize].offsets[local]
    }

    /// Membership test.
    ///
    /// # Errors
    ///
    /// Returns [`MddError::WrongArity`] or [`MddError::ValueOutOfRange`]
    /// for malformed tuples.
    pub fn try_contains(&self, tuple: &[u32]) -> Result<bool, MddError> {
        if tuple.len() != self.num_levels() {
            return Err(MddError::WrongArity {
                got: tuple.len(),
                expected: self.num_levels(),
            });
        }
        for (l, (&v, &size)) in tuple.iter().zip(&self.sizes).enumerate() {
            if v as usize >= size {
                return Err(MddError::ValueOutOfRange {
                    level: l,
                    value: v,
                    size,
                });
            }
        }
        let mut idx = 0u32;
        for (l, &v) in tuple.iter().enumerate() {
            let c = self.levels[l][idx as usize].children[v as usize];
            if c == NO_CHILD {
                return Ok(false);
            }
            idx = c;
        }
        Ok(true)
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics on malformed tuples; see [`Mdd::try_contains`].
    pub fn contains(&self, tuple: &[u32]) -> bool {
        self.try_contains(tuple).expect("well-formed tuple")
    }

    /// The lexicographic rank of `tuple` within the encoded set, or `None`
    /// if the tuple is not in the set.
    ///
    /// # Panics
    ///
    /// Panics on malformed tuples.
    pub fn index_of(&self, tuple: &[u32]) -> Option<u64> {
        assert_eq!(tuple.len(), self.num_levels(), "tuple arity");
        let mut idx = 0u32;
        let mut offset = 0u64;
        for (l, &v) in tuple.iter().enumerate() {
            let node = &self.levels[l][idx as usize];
            let c = node.children[v as usize];
            if c == NO_CHILD {
                return None;
            }
            offset += node.offsets[v as usize];
            idx = c;
        }
        Some(offset)
    }

    /// The tuple with lexicographic rank `index` (inverse of
    /// [`Mdd::index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    pub fn tuple_at(&self, mut index: u64) -> Vec<u32> {
        assert!(
            index < self.total,
            "index {index} out of range ({} tuples)",
            self.total
        );
        let mut tuple = Vec::with_capacity(self.num_levels());
        let mut idx = 0u32;
        for l in 0..self.num_levels() {
            let node = &self.levels[l][idx as usize];
            // Find the local state whose child interval contains `index`.
            let mut chosen = None;
            for s in 0..self.sizes[l] {
                let c = node.children[s];
                if c == NO_CHILD {
                    continue;
                }
                let below = if c == TERMINAL {
                    1
                } else {
                    self.levels[l + 1][c as usize].count
                };
                if index < node.offsets[s] + below {
                    index -= node.offsets[s];
                    chosen = Some((s as u32, c));
                    break;
                }
            }
            let (s, c) = chosen.expect("index within counted range");
            tuple.push(s);
            idx = if c == TERMINAL { 0 } else { c };
        }
        tuple
    }

    /// Visits every tuple in lexicographic order, passing `(tuple, rank)`.
    pub fn for_each_tuple<F: FnMut(&[u32], u64)>(&self, mut f: F) {
        let mut scratch = vec![0u32; self.num_levels()];
        let mut rank = 0u64;
        self.walk(0, 0, &mut scratch, &mut rank, &mut f);
    }

    fn walk<F: FnMut(&[u32], u64)>(
        &self,
        level: usize,
        node: u32,
        scratch: &mut Vec<u32>,
        rank: &mut u64,
        f: &mut F,
    ) {
        let last = level == self.num_levels() - 1;
        for s in 0..self.sizes[level] {
            let c = self.levels[level][node as usize].children[s];
            if c == NO_CHILD {
                continue;
            }
            scratch[level] = s as u32;
            if last {
                f(scratch, *rank);
                *rank += 1;
            } else {
                self.walk(level + 1, c, scratch, rank, f);
            }
        }
    }

    /// Collects all tuples (small sets / tests only).
    pub fn tuples(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.total as usize);
        self.for_each_tuple(|t, _| out.push(t.to_vec()));
        out
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|n| n.children.len() * 4 + n.offsets.len() * 8 + 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_product() -> Mdd {
        Mdd::from_tuples(
            vec![2, 2, 2],
            (0..8)
                .map(|i| vec![(i >> 2) & 1, (i >> 1) & 1, i & 1])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn full_product_is_one_node_per_level() {
        let m = cross_product();
        assert_eq!(m.count(), 8);
        assert_eq!(m.nodes_per_level(), vec![1, 1, 1]);
    }

    #[test]
    fn index_of_is_lexicographic_rank() {
        let m = cross_product();
        for i in 0..8u64 {
            let t = vec![((i >> 2) & 1) as u32, ((i >> 1) & 1) as u32, (i & 1) as u32];
            assert_eq!(m.index_of(&t), Some(i));
            assert_eq!(m.tuple_at(i), t);
        }
    }

    #[test]
    fn sparse_set_indexing_skips_absent() {
        let m = Mdd::from_tuples(vec![3, 3], vec![vec![0, 1], vec![2, 0], vec![2, 2]]).unwrap();
        assert_eq!(m.count(), 3);
        assert_eq!(m.index_of(&[0, 1]), Some(0));
        assert_eq!(m.index_of(&[2, 0]), Some(1));
        assert_eq!(m.index_of(&[2, 2]), Some(2));
        assert_eq!(m.index_of(&[1, 1]), None);
        assert_eq!(m.tuple_at(1), vec![2, 0]);
    }

    #[test]
    fn for_each_tuple_visits_in_order() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![1, 0], vec![0, 1]]).unwrap();
        let mut seen = Vec::new();
        m.for_each_tuple(|t, r| seen.push((t.to_vec(), r)));
        assert_eq!(seen, vec![(vec![0, 1], 0), (vec![1, 0], 1)]);
    }

    #[test]
    fn empty_set_supported() {
        let m = Mdd::from_tuples(vec![2, 2], vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert!(!m.contains(&[0, 0]));
        assert_eq!(m.index_of(&[1, 1]), None);
    }

    #[test]
    fn malformed_tuples_error() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0]]).unwrap();
        assert!(matches!(
            m.try_contains(&[0]),
            Err(MddError::WrongArity { .. })
        ));
        assert!(matches!(
            m.try_contains(&[0, 5]),
            Err(MddError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn sharing_collapses_identical_suffix_sets() {
        // Rows 0 and 1 admit the same column set {0, 2}: one shared node.
        let m = Mdd::from_tuples(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 2], vec![1, 0], vec![1, 2], vec![2, 1]],
        )
        .unwrap();
        assert_eq!(m.nodes_per_level(), vec![1, 2]);
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(cross_product().memory_bytes() > 0);
    }

    #[test]
    fn duplicates_collapse() {
        let m = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0], vec![0, 0]]).unwrap();
        assert_eq!(m.count(), 1);
    }
}
