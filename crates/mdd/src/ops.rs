use std::collections::HashMap;

use crate::build::Interner;
use crate::mdd::{Mdd, MddError, NO_CHILD, TERMINAL};

/// Which binary set operation [`apply`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SetOp {
    Union,
    Intersection,
    Difference,
}

impl Mdd {
    /// Set union of two MDDs over the same local state spaces.
    ///
    /// # Errors
    ///
    /// [`MddError::InvalidShape`] if the shapes differ.
    pub fn union(&self, other: &Mdd) -> Result<Mdd, MddError> {
        apply(self, other, SetOp::Union)
    }

    /// Set intersection of two MDDs over the same local state spaces.
    ///
    /// # Errors
    ///
    /// [`MddError::InvalidShape`] if the shapes differ.
    pub fn intersection(&self, other: &Mdd) -> Result<Mdd, MddError> {
        apply(self, other, SetOp::Intersection)
    }

    /// Set difference `self \ other` of two MDDs over the same local state
    /// spaces.
    ///
    /// # Errors
    ///
    /// [`MddError::InvalidShape`] if the shapes differ.
    pub fn difference(&self, other: &Mdd) -> Result<Mdd, MddError> {
        apply(self, other, SetOp::Difference)
    }

    /// `true` when every tuple of `self` is in `other`.
    ///
    /// # Errors
    ///
    /// [`MddError::InvalidShape`] if the shapes differ.
    pub fn is_subset_of(&self, other: &Mdd) -> Result<bool, MddError> {
        Ok(self.intersection(other)?.count() == self.count())
    }
}

/// Structural recursion with memoization on `(left node, right node)`
/// pairs; either side may be absent (the empty suffix set).
fn apply(a: &Mdd, b: &Mdd, op: SetOp) -> Result<Mdd, MddError> {
    if a.sizes != b.sizes {
        return Err(MddError::InvalidShape);
    }
    let mut ctx = ApplyCtx {
        interner: Interner::new(a.sizes.clone()),
        memo: vec![HashMap::new(); a.sizes.len()],
        hits: mdl_obs::counter("mdd.apply.hit"),
        misses: mdl_obs::counter("mdd.apply.miss"),
    };
    let ra = (!a.is_empty()).then_some(0u32);
    let rb = (!b.is_empty()).then_some(0u32);
    let root = rec(a, b, op, 0, ra, rb, &mut ctx);
    let ApplyCtx { mut interner, .. } = ctx;
    let root = match root {
        Some(r) => r,
        None => {
            let empty = vec![NO_CHILD; a.sizes[0]];
            interner.intern(0, empty)
        }
    };
    Ok(interner.finish(root))
}

/// Per-level apply cache: `(left node, right node)` pair (either side
/// possibly absent) to the interned result, `NO_CHILD` for "empty".
type ApplyMemo = HashMap<(Option<u32>, Option<u32>), u32>;

/// Shared recursion state of [`apply`]: the hash-consing interner, the
/// per-level apply cache, and its hit/miss counters.
struct ApplyCtx {
    interner: Interner,
    memo: Vec<ApplyMemo>,
    hits: mdl_obs::Counter,
    misses: mdl_obs::Counter,
}

fn rec(
    a: &Mdd,
    b: &Mdd,
    op: SetOp,
    level: usize,
    na: Option<u32>,
    nb: Option<u32>,
    ctx: &mut ApplyCtx,
) -> Option<u32> {
    // Short-circuits: an absent side is the empty set of suffixes.
    match (na, nb, op) {
        (None, None, _) => return None,
        (None, _, SetOp::Intersection | SetOp::Difference) => return None,
        (_, None, SetOp::Intersection) => return None,
        _ => {}
    }
    if let Some(&idx) = ctx.memo[level].get(&(na, nb)) {
        ctx.hits.inc();
        return (idx != NO_CHILD).then_some(idx);
    }
    ctx.misses.inc();

    let size = a.sizes[level];
    let last = level == a.sizes.len() - 1;
    let mut children = vec![NO_CHILD; size];
    let mut any = false;
    for (s, child) in children.iter_mut().enumerate() {
        let ca = na.map(|n| a.raw_child(level, n, s)).unwrap_or(NO_CHILD);
        let cb = nb.map(|n| b.raw_child(level, n, s)).unwrap_or(NO_CHILD);
        let c = if last {
            let pa = ca != NO_CHILD;
            let pb = cb != NO_CHILD;
            let present = match op {
                SetOp::Union => pa || pb,
                SetOp::Intersection => pa && pb,
                SetOp::Difference => pa && !pb,
            };
            if present {
                TERMINAL
            } else {
                NO_CHILD
            }
        } else {
            let oa = (ca != NO_CHILD).then_some(ca);
            let ob = (cb != NO_CHILD).then_some(cb);
            rec(a, b, op, level + 1, oa, ob, ctx).unwrap_or(NO_CHILD)
        };
        if c != NO_CHILD {
            any = true;
        }
        *child = c;
    }

    let result = if any {
        Some(ctx.interner.intern(level, children))
    } else {
        None
    };
    ctx.memo[level].insert((na, nb), result.unwrap_or(NO_CHILD));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tuples: Vec<Vec<u32>>) -> Mdd {
        Mdd::from_tuples(vec![3, 3], tuples).unwrap()
    }

    #[test]
    fn union_matches_set_semantics() {
        let a = set(vec![vec![0, 0], vec![1, 1]]);
        let b = set(vec![vec![1, 1], vec![2, 2]]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.tuples(), vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
    }

    #[test]
    fn intersection_matches_set_semantics() {
        let a = set(vec![vec![0, 0], vec![1, 1], vec![2, 0]]);
        let b = set(vec![vec![1, 1], vec![2, 2], vec![2, 0]]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.tuples(), vec![vec![1, 1], vec![2, 0]]);
    }

    #[test]
    fn difference_matches_set_semantics() {
        let a = set(vec![vec![0, 0], vec![1, 1]]);
        let b = set(vec![vec![1, 1]]);
        let d = a.difference(&b).unwrap();
        assert_eq!(d.tuples(), vec![vec![0, 0]]);
    }

    #[test]
    fn operations_with_empty() {
        let a = set(vec![vec![0, 1]]);
        let e = set(vec![]);
        assert_eq!(a.union(&e).unwrap().tuples(), a.tuples());
        assert!(a.intersection(&e).unwrap().is_empty());
        assert_eq!(a.difference(&e).unwrap().tuples(), a.tuples());
        assert!(e.difference(&a).unwrap().is_empty());
    }

    #[test]
    fn subset_relation() {
        let a = set(vec![vec![0, 0]]);
        let b = set(vec![vec![0, 0], vec![1, 1]]);
        assert!(a.is_subset_of(&b).unwrap());
        assert!(!b.is_subset_of(&a).unwrap());
        assert!(a.is_subset_of(&a).unwrap());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = set(vec![vec![0, 0]]);
        let b = Mdd::from_tuples(vec![2, 2], vec![vec![0, 0]]).unwrap();
        assert!(matches!(a.union(&b), Err(MddError::InvalidShape)));
    }

    #[test]
    fn union_result_is_reduced() {
        // Union of two sets whose rows end up with identical column sets
        // must share suffix nodes.
        let a = set(vec![vec![0, 0], vec![0, 1]]);
        let b = set(vec![vec![1, 0], vec![1, 1]]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.nodes_per_level(), vec![1, 1]);
    }
}
