//! Hash-consed multi-valued decision diagrams (MDDs).
//!
//! An MDD encodes a set of tuples `(s₁, …, s_L)` with `s_i ∈ {0, …, |S_i|−1}`
//! as a leveled DAG with shared subgraphs — the data structure symbolic
//! state-space generators produce for the *reachable* states of a
//! compositional Markov model. In this reproduction it plays the role of
//! Möbius's symbolic state space:
//!
//! * matrix-diagram × vector products (`mdl-md`) index iteration vectors
//!   over reachable states only, via the **offset labelling** every [`Mdd`]
//!   carries (the classical "indexing function" of Ciardo & Miner);
//! * the compositional lumping algorithm (`mdl-core`) quotients the MDD
//!   alongside the matrix diagram, so the lumped chain again has an
//!   MDD-indexed state space.
//!
//! MDDs here are immutable after construction and quasi-reduced (no two
//! equal nodes on a level), maintained by hash-consing during the
//! bottom-up build.
//!
//! # Example
//!
//! ```
//! use mdl_mdd::Mdd;
//!
//! // Tuples over S₁ × S₂ with |S₁| = 2, |S₂| = 3.
//! let mdd = Mdd::from_tuples(vec![2, 3], vec![
//!     vec![0, 0], vec![0, 2], vec![1, 0], vec![1, 2],
//! ]).unwrap();
//! assert_eq!(mdd.count(), 4);
//! assert!(mdd.contains(&[0, 2]));
//! assert!(!mdd.contains(&[1, 1]));
//! // Lexicographic indexing of reachable tuples:
//! assert_eq!(mdd.index_of(&[1, 0]), Some(2));
//! assert_eq!(mdd.tuple_at(3), vec![1, 2]);
//! // The two identical rows share one node at level 2:
//! assert_eq!(mdd.nodes_per_level(), vec![1, 1]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod mdd;
mod ops;
mod quotient;

pub use mdd::{Mdd, MddError, MddNodeId, MddNodeRef};
pub use quotient::QuotientError;
