use std::collections::HashMap;
use std::fmt;

use mdl_partition::Partition;

use crate::build::Interner;
use crate::mdd::{Mdd, NO_CHILD, TERMINAL};

/// Errors from quotienting an MDD by per-level partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuotientError {
    /// Wrong number of partitions or a partition covering the wrong number
    /// of local states.
    ShapeMismatch {
        /// The offending level (0-based), or `usize::MAX` when the number
        /// of partitions itself is wrong.
        level: usize,
    },
    /// Two states in one class of the partition have different children in
    /// some node — the quotient set would not be well-defined.
    Incompatible {
        /// Level of the offending node.
        level: usize,
        /// Index of the offending node within the level.
        node: usize,
        /// Class whose members disagree.
        class: usize,
    },
}

impl fmt::Display for QuotientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotientError::ShapeMismatch { level } => {
                write!(f, "partition shape mismatch at level {level}")
            }
            QuotientError::Incompatible { level, node, class } => write!(
                f,
                "partition class {class} has members with different children in node {node} at level {level}"
            ),
        }
    }
}

impl std::error::Error for QuotientError {}

impl Mdd {
    /// `true` when, in every node at `level`, all members of each class of
    /// `partition` have identical children (the condition under which the
    /// quotient MDD represents exactly the quotient of the encoded set).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or the partition covers the wrong
    /// number of local states.
    pub fn is_partition_compatible(&self, level: usize, partition: &Partition) -> bool {
        assert_eq!(partition.num_states(), self.sizes[level]);
        let lv = &self.levels[level];
        (0..lv.num_nodes()).all(|node| {
            let row = lv.children_of(node);
            partition.iter().all(|(_, members)| {
                let rep = row[members[0]];
                members.iter().all(|&s| row[s] == rep)
            })
        })
    }

    /// The coarsest partition of level `level`'s local states such that
    /// equivalent states have identical children in **every** node of the
    /// level.
    ///
    /// This is the structural compatibility constraint the compositional
    /// lumping algorithm intersects into its initial partitions (see
    /// `DESIGN.md` §4.2): it guarantees the reachable state space itself is
    /// closed under the local equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn compatibility_partition(&self, level: usize) -> Partition {
        let size = self.sizes[level];
        let lv = &self.levels[level];
        Partition::from_key_fn(size, |s| {
            (0..lv.num_nodes())
                .map(|n| lv.children_of(n)[s])
                .collect::<Vec<u32>>()
        })
    }

    /// Quotients the MDD by per-level partitions: level `l`'s local state
    /// space becomes the classes of `partitions[l]`, and the encoded set
    /// becomes the set of class-tuples of encoded tuples.
    ///
    /// # Errors
    ///
    /// * [`QuotientError::ShapeMismatch`] on arity or size mismatches;
    /// * [`QuotientError::Incompatible`] when a class's members disagree on
    ///   children in some node (checked exhaustively before building).
    pub fn quotient(&self, partitions: &[Partition]) -> Result<Mdd, QuotientError> {
        if partitions.len() != self.num_levels() {
            return Err(QuotientError::ShapeMismatch { level: usize::MAX });
        }
        for (l, p) in partitions.iter().enumerate() {
            if p.num_states() != self.sizes[l] {
                return Err(QuotientError::ShapeMismatch { level: l });
            }
        }
        // Exhaustive compatibility check with precise error reporting.
        for (l, p) in partitions.iter().enumerate() {
            let lv = &self.levels[l];
            for ni in 0..lv.num_nodes() {
                let row = lv.children_of(ni);
                for (c, members) in p.iter() {
                    let rep = row[members[0]];
                    if members.iter().any(|&s| row[s] != rep) {
                        return Err(QuotientError::Incompatible {
                            level: l,
                            node: ni,
                            class: c,
                        });
                    }
                }
            }
        }

        let new_sizes: Vec<usize> = partitions.iter().map(Partition::num_classes).collect();
        let mut interner = Interner::new(new_sizes);
        let mut memo: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.num_levels()];
        let root = self.quotient_rec(0, 0, partitions, &mut interner, &mut memo);
        Ok(interner.finish(root))
    }

    fn quotient_rec(
        &self,
        level: usize,
        node: u32,
        partitions: &[Partition],
        interner: &mut Interner,
        memo: &mut [HashMap<u32, u32>],
    ) -> u32 {
        if let Some(&idx) = memo[level].get(&node) {
            return idx;
        }
        let p = &partitions[level];
        let last = level == self.num_levels() - 1;
        let mut children = vec![NO_CHILD; p.num_classes()];
        for (c, members) in p.iter() {
            let old = self.raw_child(level, node, members[0]);
            children[c] = if old == NO_CHILD {
                NO_CHILD
            } else if last {
                debug_assert_eq!(old, TERMINAL);
                TERMINAL
            } else {
                self.quotient_rec(level + 1, old, partitions, interner, memo)
            };
        }
        let idx = interner.intern(level, children);
        memo[level].insert(node, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_symmetric() -> Mdd {
        // Level-1 states 0 and 1 are interchangeable (same column sets).
        Mdd::from_tuples(
            vec![3, 2],
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1], vec![2, 0]],
        )
        .unwrap()
    }

    #[test]
    fn compatibility_partition_finds_symmetry() {
        let m = pair_symmetric();
        let p = m.compatibility_partition(0);
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1));
        assert!(!p.same_class(0, 2));
        assert!(m.is_partition_compatible(0, &p));
    }

    #[test]
    fn quotient_merges_classes() {
        let m = pair_symmetric();
        let p0 = m.compatibility_partition(0);
        let p1 = Partition::discrete(2);
        let q = m.quotient(&[p0, p1]).unwrap();
        assert_eq!(q.sizes(), &[2, 2]);
        // Class {0,1} keeps both columns; class {2} keeps column 0.
        assert_eq!(q.tuples(), vec![vec![0, 0], vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn incompatible_partition_rejected() {
        let m = pair_symmetric();
        let bad = Partition::from_classes(vec![vec![0, 2], vec![1]]);
        let err = m.quotient(&[bad, Partition::discrete(2)]).unwrap_err();
        assert!(matches!(err, QuotientError::Incompatible { level: 0, .. }));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = pair_symmetric();
        let err = m.quotient(&[Partition::discrete(3)]).unwrap_err();
        assert!(matches!(err, QuotientError::ShapeMismatch { .. }));
        let err = m
            .quotient(&[Partition::discrete(4), Partition::discrete(2)])
            .unwrap_err();
        assert!(matches!(err, QuotientError::ShapeMismatch { level: 0 }));
    }

    #[test]
    fn discrete_quotient_is_identity() {
        let m = pair_symmetric();
        let q = m
            .quotient(&[Partition::discrete(3), Partition::discrete(2)])
            .unwrap();
        assert_eq!(q.tuples(), m.tuples());
        assert_eq!(q.count(), m.count());
    }

    #[test]
    fn quotient_count_counts_classes_not_states() {
        let m = pair_symmetric();
        let p0 = m.compatibility_partition(0);
        let q = m.quotient(&[p0, Partition::discrete(2)]).unwrap();
        assert_eq!(q.count(), 3); // {0,1}×{0,1} collapses to 2 + {2}×{0}
    }

    #[test]
    fn last_level_quotient() {
        // Symmetric at the last level: columns 0 and 1 appear together
        // everywhere.
        let m = Mdd::from_tuples(
            vec![2, 2],
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
        )
        .unwrap();
        let p1 = m.compatibility_partition(1);
        assert_eq!(p1.num_classes(), 1);
        let q = m.quotient(&[Partition::discrete(2), p1]).unwrap();
        assert_eq!(q.count(), 2);
    }
}
