//! Property-based tests for the MDD substrate: all operations must match
//! their naïve set semantics.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mdl_arena::{ImageView, ImageWriter, SlabSource};
use mdl_mdd::Mdd;
use mdl_partition::Partition;

const SIZES: [usize; 3] = [3, 4, 2];

fn tuples() -> impl Strategy<Value = Vec<Vec<u32>>> {
    let one = (0..SIZES[0] as u32, 0..SIZES[1] as u32, 0..SIZES[2] as u32)
        .prop_map(|(a, b, c)| vec![a, b, c]);
    prop::collection::vec(one, 0..30)
}

fn as_set(v: &[Vec<u32>]) -> BTreeSet<Vec<u32>> {
    v.iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn round_trip_preserves_set(ts in tuples()) {
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts.clone()).unwrap();
        prop_assert_eq!(as_set(&mdd.tuples()), as_set(&ts));
        prop_assert_eq!(mdd.count() as usize, as_set(&ts).len());
    }

    #[test]
    fn indexing_is_a_bijection(ts in tuples()) {
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts).unwrap();
        let mut seen = BTreeSet::new();
        mdd.for_each_tuple(|t, rank| {
            assert_eq!(mdd.index_of(t), Some(rank));
            assert_eq!(mdd.tuple_at(rank), t.to_vec());
            seen.insert(rank);
        });
        prop_assert_eq!(seen.len() as u64, mdd.count());
    }

    #[test]
    fn union_matches_set_union(a in tuples(), b in tuples()) {
        let ma = Mdd::from_tuples(SIZES.to_vec(), a.clone()).unwrap();
        let mb = Mdd::from_tuples(SIZES.to_vec(), b.clone()).unwrap();
        let expected: BTreeSet<_> = as_set(&a).union(&as_set(&b)).cloned().collect();
        prop_assert_eq!(as_set(&ma.union(&mb).unwrap().tuples()), expected);
    }

    #[test]
    fn intersection_matches_set_intersection(a in tuples(), b in tuples()) {
        let ma = Mdd::from_tuples(SIZES.to_vec(), a.clone()).unwrap();
        let mb = Mdd::from_tuples(SIZES.to_vec(), b.clone()).unwrap();
        let expected: BTreeSet<_> =
            as_set(&a).intersection(&as_set(&b)).cloned().collect();
        prop_assert_eq!(as_set(&ma.intersection(&mb).unwrap().tuples()), expected);
    }

    #[test]
    fn difference_matches_set_difference(a in tuples(), b in tuples()) {
        let ma = Mdd::from_tuples(SIZES.to_vec(), a.clone()).unwrap();
        let mb = Mdd::from_tuples(SIZES.to_vec(), b.clone()).unwrap();
        let expected: BTreeSet<_> =
            as_set(&a).difference(&as_set(&b)).cloned().collect();
        prop_assert_eq!(as_set(&ma.difference(&mb).unwrap().tuples()), expected);
    }

    #[test]
    fn de_morgan_for_sets(a in tuples(), b in tuples()) {
        // (A ∪ B) \ (A ∩ B) == symmetric difference, computed two ways.
        let ma = Mdd::from_tuples(SIZES.to_vec(), a).unwrap();
        let mb = Mdd::from_tuples(SIZES.to_vec(), b).unwrap();
        let sym1 = ma.union(&mb).unwrap().difference(&ma.intersection(&mb).unwrap()).unwrap();
        let sym2 = ma
            .difference(&mb)
            .unwrap()
            .union(&mb.difference(&ma).unwrap())
            .unwrap();
        prop_assert_eq!(sym1.tuples(), sym2.tuples());
    }

    #[test]
    fn compatibility_partition_is_always_compatible(ts in tuples()) {
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts).unwrap();
        for level in 0..3 {
            let p = mdd.compatibility_partition(level);
            prop_assert!(mdd.is_partition_compatible(level, &p));
        }
    }

    #[test]
    fn quotient_by_compatible_partitions_counts_class_tuples(ts in tuples()) {
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts.clone()).unwrap();
        let partitions: Vec<Partition> =
            (0..3).map(|l| mdd.compatibility_partition(l)).collect();
        let q = mdd.quotient(&partitions).unwrap();
        // The quotient's tuples are exactly the class-images of the
        // original tuples.
        let expected: BTreeSet<Vec<u32>> = as_set(&ts)
            .iter()
            .map(|t| {
                t.iter()
                    .enumerate()
                    .map(|(l, &s)| partitions[l].class_of(s as usize) as u32)
                    .collect()
            })
            .collect();
        prop_assert_eq!(as_set(&q.tuples()), expected);
    }

    /// The arena image round trip is the identity on the MDD: same
    /// canonical child slabs level for level, same indexed set.
    #[test]
    fn image_round_trip_is_identity(ts in tuples()) {
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts).unwrap();
        let mut w = ImageWriter::new();
        mdd.write_image(&mut w);
        let payload = w.finish();
        let view = ImageView::parse(&payload).expect("image parses");
        let back = Mdd::read_image(&view, SlabSource::Copy).expect("image reads");
        prop_assert_eq!(back.sizes(), mdd.sizes());
        prop_assert_eq!(back.count(), mdd.count());
        for level in 0..mdd.num_levels() {
            prop_assert_eq!(back.raw_level_children(level), mdd.raw_level_children(level));
        }
        prop_assert_eq!(back.tuples(), mdd.tuples());
    }

    #[test]
    fn node_sharing_never_exceeds_distinct_suffix_sets(ts in tuples()) {
        // Quasi-reduction bound: level-l node count ≤ number of distinct
        // suffix sets at that level.
        let mdd = Mdd::from_tuples(SIZES.to_vec(), ts.clone()).unwrap();
        let set = as_set(&ts);
        for level in 1..3 {
            let mut suffix_sets: BTreeSet<BTreeSet<Vec<u32>>> = BTreeSet::new();
            let mut prefixes: BTreeSet<Vec<u32>> = BTreeSet::new();
            for t in &set {
                prefixes.insert(t[..level].to_vec());
            }
            for p in prefixes {
                let suffixes: BTreeSet<Vec<u32>> = set
                    .iter()
                    .filter(|t| t[..level] == p[..])
                    .map(|t| t[level..].to_vec())
                    .collect();
                suffix_sets.insert(suffixes);
            }
            prop_assert!(mdd.nodes_per_level()[level] <= suffix_sets.len().max(1));
        }
    }
}
