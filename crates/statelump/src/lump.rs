use mdl_ctmc::Mrp;
use mdl_linalg::{CooMatrix, CsrMatrix, Tolerance};
use mdl_obs::ThreadPool;
use mdl_partition::{comp_lumping, Partition};

use crate::splitters::{ExactFlatSplitter, OrdinaryFlatSplitter};

/// Options controlling flat lumping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LumpOptions {
    /// How rate sums are compared (see [`Tolerance`]).
    pub tolerance: Tolerance,
    /// Worker threads for splitter-key evaluation (`1` = serial, `0` =
    /// one per hardware thread). The partition is bit-identical for any
    /// count — block ownership keeps every rate sum in serial addition
    /// order (DESIGN.md §12).
    pub threads: usize,
}

impl Default for LumpOptions {
    fn default() -> Self {
        LumpOptions {
            tolerance: Tolerance::default(),
            threads: 1,
        }
    }
}

/// Result of lumping a flat CTMC: the quotient matrix, vectors, and the
/// partition that produced them.
#[derive(Debug, Clone)]
pub struct Lumped {
    /// Quotient state-transition rate matrix `R̂` (Theorem 2).
    pub rates: CsrMatrix,
    /// Quotient reward vector `r̂(ĩ) = r(C_ĩ)/|C_ĩ|`.
    pub reward: Vec<f64>,
    /// Quotient initial distribution `π̂(ĩ) = π_ini(C_ĩ)`.
    pub initial: Vec<f64>,
    /// The lumping partition (classes are the lumped states, in order).
    pub partition: Partition,
}

/// Computes the coarsest **ordinarily** lumpable partition of `(R, r)`:
/// the optimal partition such that `R(s, C′)` and `r(s)` are constant on
/// every class (Theorem 1a).
///
/// # Panics
///
/// Panics if `reward` does not have one entry per state.
pub fn ordinary_partition(rates: &CsrMatrix, reward: &[f64], options: &LumpOptions) -> Partition {
    let n = rates.nrows();
    assert_eq!(reward.len(), n, "reward must have one entry per state");
    let tol = options.tolerance;
    let initial = Partition::from_key_fn(n, |s| tol.key(reward[s]));
    let mut splitter =
        OrdinaryFlatSplitter::with_pool(rates, tol, ThreadPool::new(options.threads));
    refine_instrumented("ordinary", n, initial, &mut splitter)
}

/// Runs [`comp_lumping`] inside a `statelump.partition` span, feeding the
/// flat-refinement counters from the returned [`RefinementStats`].
fn refine_instrumented<S: mdl_partition::Splitter>(
    kind: &'static str,
    n: usize,
    initial: Partition,
    splitter: &mut S,
) -> Partition {
    let mut span = mdl_obs::span("statelump.partition")
        .with("kind", kind)
        .with("n", n as u64);
    let result = comp_lumping(initial, splitter);
    mdl_obs::counter("statelump.refine.splitters").add(result.stats.splitters_processed as u64);
    mdl_obs::counter("statelump.refine.splits").add(result.stats.classes_split as u64);
    mdl_obs::counter("statelump.refine.keys").add(result.stats.keys_emitted as u64);
    span.record("classes", result.partition.num_classes() as u64);
    span.record("splitters", result.stats.splitters_processed as u64);
    span.record("splits", result.stats.classes_split as u64);
    span.record("keys", result.stats.keys_emitted as u64);
    span.finish();
    result.partition
}

/// Computes the coarsest **exactly** lumpable partition of `(R, π_ini)`:
/// the optimal partition such that `R(C′, s)`, `R(s, S)` and `π_ini(s)` are
/// constant on every class (Theorem 1b).
///
/// # Panics
///
/// Panics if `initial` does not have one entry per state.
pub fn exact_partition(rates: &CsrMatrix, initial: &[f64], options: &LumpOptions) -> Partition {
    let n = rates.nrows();
    assert_eq!(initial.len(), n, "initial must have one entry per state");
    let tol = options.tolerance;
    let row_sums = rates.row_sums_vec();
    // P_ini: equal initial probability AND equal total exit rate R(s, S).
    let init = Partition::from_key_fn(n, |s| (tol.key(initial[s]), tol.key(row_sums[s])));
    let mut splitter = ExactFlatSplitter::with_pool(rates, tol, ThreadPool::new(options.threads));
    refine_instrumented("exact", n, init, &mut splitter)
}

/// Builds the quotient rate matrix of Theorem 2 for an **ordinary**
/// lumping: `R̂(ĩ, j̃) = R(s, C_j̃)` for an arbitrary `s ∈ C_ĩ`.
fn quotient_ordinary(rates: &CsrMatrix, partition: &Partition) -> CsrMatrix {
    let k = partition.num_classes();
    let mut coo = CooMatrix::new(k, k);
    for (ci, members) in partition.iter() {
        let rep = members[0];
        let mut sums = vec![0.0; k];
        for (t, v) in rates.row(rep) {
            sums[partition.class_of(t)] += v;
        }
        for (cj, &v) in sums.iter().enumerate() {
            if v != 0.0 {
                coo.push(ci, cj, v);
            }
        }
    }
    coo.to_csr()
}

/// Builds the quotient rate matrix of Theorem 2 for an **exact** lumping:
/// `R̂(ĩ, j̃) = R(C_ĩ, s)` for an arbitrary `s ∈ C_j̃`.
fn quotient_exact(rates: &CsrMatrix, partition: &Partition) -> CsrMatrix {
    let k = partition.num_classes();
    // Column sums into representatives: walk all rows once.
    let mut coo = CooMatrix::new(k, k);
    let mut reps = vec![usize::MAX; rates.nrows()];
    for (cj, members) in partition.iter() {
        reps[members[0]] = cj; // mark representatives with their class
    }
    let mut sums = vec![vec![0.0; k]; k];
    for s in 0..rates.nrows() {
        let ci = partition.class_of(s);
        for (t, v) in rates.row(s) {
            if reps[t] != usize::MAX {
                sums[ci][reps[t]] += v;
            }
        }
    }
    for (ci, row) in sums.iter().enumerate() {
        for (cj, &v) in row.iter().enumerate() {
            if v != 0.0 {
                coo.push(ci, cj, v);
            }
        }
    }
    coo.to_csr()
}

fn quotient_vectors(
    reward: &[f64],
    initial: &[f64],
    partition: &Partition,
) -> (Vec<f64>, Vec<f64>) {
    let k = partition.num_classes();
    let mut r = vec![0.0; k];
    let mut p = vec![0.0; k];
    for (c, members) in partition.iter() {
        r[c] = members.iter().map(|&s| reward[s]).sum::<f64>() / members.len() as f64;
        p[c] = members.iter().map(|&s| initial[s]).sum();
    }
    (r, p)
}

/// Optimal ordinary lumping of `(R, r)`: computes the coarsest partition
/// and the Theorem-2 quotient.
///
/// The quotient's `initial` is the class-summed `π_ini` when one is
/// supplied via [`lump_mrp_ordinary`]; this entry point leaves it uniform
/// over classes (callers that don't care about transient analysis).
///
/// # Panics
///
/// Panics if `reward` does not have one entry per state.
pub fn ordinary_lump(rates: &CsrMatrix, reward: &[f64], options: &LumpOptions) -> Lumped {
    let partition = ordinary_partition(rates, reward, options);
    let k = partition.num_classes();
    let lumped_rates = quotient_ordinary(rates, &partition);
    let uniform = vec![1.0 / rates.nrows() as f64; rates.nrows()];
    let (lumped_reward, lumped_initial) = quotient_vectors(reward, &uniform, &partition);
    debug_assert_eq!(lumped_rates.nrows(), k);
    Lumped {
        rates: lumped_rates,
        reward: lumped_reward,
        initial: lumped_initial,
        partition,
    }
}

/// Optimal exact lumping of `(R, π_ini)`: computes the coarsest partition
/// and the Theorem-2 quotient. The quotient reward is the class average of
/// `reward`.
///
/// # Panics
///
/// Panics if `reward` or `initial` do not have one entry per state.
pub fn exact_lump(
    rates: &CsrMatrix,
    reward: &[f64],
    initial: &[f64],
    options: &LumpOptions,
) -> Lumped {
    let partition = exact_partition(rates, initial, options);
    let lumped_rates = quotient_exact(rates, &partition);
    let (lumped_reward, lumped_initial) = quotient_vectors(reward, initial, &partition);
    Lumped {
        rates: lumped_rates,
        reward: lumped_reward,
        initial: lumped_initial,
        partition,
    }
}

/// Lumps a complete MRP ordinarily: partition from `(R, r)`, quotient per
/// Theorem 2 including `π̂(ĩ) = π_ini(C_ĩ)`.
///
/// # Errors
///
/// Propagates [`mdl_ctmc::CtmcError`] if the quotient vectors fail MRP
/// validation (cannot happen for a valid input MRP; kept for API honesty).
pub fn lump_mrp_ordinary(
    mrp: &Mrp<CsrMatrix>,
    options: &LumpOptions,
) -> mdl_ctmc::Result<(Mrp<CsrMatrix>, Partition)> {
    let partition = ordinary_partition(mrp.rates(), mrp.reward(), options);
    let rates = quotient_ordinary(mrp.rates(), &partition);
    let (reward, initial) = quotient_vectors(mrp.reward(), mrp.initial(), &partition);
    Ok((Mrp::new(rates, reward, initial)?, partition))
}

/// Lumps a complete MRP exactly: partition from `(R, π_ini)`, Theorem-2
/// quotient, plus the representatives' exit rates — which the caller must
/// pass to the `*_with_exit_rates` solver variants, because the exact
/// quotient's diagonal is not recoverable from its own row sums (see
/// `mdl-core`'s `exact` module for the full discussion and the symbolic
/// counterpart).
///
/// Returns `(lumped MRP, partition, representative exit rates)`.
///
/// # Errors
///
/// Propagates [`mdl_ctmc::CtmcError`] from MRP validation.
pub fn lump_mrp_exact(
    mrp: &Mrp<CsrMatrix>,
    options: &LumpOptions,
) -> mdl_ctmc::Result<(Mrp<CsrMatrix>, Partition, Vec<f64>)> {
    let partition = exact_partition(mrp.rates(), mrp.initial(), options);
    let rates = quotient_exact(mrp.rates(), &partition);
    let (reward, initial) = quotient_vectors(mrp.reward(), mrp.initial(), &partition);
    let row_sums = mrp.rates().row_sums_vec();
    let exit: Vec<f64> = partition
        .iter()
        .map(|(_, members)| row_sums[members[0]])
        .collect();
    Ok((Mrp::new(rates, reward, initial)?, partition, exit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{is_exactly_lumpable, is_ordinarily_lumpable};
    use mdl_ctmc::{SolverOptions, StationaryMethod};

    /// Three identical front states feeding a two-state tail.
    fn symmetric_chain() -> (CsrMatrix, Vec<f64>) {
        let mut coo = CooMatrix::new(5, 5);
        for s in 0..3 {
            coo.push(s, 3, 1.0);
        }
        coo.push(3, 4, 2.0);
        for s in 0..3 {
            coo.push(4, s, 1.0); // uniform return
        }
        (coo.to_csr(), vec![1.0, 1.0, 1.0, 0.0, 0.0])
    }

    #[test]
    fn ordinary_finds_three_way_symmetry() {
        let (r, reward) = symmetric_chain();
        let lumped = ordinary_lump(&r, &reward, &LumpOptions::default());
        assert_eq!(lumped.partition.num_classes(), 3);
        assert!(lumped.partition.same_class(0, 1));
        assert!(lumped.partition.same_class(1, 2));
        assert!(is_ordinarily_lumpable(
            &r,
            &reward,
            &lumped.partition,
            Tolerance::Exact
        ));
    }

    #[test]
    fn quotient_rates_match_theorem2_ordinary() {
        let (r, reward) = symmetric_chain();
        let lumped = ordinary_lump(&r, &reward, &LumpOptions::default());
        // Class of {0,1,2} -> class of {3} with rate 1.0 (row of any rep).
        let c012 = lumped.partition.class_of(0);
        let c3 = lumped.partition.class_of(3);
        let c4 = lumped.partition.class_of(4);
        assert_eq!(lumped.rates.get(c012, c3), 1.0);
        assert_eq!(lumped.rates.get(c3, c4), 2.0);
        assert_eq!(lumped.rates.get(c4, c012), 3.0); // 1+1+1
    }

    #[test]
    fn reward_is_class_average() {
        let (r, reward) = symmetric_chain();
        let lumped = ordinary_lump(&r, &reward, &LumpOptions::default());
        let c012 = lumped.partition.class_of(0);
        assert_eq!(lumped.reward[c012], 1.0);
    }

    #[test]
    fn different_rewards_block_merging() {
        let (r, _) = symmetric_chain();
        let reward = vec![1.0, 2.0, 1.0, 0.0, 0.0];
        let p = ordinary_partition(&r, &reward, &LumpOptions::default());
        assert!(!p.same_class(0, 1));
        assert!(p.same_class(0, 2));
    }

    #[test]
    fn exact_lumping_on_uniform_entry_chain() {
        // States 0,1 receive identical columns and have equal exit rates.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 2, 3.0);
        let r = coo.to_csr();
        let initial = vec![0.25, 0.25, 0.5];
        let p = exact_partition(&r, &initial, &LumpOptions::default());
        assert_eq!(p.num_classes(), 2);
        assert!(p.same_class(0, 1));
        assert!(is_exactly_lumpable(&r, &initial, &p, Tolerance::Exact));
    }

    #[test]
    fn exact_blocked_by_unequal_initial() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 2, 3.0);
        let r = coo.to_csr();
        let initial = vec![0.1, 0.4, 0.5];
        let p = exact_partition(&r, &initial, &LumpOptions::default());
        assert!(!p.same_class(0, 1));
    }

    #[test]
    fn exact_blocked_by_unequal_exit_rates() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 2, 4.0); // different exit rate
        let r = coo.to_csr();
        let initial = vec![0.25, 0.25, 0.5];
        let p = exact_partition(&r, &initial, &LumpOptions::default());
        assert!(!p.same_class(0, 1));
    }

    #[test]
    fn lumped_stationary_matches_aggregated_full() {
        let (r, reward) = symmetric_chain();
        let n = r.nrows();
        let initial = {
            let mut v = vec![0.0; n];
            v[3] = 1.0;
            v
        };
        let mrp = Mrp::new(r, reward, initial).unwrap();
        let (lumped, partition) = lump_mrp_ordinary(&mrp, &LumpOptions::default()).unwrap();

        let opts = SolverOptions {
            method: StationaryMethod::Power,
            ..Default::default()
        };
        let full = mrp.stationary(&opts).unwrap();
        let small = lumped.stationary(&opts).unwrap();

        // Aggregate the full solution over classes; must match the lumped one.
        let mut agg = vec![0.0; partition.num_classes()];
        for s in 0..mrp.num_states() {
            agg[partition.class_of(s)] += full.probabilities[s];
        }
        for (c, &a) in agg.iter().enumerate() {
            assert!((a - small.probabilities[c]).abs() < 1e-7);
        }
        // Expected reward is preserved.
        assert!(
            (mrp.expected_reward(&full.probabilities)
                - lumped.expected_reward(&small.probabilities))
            .abs()
                < 1e-7
        );
    }

    #[test]
    fn exact_mrp_lump_preserves_transient_aggregates() {
        // 0 and 1 exactly lumpable; evolve the per-state vector with the
        // returned exit rates and compare against the aggregated full
        // transient.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 2, 3.0);
        let r = coo.to_csr();
        let mrp = Mrp::new(r, vec![1.0, 1.0, 0.0], vec![0.25, 0.25, 0.5]).unwrap();
        let (lumped, partition, exit) = lump_mrp_exact(&mrp, &LumpOptions::default()).unwrap();
        assert_eq!(partition.num_classes(), 2);
        assert_eq!(exit.len(), 2);

        use mdl_ctmc::{transient_uniformization_with_exit_rates, TransientOptions};
        let t = 0.9;
        let full = mrp.transient(t, &TransientOptions::default()).unwrap();
        // ν̂₀(C) = π₀(C)/|C| — per-state values.
        let sizes: Vec<f64> = partition.iter().map(|(_, m)| m.len() as f64).collect();
        let nu0: Vec<f64> = lumped
            .initial()
            .iter()
            .zip(&sizes)
            .map(|(&p, &c)| p / c)
            .collect();
        let nu_t = transient_uniformization_with_exit_rates(
            lumped.rates(),
            &exit,
            &nu0,
            t,
            &TransientOptions::default(),
            false,
        )
        .unwrap();
        for (c, members) in partition.iter() {
            let agg: f64 = members.iter().map(|&s| full.probabilities[s]).sum();
            let lumped_agg = nu_t.probabilities[c] * sizes[c];
            assert!((agg - lumped_agg).abs() < 1e-10, "{agg} vs {lumped_agg}");
        }
    }

    #[test]
    fn tolerance_absorbs_float_noise() {
        // Rates that should be equal but differ in the last ulp.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 0.1 + 0.2);
        coo.push(1, 2, 0.3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        let r = coo.to_csr();
        let reward = vec![0.0, 0.0, 1.0];
        let exact = ordinary_partition(
            &r,
            &reward,
            &LumpOptions {
                tolerance: Tolerance::Exact,
                ..Default::default()
            },
        );
        assert!(!exact.same_class(0, 1));
        let rounded = ordinary_partition(
            &r,
            &reward,
            &LumpOptions {
                tolerance: Tolerance::Decimals(9),
                ..Default::default()
            },
        );
        assert!(rounded.same_class(0, 1));
    }

    #[test]
    fn exact_is_ordinary_of_transpose_plus_exit_rates() {
        // Duality: exact lumpability of R is ordinary lumpability of Rᵀ,
        // intersected with equal exit rates R(s, S) and equal initial
        // probabilities. Check on a chain with a planted column symmetry.
        let mut coo = CooMatrix::new(5, 5);
        coo.push(4, 0, 1.0);
        coo.push(4, 1, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 3, 2.0);
        coo.push(3, 4, 1.5);
        let r = coo.to_csr();
        let initial = vec![0.2; 5];

        let exact = exact_partition(&r, &initial, &LumpOptions::default());

        // Ordinary on the transpose with "reward" = (initial, exit rate).
        let rt = r.transpose();
        let row_sums = r.row_sums_vec();
        let tol = mdl_linalg::Tolerance::default();
        let init = mdl_partition::Partition::from_key_fn(5, |s| {
            (tol.key(initial[s]), tol.key(row_sums[s]))
        });
        let mut splitter = crate::splitters::OrdinaryFlatSplitter::new(&rt, tol);
        let dual = mdl_partition::comp_lumping(init, &mut splitter).partition;

        assert_eq!(exact, dual);
        assert!(exact.same_class(0, 1));
    }

    #[test]
    fn fully_asymmetric_chain_is_unlumpable() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        let r = coo.to_csr();
        let p = ordinary_partition(&r, &[0.0; 3], &LumpOptions::default());
        assert!(p.is_discrete());
    }
}
