use std::collections::HashMap;

use mdl_linalg::{CsrMatrix, Tolerance};
use mdl_partition::{Splitter, StateId};

/// Key function for **ordinary** lumpability on a flat rate matrix:
/// `K(R, s, C) = R(s, C)`.
///
/// For a splitter class `C`, only the *predecessors* of `C` can have a
/// non-zero key, so the splitter walks the transposed matrix and touches
/// `Σ_{s' ∈ C} indegree(s')` entries — this is what gives the refinement
/// algorithm its near-linear behaviour on sparse chains.
#[derive(Debug)]
pub struct OrdinaryFlatSplitter {
    transpose: CsrMatrix,
    tolerance: Tolerance,
}

impl OrdinaryFlatSplitter {
    /// Prepares the splitter for rate matrix `rates` (builds its
    /// transpose once).
    pub fn new(rates: &CsrMatrix, tolerance: Tolerance) -> Self {
        OrdinaryFlatSplitter {
            transpose: rates.transpose(),
            tolerance,
        }
    }
}

impl Splitter for OrdinaryFlatSplitter {
    type Key = i128;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, i128)>) {
        let mut sums: HashMap<StateId, f64> = HashMap::new();
        for &target in class {
            for (source, v) in self.transpose.row(target) {
                *sums.entry(source).or_insert(0.0) += v;
            }
        }
        out.extend(
            sums.into_iter()
                .filter(|&(_, sum)| sum != 0.0)
                .map(|(s, sum)| (s, self.tolerance.key(sum))),
        );
    }
}

/// Key function for **exact** lumpability on a flat rate matrix:
/// `K(R, s, C) = R(C, s)`.
///
/// Dual to [`OrdinaryFlatSplitter`]: only *successors* of the splitter
/// class can have a non-zero key, so this walks the matrix itself.
#[derive(Debug)]
pub struct ExactFlatSplitter {
    rates: CsrMatrix,
    tolerance: Tolerance,
}

impl ExactFlatSplitter {
    /// Prepares the splitter for rate matrix `rates` (clones it; the
    /// splitter needs row access for the lifetime of refinement).
    pub fn new(rates: &CsrMatrix, tolerance: Tolerance) -> Self {
        ExactFlatSplitter {
            rates: rates.clone(),
            tolerance,
        }
    }
}

impl Splitter for ExactFlatSplitter {
    type Key = i128;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, i128)>) {
        let mut sums: HashMap<StateId, f64> = HashMap::new();
        for &source in class {
            for (target, v) in self.rates.row(source) {
                *sums.entry(target).or_insert(0.0) += v;
            }
        }
        out.extend(
            sums.into_iter()
                .filter(|&(_, sum)| sum != 0.0)
                .map(|(s, sum)| (s, self.tolerance.key(sum))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn sample() -> CsrMatrix {
        // 0 -> 1 (2.0), 0 -> 2 (1.0), 1 -> 2 (3.0)
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 2, 3.0);
        coo.to_csr()
    }

    #[test]
    fn ordinary_touches_predecessors() {
        let mut s = OrdinaryFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[2], &mut out);
        out.sort();
        // predecessors of {2}: 0 with sum 1.0, 1 with sum 3.0
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_ne!(out[0].1, out[1].1);
    }

    #[test]
    fn ordinary_sums_over_class() {
        let mut s = OrdinaryFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[1, 2], &mut out);
        let zero = out.iter().find(|&&(st, _)| st == 0).unwrap();
        assert_eq!(zero.1, Tolerance::Exact.key(3.0)); // 2.0 + 1.0
    }

    #[test]
    fn exact_touches_successors() {
        let mut s = ExactFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[0, 1], &mut out);
        out.sort();
        // successors of {0,1}: 1 with column sum 2.0, 2 with 1.0 + 3.0
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1, Tolerance::Exact.key(2.0)));
        assert_eq!(out[1], (2, Tolerance::Exact.key(4.0)));
    }

    #[test]
    fn no_transitions_no_keys() {
        let empty = CooMatrix::new(2, 2).to_csr();
        let mut s = OrdinaryFlatSplitter::new(&empty, Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[0, 1], &mut out);
        assert!(out.is_empty());
    }
}
