use std::collections::HashMap;
use std::ops::Range;

use mdl_linalg::{CsrMatrix, Tolerance};
use mdl_obs::{pool::chunk_ranges, ThreadPool};
use mdl_partition::{Splitter, StateId};

/// Below this many states the parallel path is pure overhead: evaluate
/// the splitter serially.
const PAR_MIN_STATES: usize = 64;

/// Accumulates `Σ_{s ∈ class} matrix(s, j)` per column index `j`, walking
/// the rows of `class` in order. With `owned`, only column indices inside
/// the range are accumulated — each index still sees its contributions in
/// exactly the serial iteration order, which is what makes block-parallel
/// evaluation bit-identical to serial (DESIGN.md §12).
fn class_sums(
    matrix: &CsrMatrix,
    class: &[StateId],
    owned: Option<&Range<usize>>,
) -> HashMap<StateId, f64> {
    let mut sums: HashMap<StateId, f64> = HashMap::new();
    for &s in class {
        for (j, v) in matrix.row(s) {
            if owned.map_or(true, |r| r.contains(&j)) {
                *sums.entry(j).or_insert(0.0) += v;
            }
        }
    }
    sums
}

/// Converts per-state rate sums into refinement keys, dropping exact
/// zeros (the default key, per the [`Splitter`] contract).
fn emit(sums: HashMap<StateId, f64>, tolerance: Tolerance, out: &mut Vec<(StateId, i128)>) {
    out.extend(
        sums.into_iter()
            .filter(|&(_, sum)| sum != 0.0)
            .map(|(s, sum)| (s, tolerance.key(sum))),
    );
}

/// Evaluates `class_sums` over `matrix` on `pool`, block-parallel over
/// the column index space. Each worker owns a contiguous range of output
/// indices and walks **all** of the class's rows, so per-index addition
/// order equals the serial order and the emitted keys are bit-identical
/// for any worker count.
fn keys_pooled(
    matrix: &CsrMatrix,
    pool: &ThreadPool,
    tolerance: Tolerance,
    class: &[StateId],
    out: &mut Vec<(StateId, i128)>,
) {
    let n = matrix.ncols();
    if pool.threads() == 1 || n < PAR_MIN_STATES {
        emit(class_sums(matrix, class, None), tolerance, out);
        return;
    }
    let blocks = chunk_ranges(n, pool.threads());
    let mut span = mdl_obs::span("refine.split.parallel")
        .with("blocks", blocks.len())
        .with("class", class.len());
    let per_block = pool.run(blocks.len(), |b| {
        let mut local = Vec::new();
        emit(
            class_sums(matrix, class, Some(&blocks[b])),
            tolerance,
            &mut local,
        );
        local
    });
    let mut keys = 0usize;
    for block in per_block {
        keys += block.len();
        out.extend(block);
    }
    span.record("keys", keys as u64);
    span.finish();
}

/// Key function for **ordinary** lumpability on a flat rate matrix:
/// `K(R, s, C) = R(s, C)`.
///
/// For a splitter class `C`, only the *predecessors* of `C` can have a
/// non-zero key, so the splitter walks the transposed matrix and touches
/// `Σ_{s' ∈ C} indegree(s')` entries — this is what gives the refinement
/// algorithm its near-linear behaviour on sparse chains.
#[derive(Debug)]
pub struct OrdinaryFlatSplitter {
    transpose: CsrMatrix,
    tolerance: Tolerance,
    pool: ThreadPool,
}

impl OrdinaryFlatSplitter {
    /// Prepares the splitter for rate matrix `rates` (builds its
    /// transpose once). Serial evaluation; see [`Self::with_pool`].
    pub fn new(rates: &CsrMatrix, tolerance: Tolerance) -> Self {
        Self::with_pool(rates, tolerance, ThreadPool::serial())
    }

    /// As [`Self::new`], evaluating keys block-parallel on `pool` — the
    /// keys (and hence the refinement) are bit-identical to serial for
    /// any worker count.
    pub fn with_pool(rates: &CsrMatrix, tolerance: Tolerance, pool: ThreadPool) -> Self {
        OrdinaryFlatSplitter {
            transpose: rates.transpose(),
            tolerance,
            pool,
        }
    }
}

impl Splitter for OrdinaryFlatSplitter {
    type Key = i128;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, i128)>) {
        // Rows of the transpose are columns of R: accumulating over the
        // class's transpose-rows sums R(source, C) per source.
        keys_pooled(&self.transpose, &self.pool, self.tolerance, class, out);
    }
}

/// Key function for **exact** lumpability on a flat rate matrix:
/// `K(R, s, C) = R(C, s)`.
///
/// Dual to [`OrdinaryFlatSplitter`]: only *successors* of the splitter
/// class can have a non-zero key, so this walks the matrix itself.
#[derive(Debug)]
pub struct ExactFlatSplitter {
    rates: CsrMatrix,
    tolerance: Tolerance,
    pool: ThreadPool,
}

impl ExactFlatSplitter {
    /// Prepares the splitter for rate matrix `rates` (clones it; the
    /// splitter needs row access for the lifetime of refinement).
    pub fn new(rates: &CsrMatrix, tolerance: Tolerance) -> Self {
        Self::with_pool(rates, tolerance, ThreadPool::serial())
    }

    /// As [`Self::new`], evaluating keys block-parallel on `pool` with
    /// bit-identical results for any worker count.
    pub fn with_pool(rates: &CsrMatrix, tolerance: Tolerance, pool: ThreadPool) -> Self {
        ExactFlatSplitter {
            rates: rates.clone(),
            tolerance,
            pool,
        }
    }
}

impl Splitter for ExactFlatSplitter {
    type Key = i128;

    fn keys(&mut self, class: &[StateId], out: &mut Vec<(StateId, i128)>) {
        keys_pooled(&self.rates, &self.pool, self.tolerance, class, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn sample() -> CsrMatrix {
        // 0 -> 1 (2.0), 0 -> 2 (1.0), 1 -> 2 (3.0)
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 2, 3.0);
        coo.to_csr()
    }

    #[test]
    fn ordinary_touches_predecessors() {
        let mut s = OrdinaryFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[2], &mut out);
        out.sort();
        // predecessors of {2}: 0 with sum 1.0, 1 with sum 3.0
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_ne!(out[0].1, out[1].1);
    }

    #[test]
    fn ordinary_sums_over_class() {
        let mut s = OrdinaryFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[1, 2], &mut out);
        let zero = out.iter().find(|&&(st, _)| st == 0).unwrap();
        assert_eq!(zero.1, Tolerance::Exact.key(3.0)); // 2.0 + 1.0
    }

    #[test]
    fn exact_touches_successors() {
        let mut s = ExactFlatSplitter::new(&sample(), Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[0, 1], &mut out);
        out.sort();
        // successors of {0,1}: 1 with column sum 2.0, 2 with 1.0 + 3.0
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1, Tolerance::Exact.key(2.0)));
        assert_eq!(out[1], (2, Tolerance::Exact.key(4.0)));
    }

    #[test]
    fn no_transitions_no_keys() {
        let empty = CooMatrix::new(2, 2).to_csr();
        let mut s = OrdinaryFlatSplitter::new(&empty, Tolerance::Exact);
        let mut out = Vec::new();
        s.keys(&[0, 1], &mut out);
        assert!(out.is_empty());
    }

    /// A 200-state matrix with awkward (non-dyadic) rates so any change
    /// in summation order would show up in the low bits.
    fn awkward(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for s in 0..n {
            for step in [1usize, 3, 7, 11] {
                let t = (s + step) % n;
                coo.push(s, t, 0.1 + (s % 13) as f64 * 0.3 + step as f64 * 0.7);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn parallel_keys_bit_identical_to_serial() {
        let rates = awkward(200);
        let class: Vec<StateId> = (0..200).step_by(3).collect();
        let mut serial_ord = Vec::new();
        OrdinaryFlatSplitter::new(&rates, Tolerance::Exact).keys(&class, &mut serial_ord);
        serial_ord.sort();
        let mut serial_ex = Vec::new();
        ExactFlatSplitter::new(&rates, Tolerance::Exact).keys(&class, &mut serial_ex);
        serial_ex.sort();
        for threads in [2usize, 4, 7] {
            let pool = ThreadPool::new(threads);
            let mut out = Vec::new();
            OrdinaryFlatSplitter::with_pool(&rates, Tolerance::Exact, pool).keys(&class, &mut out);
            out.sort();
            assert_eq!(out, serial_ord, "ordinary, {threads} threads");
            let pool = ThreadPool::new(threads);
            let mut out = Vec::new();
            ExactFlatSplitter::with_pool(&rates, Tolerance::Exact, pool).keys(&class, &mut out);
            out.sort();
            assert_eq!(out, serial_ex, "exact, {threads} threads");
        }
    }
}
