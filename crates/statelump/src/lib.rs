//! Optimal *state-level* lumping of flat CTMCs.
//!
//! This crate implements reference \[9\] of the paper (Derisavi, Hermanns &
//! Sanders, *Optimal state-space lumping in Markov chains*, IPL 2003) in the
//! generalized form the paper's Fig. 1 presents it: partition refinement
//! parameterized by a key function `K`, instantiated with
//!
//! * `K(R, s, C) = R(s, C)` for **ordinary** lumpability, and
//! * `K(R, s, C) = R(C, s)` for **exact** lumpability,
//!
//! plus the matching initial partitions (group by reward for ordinary; by
//! initial probability and exit rate for exact) and the Theorem-2 quotient
//! construction.
//!
//! In the reproduction this crate plays two roles:
//!
//! 1. it is the refinement engine the compositional MD lumping algorithm
//!    (`mdl-core`) applies *per level* of a matrix diagram, and
//! 2. it is the **optimality baseline** of the paper's Section 5: running
//!    state-level lumping on the compositionally lumped chain shows whether
//!    the local algorithm left any lumpability on the table.
//!
//! # Example
//!
//! ```
//! use mdl_linalg::{CooMatrix, Tolerance};
//! use mdl_statelump::{ordinary_lump, LumpOptions};
//!
//! // Two identical states 0, 1 feeding state 2, which feeds back.
//! let mut r = CooMatrix::new(3, 3);
//! r.push(0, 2, 1.0);
//! r.push(1, 2, 1.0);
//! r.push(2, 0, 0.5);
//! r.push(2, 1, 0.5);
//! let reward = vec![1.0, 1.0, 0.0];
//!
//! let lumped = ordinary_lump(&r.to_csr(), &reward, &LumpOptions::default());
//! assert_eq!(lumped.partition.num_classes(), 2);
//! assert_eq!(lumped.rates.get(0, 1), 1.0); // R̂({0,1}, {2}) = 1.0
//! assert_eq!(lumped.rates.get(1, 0), 1.0); // R̂({2}, {0,1}) = 0.5 + 0.5
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
mod lump;
mod splitters;

pub use check::{is_exactly_lumpable, is_ordinarily_lumpable};
pub use lump::{
    exact_lump, exact_partition, lump_mrp_exact, lump_mrp_ordinary, ordinary_lump,
    ordinary_partition, LumpOptions, Lumped,
};
pub use splitters::{ExactFlatSplitter, OrdinaryFlatSplitter};
