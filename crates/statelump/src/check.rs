use mdl_linalg::{CsrMatrix, Tolerance};
use mdl_partition::Partition;

/// Checks the **ordinary** lumpability conditions of Theorem 1a directly:
/// for all classes `C, C′` and states `s, ŝ ∈ C`, `R(s, C′) = R(ŝ, C′)` and
/// `r(s) = r(ŝ)`.
///
/// This is the independent O(classes · nnz) verifier used by tests and by
/// the optimality experiments — deliberately *not* sharing code with the
/// refinement algorithm it checks.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn is_ordinarily_lumpable(
    rates: &CsrMatrix,
    reward: &[f64],
    partition: &Partition,
    tolerance: Tolerance,
) -> bool {
    let n = rates.nrows();
    assert_eq!(partition.num_states(), n);
    assert_eq!(reward.len(), n);
    let k = partition.num_classes();

    for (_, members) in partition.iter() {
        let rep = members[0];
        if members
            .iter()
            .any(|&s| !tolerance.eq(reward[s], reward[rep]))
        {
            return false;
        }
        let mut rep_sums = vec![0.0; k];
        for (t, v) in rates.row(rep) {
            rep_sums[partition.class_of(t)] += v;
        }
        for &s in &members[1..] {
            let mut sums = vec![0.0; k];
            for (t, v) in rates.row(s) {
                sums[partition.class_of(t)] += v;
            }
            if (0..k).any(|c| !tolerance.eq(sums[c], rep_sums[c])) {
                return false;
            }
        }
    }
    true
}

/// Checks the **exact** lumpability conditions of Theorem 1b directly:
/// for all classes `C, C′` and states `s, ŝ ∈ C`, `R(C′, s) = R(C′, ŝ)`,
/// `R(s, S) = R(ŝ, S)` and `π_ini(s) = π_ini(ŝ)`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn is_exactly_lumpable(
    rates: &CsrMatrix,
    initial: &[f64],
    partition: &Partition,
    tolerance: Tolerance,
) -> bool {
    let n = rates.nrows();
    assert_eq!(partition.num_states(), n);
    assert_eq!(initial.len(), n);
    let k = partition.num_classes();

    // Column sums per (source class, state): R(C′, s) for every s.
    let mut col_by_class = vec![vec![0.0; n]; k];
    for s in 0..n {
        let c = partition.class_of(s);
        for (t, v) in rates.row(s) {
            col_by_class[c][t] += v;
        }
    }
    let row_sums = rates.row_sums_vec();

    for (_, members) in partition.iter() {
        let rep = members[0];
        for &s in &members[1..] {
            if !tolerance.eq(initial[s], initial[rep]) || !tolerance.eq(row_sums[s], row_sums[rep])
            {
                return false;
            }
            if (0..k).any(|c| !tolerance.eq(col_by_class[c][s], col_by_class[c][rep])) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn chain() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 2, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 3, 2.0);
        coo.push(3, 0, 0.5);
        coo.push(3, 1, 0.5);
        coo.to_csr()
    }

    #[test]
    fn accepts_valid_ordinary_partition() {
        let p = Partition::from_classes(vec![vec![0, 1], vec![2], vec![3]]);
        assert!(is_ordinarily_lumpable(
            &chain(),
            &[0.0; 4],
            &p,
            Tolerance::Exact
        ));
    }

    #[test]
    fn rejects_invalid_ordinary_partition() {
        let p = Partition::from_classes(vec![vec![0, 2], vec![1], vec![3]]);
        assert!(!is_ordinarily_lumpable(
            &chain(),
            &[0.0; 4],
            &p,
            Tolerance::Exact
        ));
    }

    #[test]
    fn rejects_reward_mismatch() {
        let p = Partition::from_classes(vec![vec![0, 1], vec![2], vec![3]]);
        assert!(!is_ordinarily_lumpable(
            &chain(),
            &[1.0, 2.0, 0.0, 0.0],
            &p,
            Tolerance::Exact
        ));
    }

    #[test]
    fn accepts_valid_exact_partition() {
        // 0 and 1 receive equal columns (0.5 each from 3) and have equal
        // exit rates (1.0 each).
        let p = Partition::from_classes(vec![vec![0, 1], vec![2], vec![3]]);
        assert!(is_exactly_lumpable(
            &chain(),
            &[0.25, 0.25, 0.5, 0.0],
            &p,
            Tolerance::Exact
        ));
    }

    #[test]
    fn rejects_exact_with_unequal_initial() {
        let p = Partition::from_classes(vec![vec![0, 1], vec![2], vec![3]]);
        assert!(!is_exactly_lumpable(
            &chain(),
            &[0.1, 0.4, 0.5, 0.0],
            &p,
            Tolerance::Exact
        ));
    }

    #[test]
    fn trivial_partition_always_ordinary() {
        let p = Partition::discrete(4);
        assert!(is_ordinarily_lumpable(
            &chain(),
            &[0.0; 4],
            &p,
            Tolerance::Exact
        ));
        assert!(is_exactly_lumpable(
            &chain(),
            &[0.25; 4],
            &p,
            Tolerance::Exact
        ));
    }
}
