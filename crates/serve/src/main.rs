//! `mdl-serve` — the persistent solver daemon.
//!
//! ```text
//! mdl-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--tenant-cap N] [--solve-threads N]
//!           [--default-deadline DUR] [--max-deadline DUR]
//!           [--cache-dir DIR] [--metrics]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `mdl_serve::protocol` on
//! a TCP socket. Runs until SIGTERM/SIGINT (or a protocol `shutdown`
//! command), then drains gracefully: stops accepting, sheds queued
//! admissions, finishes in-flight work (interrupted solves leave
//! resumable checkpoints in the cache), sweeps cache debris and — with
//! `--metrics` — writes the final counter/latency report to stderr.
//!
//! Exit codes: `0` clean drain, `1` startup failure (bad flags, bind or
//! cache errors).

use std::process::ExitCode;
use std::time::Duration;

use mdl_cli::flags::{parse_serve_flags, ServeFlags, CACHE_ENV_VAR};
use mdl_serve::server::{Server, ServerConfig};
use mdl_serve::signal;

fn usage() -> String {
    "usage:\n  mdl-serve [--addr HOST:PORT] [--workers N] [--queue N]\n            [--tenant-cap N] [--solve-threads N]\n            [--default-deadline DUR] [--max-deadline DUR]\n            [--cache-dir DIR] [--metrics]\n\n  --addr HOST:PORT        bind address (default 127.0.0.1:7117; port 0\n                          picks a free port, printed on startup)\n  --workers N             solver worker threads (default 2)\n  --queue N               bounded admission queue; a full queue sheds\n                          with a retry-after hint (default 32)\n  --tenant-cap N          per-tenant in-flight cap (default 8)\n  --solve-threads N       threads per individual solve (default 1; the\n                          daemon's parallelism is concurrent requests)\n  --default-deadline DUR  deadline for requests naming none (default\n                          30s; 0 disables)\n  --max-deadline DUR      clamp on requested deadlines (default 300s;\n                          0 disables)\n  --cache-dir DIR         shared artifact store (MDL_CACHE environment\n                          variable supplies a default); enables warm\n                          stages and checkpoint/resume across requests\n  --metrics               write the counter/latency report to stderr on\n                          drain\n\nprotocol: one JSON object per line; see the mdl-serve crate docs.\nsignals: SIGTERM/SIGINT drain gracefully and exit 0.\n".to_string()
}

fn config_for(flags: &ServeFlags) -> ServerConfig {
    ServerConfig {
        addr: flags.addr.clone(),
        workers: flags.workers,
        queue_limit: flags.queue_limit,
        tenant_cap: flags.tenant_cap,
        solve_threads: flags.solve_threads,
        default_deadline: flags.default_deadline,
        max_deadline: flags.max_deadline,
        cache_dir: flags.cache_dir.clone(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let env_cache = std::env::var(CACHE_ENV_VAR).ok();
    let flags = match parse_serve_flags(&args, env_cache.as_deref()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mdl-serve: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let metrics = args.iter().any(|a| a == "--metrics");

    // Counters/histograms feed the `stats` command and the drain
    // report; failpoints come from MDL_FAILPOINTS for chaos testing.
    mdl_obs::set_enabled(true);
    mdl_obs::failpoint::init_from_env();
    signal::install();

    let server = match Server::start(config_for(&flags)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mdl-serve: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Port 0 resolves here; scripts parse this line.
    println!("mdl-serve: listening on {}", server.local_addr());
    if mdl_obs::failpoint::active() {
        eprintln!("mdl-serve: failpoints active (MDL_FAILPOINTS)");
    }

    while !signal::triggered() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("mdl-serve: draining (finishing in-flight work)");
    server.drain();
    server.join();
    if metrics {
        eprint!("{}", mdl_obs::snapshot().render_pretty());
    }
    eprintln!("mdl-serve: drained cleanly");
    ExitCode::SUCCESS
}
