//! Admission control: a bounded queue with per-tenant in-flight caps
//! and load shedding.
//!
//! The policy is deliberately boring — refuse early, hint honestly:
//!
//! * the queue is bounded (`queue_limit`); a full queue sheds with
//!   `queue-full` and a retry-after derived from observed service time;
//! * each tenant's *occupancy* (queued + executing) is capped
//!   (`tenant_cap`), so one hot tenant cannot starve the rest;
//! * a draining server sheds everything with `draining` — clients
//!   should fail over, not retry.
//!
//! Shedding happens at admit time on the connection handler's thread;
//! nothing about a shed request ever touches the worker pool. Obs:
//! `serve.shed` (count), `serve.queue_depth` (histogram, sampled at
//! admit), `serve.tenant_capped`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use mdl_obs::CancelToken;

use crate::protocol::{Response, ShedReason, SolveParams};
use crate::recover;

/// One admitted unit of work, handed from a connection handler to a
/// worker through the queue.
#[derive(Debug)]
pub struct Job {
    /// The solve to run.
    pub params: SolveParams,
    /// Cancelled by the handler when its client disconnects (and
    /// observed by the solver through its budget).
    pub cancel: CancelToken,
    /// Where the worker sends the single response.
    pub respond: mpsc::Sender<Response>,
    /// When the job entered the queue; queue wait is measured from
    /// here.
    pub enqueued: Instant,
}

/// Admission-control limits.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet executing) jobs.
    pub queue_limit: usize,
    /// Maximum per-tenant occupancy (queued + executing).
    pub tenant_cap: usize,
    /// Worker count, used to scale retry-after hints.
    pub workers: usize,
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<Job>,
    /// Occupancy per tenant: incremented at admit, decremented at
    /// [`Admission::finish`]. Entries at zero are removed.
    occupancy: HashMap<String, usize>,
    draining: bool,
}

/// What a worker's wait for work produced.
#[derive(Debug)]
pub enum Next {
    /// A job to execute.
    Job(Box<Job>),
    /// Timed out with the queue empty; poll again.
    Idle,
    /// Draining and the queue is empty: the worker should exit.
    Drained,
}

/// The shared admission gate. One per server; handlers admit, workers
/// take, both sides tolerate a poisoned inner lock (a panicking worker
/// must not wedge the queue).
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    ready: Condvar,
    /// EWMA of service time in milliseconds (×16 fixed point), feeding
    /// retry-after hints. Seeded with 50ms until real samples arrive.
    service_ewma_x16: AtomicU64,
}

impl Admission {
    /// A gate with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            service_ewma_x16: AtomicU64::new(50 * 16),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Admits `job` into the queue or sheds it. On a shed, the job is
    /// returned to the caller (which still owns the response channel).
    ///
    /// # Errors
    ///
    /// The shed response (reason + retry-after hint) the handler must
    /// write back.
    pub fn try_admit(&self, job: Job) -> Result<(), Box<(Job, Response)>> {
        let mut state = recover(&self.state);
        if state.draining {
            mdl_obs::counter("serve.shed").inc();
            return Err(Box::new((job, self.shed(ShedReason::Draining, 0))));
        }
        if state.queue.len() >= self.cfg.queue_limit {
            mdl_obs::counter("serve.shed").inc();
            let depth = state.queue.len();
            return Err(Box::new((job, self.shed(ShedReason::QueueFull, depth))));
        }
        let occupancy = state
            .occupancy
            .get(&job.params.tenant)
            .copied()
            .unwrap_or(0);
        if occupancy >= self.cfg.tenant_cap {
            mdl_obs::counter("serve.shed").inc();
            mdl_obs::counter("serve.tenant_capped").inc();
            return Err(Box::new((job, self.shed(ShedReason::TenantCap, 1))));
        }
        *state
            .occupancy
            .entry(job.params.tenant.clone())
            .or_insert(0) += 1;
        state.queue.push_back(job);
        mdl_obs::histogram("serve.queue_depth").record(state.queue.len() as u64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next job, waiting up to `timeout`. Workers loop on
    /// this; [`Next::Drained`] is the exit signal.
    pub fn next(&self, timeout: Duration) -> Next {
        let mut state = recover(&self.state);
        loop {
            if let Some(job) = state.queue.pop_front() {
                return Next::Job(Box::new(job));
            }
            if state.draining {
                return Next::Drained;
            }
            let (next, wait) = self.ready.wait_timeout(state, timeout).unwrap_or_else(|e| {
                mdl_obs::counter("serve.lock_poisoned").inc();
                let inner = e.into_inner();
                (inner.0, inner.1)
            });
            state = next;
            if wait.timed_out() {
                return match state.queue.pop_front() {
                    Some(job) => Next::Job(Box::new(job)),
                    None if state.draining => Next::Drained,
                    None => Next::Idle,
                };
            }
        }
    }

    /// Releases one unit of `tenant`'s occupancy; called by the worker
    /// after the response is sent (success or not).
    pub fn finish(&self, tenant: &str) {
        let mut state = recover(&self.state);
        if let Some(n) = state.occupancy.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.occupancy.remove(tenant);
            }
        }
    }

    /// Folds one observed service time into the retry-after EWMA.
    pub fn record_service(&self, elapsed: Duration) {
        let sample_x16 = (elapsed.as_millis() as u64).saturating_mul(16);
        // EWMA with α = 1/4: new = old + (sample - old)/4.
        let _ = self
            .service_ewma_x16
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                Some(old + sample_x16.saturating_sub(old) / 4 - old.saturating_sub(sample_x16) / 4)
            });
    }

    /// Enters drain: every future admit sheds, and workers exit once
    /// the queue is empty. Idempotent.
    pub fn drain(&self) {
        recover(&self.state).draining = true;
        self.ready.notify_all();
    }

    /// Whether drain has been initiated.
    pub fn draining(&self) -> bool {
        recover(&self.state).draining
    }

    /// Current queue depth (jobs admitted, not yet taken by a worker).
    pub fn depth(&self) -> usize {
        recover(&self.state).queue.len()
    }

    /// The retry-after hint in milliseconds for a queue that is
    /// `pending` jobs deep: roughly how long until a slot frees, from
    /// the service-time EWMA and the worker count.
    fn retry_after_ms(&self, pending: usize) -> u64 {
        let avg_ms = self.service_ewma_x16.load(Ordering::Relaxed) / 16;
        let workers = self.cfg.workers.max(1) as u64;
        let est = (pending as u64 / workers + 1).saturating_mul(avg_ms.max(1));
        est.clamp(25, 30_000)
    }

    fn shed(&self, reason: ShedReason, pending: usize) -> Response {
        Response::Shed {
            reason,
            retry_after_ms: match reason {
                // Fail over, don't retry: a draining server will be gone.
                ShedReason::Draining => 0,
                _ => self.retry_after_ms(pending),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_cli::commands::Measure;
    use mdl_core::LumpKind;

    fn job(tenant: &str) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                params: SolveParams {
                    model: String::new(),
                    kind: LumpKind::Ordinary,
                    measure: Measure::Stationary,
                    deadline_ms: None,
                    tenant: tenant.to_string(),
                    fallback: true,
                    bounds: false,
                    tolerance: mdl_linalg::Tolerance::default(),
                },
                cancel: CancelToken::new(),
                respond: tx,
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    fn gate(queue: usize, cap: usize) -> Admission {
        Admission::new(AdmissionConfig {
            queue_limit: queue,
            tenant_cap: cap,
            workers: 2,
        })
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        let adm = gate(2, 10);
        let (a, _ra) = job("t");
        let (b, _rb) = job("t");
        adm.try_admit(a).unwrap();
        adm.try_admit(b).unwrap();
        let (c, _rc) = job("t");
        let (_, resp) = *adm.try_admit(c).unwrap_err();
        match resp {
            Response::Shed {
                reason: ShedReason::QueueFull,
                retry_after_ms,
            } => assert!(retry_after_ms >= 25),
            other => panic!("expected queue-full shed, got {other:?}"),
        }
        assert_eq!(adm.depth(), 2);
    }

    #[test]
    fn tenant_cap_binds_per_tenant_not_globally() {
        let adm = gate(100, 2);
        let (a, _ra) = job("alice");
        let (b, _rb) = job("alice");
        adm.try_admit(a).unwrap();
        adm.try_admit(b).unwrap();
        let (c, _rc) = job("alice");
        let (_, resp) = *adm.try_admit(c).unwrap_err();
        assert!(matches!(
            resp,
            Response::Shed {
                reason: ShedReason::TenantCap,
                ..
            }
        ));
        // A different tenant is unaffected.
        let (d, _rd) = job("bob");
        adm.try_admit(d).unwrap();
        // Finishing one of alice's jobs frees her slot.
        adm.finish("alice");
        let (e, _re) = job("alice");
        adm.try_admit(e).unwrap();
    }

    #[test]
    fn workers_take_jobs_in_order_then_idle() {
        let adm = gate(10, 10);
        let (a, _ra) = job("x");
        adm.try_admit(a).unwrap();
        match adm.next(Duration::from_millis(10)) {
            Next::Job(j) => assert_eq!(j.params.tenant, "x"),
            other => panic!("expected a job, got {other:?}"),
        }
        assert!(matches!(adm.next(Duration::from_millis(1)), Next::Idle));
    }

    #[test]
    fn drain_sheds_new_work_and_releases_workers() {
        let adm = gate(10, 10);
        let (a, _ra) = job("x");
        adm.try_admit(a).unwrap();
        adm.drain();
        assert!(adm.draining());
        // Queued work is still delivered…
        assert!(matches!(adm.next(Duration::from_millis(5)), Next::Job(_)));
        // …then workers are released…
        assert!(matches!(adm.next(Duration::from_millis(5)), Next::Drained));
        // …and new admissions shed with reason=draining, retry 0.
        let (b, _rb) = job("x");
        let (_, resp) = *adm.try_admit(b).unwrap_err();
        assert_eq!(
            resp,
            Response::Shed {
                reason: ShedReason::Draining,
                retry_after_ms: 0
            }
        );
    }

    #[test]
    fn service_ewma_moves_toward_samples() {
        let adm = gate(1, 1);
        for _ in 0..32 {
            adm.record_service(Duration::from_millis(400));
        }
        let hint = adm.retry_after_ms(0);
        assert!(
            (300..=800).contains(&hint),
            "hint {hint} should approach the 400ms samples"
        );
    }
}
