//! A minimal blocking client for the line-delimited JSON protocol.
//!
//! Shared by the acceptance suite (`tests/serve.rs`), the chaos gate
//! and `mdl-bench serve` — one connection, strict request/response
//! lockstep, no retry logic (shed handling is the caller's policy,
//! that is the point of the retry-after hint).
//!
//! ```no_run
//! use mdl_serve::client::{Client, SolveLine};
//!
//! let mut c = Client::connect("127.0.0.1:7117").unwrap();
//! let reply = c
//!     .request(&SolveLine::new(mdl_serve::EXAMPLE_MODEL).build())
//!     .unwrap();
//! assert!(reply.contains("\"status\""));
//! ```

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use mdl_obs::json::JsonObject;

/// One blocking protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Bounds how long [`request`](Self::request) waits for the
    /// response line (`None` waits forever, the default).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line without waiting for the response — the
    /// client-disconnect chaos tests send and then drop the
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }

    /// Sends one request line and reads the one response line
    /// (trailing newline stripped).
    ///
    /// # Errors
    ///
    /// I/O failures, or `UnexpectedEof` if the server closed the
    /// connection without answering.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// Builder for a `solve` request line.
#[derive(Debug, Clone, Default)]
pub struct SolveLine {
    model: String,
    lump: Option<&'static str>,
    measure: Option<&'static str>,
    t: Option<f64>,
    deadline_ms: Option<u64>,
    tenant: Option<String>,
    fallback: Option<bool>,
}

impl SolveLine {
    /// Starts a solve request for `model` (the `mdlump-cli` model
    /// format); all other fields take the server-side defaults.
    pub fn new(model: &str) -> Self {
        SolveLine {
            model: model.to_string(),
            ..SolveLine::default()
        }
    }

    /// Selects the lumping: `"ordinary"` or `"exact"`.
    #[must_use]
    pub fn lump(mut self, kind: &'static str) -> Self {
        self.lump = Some(kind);
        self
    }

    /// Selects the measure: `"stationary"`, `"transient"` or
    /// `"accumulated"` (the latter two need [`t`](Self::t)).
    #[must_use]
    pub fn measure(mut self, measure: &'static str) -> Self {
        self.measure = Some(measure);
        self
    }

    /// Time horizon for transient/accumulated measures.
    #[must_use]
    pub fn t(mut self, t: f64) -> Self {
        self.t = Some(t);
        self
    }

    /// Per-request deadline in milliseconds.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Admission-control principal.
    #[must_use]
    pub fn tenant(mut self, tenant: &str) -> Self {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// Whether to degrade through the fallback ladder.
    #[must_use]
    pub fn fallback(mut self, on: bool) -> Self {
        self.fallback = Some(on);
        self
    }

    /// Renders the request as its single JSON line (no trailing
    /// newline).
    pub fn build(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("cmd", "solve").str("model", &self.model);
        if let Some(kind) = self.lump {
            obj.str("lump", kind);
        }
        if let Some(measure) = self.measure {
            obj.str("measure", measure);
        }
        if let Some(t) = self.t {
            obj.f64("t", t);
        }
        if let Some(ms) = self.deadline_ms {
            obj.u64("deadline_ms", ms);
        }
        if let Some(tenant) = &self.tenant {
            obj.str("tenant", tenant);
        }
        if let Some(on) = self.fallback {
            obj.bool("fallback", on);
        }
        obj.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};
    use mdl_cli::commands::Measure;
    use mdl_core::LumpKind;

    #[test]
    fn built_solve_lines_parse_back_to_the_same_params() {
        let line = SolveLine::new("component a 2\nreward sum\n")
            .lump("exact")
            .measure("transient")
            .t(2.5)
            .deadline_ms(750)
            .tenant("alice")
            .fallback(false)
            .build();
        let Request::Solve(p) = parse_request(&line).unwrap() else {
            panic!("not a solve");
        };
        assert_eq!(p.model, "component a 2\nreward sum\n");
        assert_eq!(p.kind, LumpKind::Exact);
        assert_eq!(p.measure, Measure::Transient(2.5));
        assert_eq!(p.deadline_ms, Some(750));
        assert_eq!(p.tenant, "alice");
        assert!(!p.fallback);
    }

    #[test]
    fn minimal_solve_line_takes_server_defaults() {
        let line = SolveLine::new("m").build();
        let Request::Solve(p) = parse_request(&line).unwrap() else {
            panic!("not a solve");
        };
        assert_eq!(p.kind, LumpKind::Ordinary);
        assert_eq!(p.measure, Measure::Stationary);
        assert_eq!(p.deadline_ms, None);
        assert_eq!(p.tenant, "anon");
        assert!(p.fallback);
    }
}
