//! Minimal, dependency-free SIGTERM/SIGINT handling.
//!
//! The handler does the only async-signal-safe thing possible: it sets
//! a process-global flag. The server's accept loop polls the flag and
//! initiates graceful drain; a clean drain is the contract CI's chaos
//! gate verifies (`kill -TERM` → finish in-flight work → exit 0).
//!
//! Unix-only; on other platforms [`install`] is a no-op and shutdown
//! comes through the protocol's `shutdown` command instead.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been received (or [`trigger`] called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Sets the shutdown flag programmatically — the protocol `shutdown`
/// command and tests share the signal path this way.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Resets the flag (test isolation only; a real daemon never unsets
/// shutdown).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    //! The raw libc binding: `signal(2)` is in every Linux/macOS libc
    //! that std already links; no crate dependency needed.
    #![allow(unsafe_code)]

    /// C signal-handler shape.
    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: store to an atomic.
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handler (no-op off Unix). Idempotent.
pub fn install() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_drive_the_flag() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }

    #[cfg(unix)]
    #[test]
    fn installed_handler_survives_installation() {
        // Installing must not crash or alter the flag.
        reset();
        install();
        assert!(!triggered());
    }
}
