//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests name a command; every request receives exactly one response
//! line whose `status` field realizes the trichotomy the chaos suite
//! asserts: `"ok"` (a correct result), `"error"` (an honest structured
//! failure) or `"shed"` (not admitted; retry after the hinted delay).
//!
//! ```text
//! → {"cmd":"solve","model":"component a 2\n…","lump":"ordinary",
//!    "measure":"stationary","deadline_ms":5000,"tenant":"alice"}
//! ← {"status":"ok","measure":1.25,"original_states":8,
//!    "lumped_states":3,"warm":false,"elapsed_ms":12,
//!    "attempts":[{"method":"jacobi","kernel":"compiled",
//!                 "outcome":"converged","iterations":41,"elapsed_ms":9}]}
//! ```
//!
//! Parsing is strict about shape (unknown `cmd`, missing `model`, bad
//! `measure` are `bad-request` errors) and lenient about extras —
//! unknown fields are ignored so the protocol can grow.

use mdl_cli::commands::Measure;
use mdl_core::LumpKind;
use mdl_ctmc::RunReport;
use mdl_linalg::Tolerance;
use mdl_obs::json::{self, Json, JsonObject};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve a measure on an inline model.
    Solve(SolveParams),
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server metrics snapshot; answered inline.
    Stats,
    /// Initiate graceful drain (same path as SIGTERM).
    Shutdown,
}

/// Parameters of a `solve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveParams {
    /// The model file text (the `mdlump-cli` format).
    pub model: String,
    /// Which lumping to apply before solving.
    pub kind: LumpKind,
    /// The measure to compute.
    pub measure: Measure,
    /// Per-request wall-clock deadline; the server clamps it to its
    /// configured maximum and substitutes its default when absent.
    pub deadline_ms: Option<u64>,
    /// Admission-control principal; requests without one share the
    /// `"anon"` bucket.
    pub tenant: String,
    /// Whether to degrade through the fallback ladder on retryable
    /// failures (default true — graceful degradation is the point).
    pub fallback: bool,
    /// `"bounds": true` — return a certified interval enclosure of the
    /// measure instead of a single scalar (ordinary lumping, stationary
    /// or transient measures only).
    pub bounds: bool,
    /// `"tolerance": "exact" | N` — the lumping comparison tolerance in
    /// decimal digits (default 9). Looser tolerances lump more and widen
    /// the certified interval a `bounds` solve returns.
    pub tolerance: Tolerance,
}

/// How a request failed, mirrored into the response's `kind` field and
/// onto per-kind obs counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was malformed.
    BadRequest,
    /// A budget limit (deadline, cancellation) interrupted the solve.
    Interrupted,
    /// The model or solve failed structurally.
    Failed,
    /// The worker panicked or another server-side invariant broke; the
    /// request was isolated, the daemon lives on.
    Internal,
}

impl ErrorKind {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Interrupted => "interrupted",
            ErrorKind::Failed => "failed",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue is full.
    QueueFull,
    /// The tenant is at its in-flight cap.
    TenantCap,
    /// The server is draining and accepts no new work.
    Draining,
}

impl ShedReason {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantCap => "tenant-cap",
            ShedReason::Draining => "draining",
        }
    }
}

/// One attempt row of a solve response, distilled from
/// [`mdl_ctmc::AttemptRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRow {
    /// Solver method label.
    pub method: String,
    /// Kernel label, when the attempt ran an MD kernel.
    pub kernel: Option<String>,
    /// How the attempt ended (`converged`, `interrupted`, …).
    pub outcome: String,
    /// Iterations performed.
    pub iterations: u64,
    /// Attempt wall clock in milliseconds.
    pub elapsed_ms: u64,
}

/// The successful-solve response body.
#[derive(Debug, Clone, PartialEq)]
pub struct OkBody {
    /// The computed measure. For a `bounds` solve this is the interval
    /// midpoint; the certification lives in `bounds`.
    pub measure: f64,
    /// `Some((lo, hi))` for a `bounds` solve: the certified enclosure,
    /// rendered as `measure_lo`/`measure_hi`. `None` for scalar solves.
    pub bounds: Option<(f64, f64)>,
    /// States in the unlumped chain.
    pub original_states: u64,
    /// States after lumping.
    pub lumped_states: u64,
    /// Whether every pipeline stage restored from the shared store.
    pub warm: bool,
    /// End-to-end service time (queue wait excluded) in milliseconds.
    pub elapsed_ms: u64,
    /// The fallback ladder's per-attempt log (empty when the solve ran
    /// without the resilient ladder, e.g. exact lumping).
    pub attempts: Vec<AttemptRow>,
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A correct solve result.
    Ok(OkBody),
    /// Liveness answer.
    Pong,
    /// Metrics snapshot (pre-rendered JSON object text).
    Stats(String),
    /// Drain acknowledged.
    Draining,
    /// An honest structured failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// Not admitted; retry after the hint.
    Shed {
        /// Why the request was refused.
        reason: ShedReason,
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
}

impl Response {
    /// The `status` field this response renders with.
    pub fn status(&self) -> &'static str {
        match self {
            Response::Ok(_) | Response::Pong | Response::Stats(_) | Response::Draining => "ok",
            Response::Error { .. } => "error",
            Response::Shed { .. } => "shed",
        }
    }

    /// Renders the response as its single JSON line (no trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("status", self.status());
        match self {
            Response::Ok(body) => {
                obj.f64("measure", body.measure);
                if let Some((lo, hi)) = body.bounds {
                    obj.f64("measure_lo", lo).f64("measure_hi", hi);
                }
                obj.u64("original_states", body.original_states)
                    .u64("lumped_states", body.lumped_states)
                    .bool("warm", body.warm)
                    .u64("elapsed_ms", body.elapsed_ms);
                let mut rows = String::from("[");
                for (i, a) in body.attempts.iter().enumerate() {
                    if i > 0 {
                        rows.push(',');
                    }
                    let mut row = JsonObject::new();
                    row.str("method", &a.method);
                    match &a.kernel {
                        Some(k) => row.str("kernel", k),
                        None => row.raw("kernel", "null"),
                    };
                    row.str("outcome", &a.outcome)
                        .u64("iterations", a.iterations)
                        .u64("elapsed_ms", a.elapsed_ms);
                    rows.push_str(&row.close());
                }
                rows.push(']');
                obj.raw("attempts", &rows);
            }
            Response::Pong => {
                obj.bool("pong", true);
            }
            Response::Stats(stats) => {
                obj.raw("stats", stats);
            }
            Response::Draining => {
                obj.bool("draining", true);
            }
            Response::Error { kind, detail } => {
                obj.str("kind", kind.label()).str("detail", detail);
            }
            Response::Shed {
                reason,
                retry_after_ms,
            } => {
                obj.str("reason", reason.label())
                    .u64("retry_after_ms", *retry_after_ms);
            }
        }
        obj.close()
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A `bad-request` detail string for malformed JSON, unknown commands or
/// missing/invalid fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing \"cmd\"")?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => parse_solve(&value).map(Request::Solve),
        other => Err(format!(
            "unknown cmd {other:?} (want solve|ping|stats|shutdown)"
        )),
    }
}

fn parse_solve(value: &Json) -> Result<SolveParams, String> {
    let model = value
        .get("model")
        .and_then(Json::as_str)
        .ok_or("solve: missing \"model\"")?
        .to_string();
    let kind = match value.get("lump").and_then(Json::as_str) {
        None | Some("ordinary") => LumpKind::Ordinary,
        Some("exact") => LumpKind::Exact,
        Some(other) => {
            return Err(format!(
                "solve: unknown lump {other:?} (want ordinary|exact)"
            ))
        }
    };
    let t = value.get("t").and_then(Json::as_f64);
    let measure = match value.get("measure").and_then(Json::as_str) {
        None | Some("stationary") => Measure::Stationary,
        Some(m @ ("transient" | "accumulated")) => {
            let t = t.ok_or_else(|| format!("solve: measure {m:?} needs a finite \"t\""))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("solve: \"t\" must be finite and >= 0, got {t}"));
            }
            if m == "transient" {
                Measure::Transient(t)
            } else {
                Measure::Accumulated(t)
            }
        }
        Some(other) => {
            return Err(format!(
                "solve: unknown measure {other:?} (want stationary|transient|accumulated)"
            ))
        }
    };
    let deadline_ms = value.get("deadline_ms").and_then(Json::as_u64);
    let tenant = value
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("anon")
        .to_string();
    let fallback = value
        .get("fallback")
        .and_then(Json::as_bool)
        .unwrap_or(true);
    let bounds = value.get("bounds").and_then(Json::as_bool).unwrap_or(false);
    let tolerance = match value.get("tolerance") {
        None => Tolerance::default(),
        Some(v) => {
            if v.as_str() == Some("exact") {
                Tolerance::Exact
            } else if let Some(n) = v.as_u64() {
                u32::try_from(n)
                    .map(Tolerance::Decimals)
                    .map_err(|_| format!("solve: \"tolerance\" out of range, got {n}"))?
            } else {
                return Err(
                    "solve: \"tolerance\" must be \"exact\" or a number of decimal digits".into(),
                );
            }
        }
    };
    if bounds && kind == LumpKind::Exact {
        return Err(
            "solve: \"bounds\" encloses measures of the ordinary-lumped chain \
                    (lump \"exact\" is not supported)"
                .into(),
        );
    }
    if bounds && matches!(measure, Measure::Accumulated(_)) {
        return Err(
            "solve: \"bounds\" supports the stationary and transient measures \
                    (accumulated rewards have no certified sweep)"
                .into(),
        );
    }
    Ok(SolveParams {
        model,
        kind,
        measure,
        deadline_ms,
        tenant,
        fallback,
        bounds,
        tolerance,
    })
}

/// Distills a ladder [`RunReport`] into wire rows.
pub fn attempt_rows(report: &RunReport) -> Vec<AttemptRow> {
    report
        .attempts
        .iter()
        .map(|a| AttemptRow {
            method: a.method.to_string(),
            kernel: a.kernel.map(str::to_string),
            outcome: a.outcome.label().to_string(),
            iterations: a.iterations as u64,
            elapsed_ms: a.elapsed.as_millis() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trips_fields() {
        let line = r#"{"cmd":"solve","model":"component a 2","lump":"exact",
            "measure":"transient","t":1.5,"deadline_ms":250,"tenant":"alice","fallback":false}"#
            .replace('\n', " ");
        let req = parse_request(&line).unwrap();
        let Request::Solve(p) = req else {
            panic!("not a solve")
        };
        assert_eq!(p.model, "component a 2");
        assert_eq!(p.kind, LumpKind::Exact);
        assert_eq!(p.measure, Measure::Transient(1.5));
        assert_eq!(p.deadline_ms, Some(250));
        assert_eq!(p.tenant, "alice");
        assert!(!p.fallback);
    }

    #[test]
    fn solve_defaults_are_stationary_ordinary_anon_fallback() {
        let req = parse_request(r#"{"cmd":"solve","model":"m"}"#).unwrap();
        let Request::Solve(p) = req else {
            panic!("not a solve")
        };
        assert_eq!(p.kind, LumpKind::Ordinary);
        assert_eq!(p.measure, Measure::Stationary);
        assert_eq!(p.deadline_ms, None);
        assert_eq!(p.tenant, "anon");
        assert!(p.fallback);
        assert!(!p.bounds);
        assert_eq!(p.tolerance, Tolerance::default());
    }

    #[test]
    fn bounds_requests_parse_with_tolerance() {
        let req =
            parse_request(r#"{"cmd":"solve","model":"m","bounds":true,"tolerance":2}"#).unwrap();
        let Request::Solve(p) = req else {
            panic!("not a solve")
        };
        assert!(p.bounds);
        assert_eq!(p.tolerance, Tolerance::Decimals(2));
        let req = parse_request(r#"{"cmd":"solve","model":"m","tolerance":"exact"}"#).unwrap();
        let Request::Solve(p) = req else {
            panic!("not a solve")
        };
        assert_eq!(p.tolerance, Tolerance::Exact);

        // Unsupported combinations are bad requests, not worker errors.
        let e = parse_request(r#"{"cmd":"solve","model":"m","bounds":true,"lump":"exact"}"#)
            .unwrap_err();
        assert!(e.contains("ordinary"), "{e}");
        let e = parse_request(
            r#"{"cmd":"solve","model":"m","bounds":true,"measure":"accumulated","t":1.0}"#,
        )
        .unwrap_err();
        assert!(e.contains("certified sweep"), "{e}");
        let e = parse_request(r#"{"cmd":"solve","model":"m","tolerance":"fuzzy"}"#).unwrap_err();
        assert!(e.contains("tolerance"), "{e}");
    }

    #[test]
    fn bounds_render_as_lo_hi_fields_bit_exactly() {
        let (lo, hi) = (0.1 + 0.2, 1.0 / 3.0 + 1.0);
        let ok = Response::Ok(OkBody {
            measure: 0.5 * (lo + hi),
            bounds: Some((lo, hi)),
            original_states: 8,
            lumped_states: 3,
            warm: false,
            elapsed_ms: 2,
            attempts: vec![],
        });
        let parsed = json::parse(&ok.render()).unwrap();
        let back_lo = parsed.get("measure_lo").and_then(Json::as_f64).unwrap();
        let back_hi = parsed.get("measure_hi").and_then(Json::as_f64).unwrap();
        assert_eq!(lo.to_bits(), back_lo.to_bits());
        assert_eq!(hi.to_bits(), back_hi.to_bits());
        // Scalar responses carry no bound fields at all.
        let ok = Response::Ok(OkBody {
            measure: 1.0,
            bounds: None,
            original_states: 1,
            lumped_states: 1,
            warm: false,
            elapsed_ms: 0,
            attempts: vec![],
        });
        let parsed = json::parse(&ok.render()).unwrap();
        assert!(parsed.get("measure_lo").is_none());
        assert!(parsed.get("measure_hi").is_none());
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(parse_request("not json").unwrap_err().contains("JSON"));
        assert!(parse_request(r#"{"x":1}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"fly"}"#)
            .unwrap_err()
            .contains("unknown cmd"));
        assert!(parse_request(r#"{"cmd":"solve"}"#)
            .unwrap_err()
            .contains("model"));
        assert!(
            parse_request(r#"{"cmd":"solve","model":"m","measure":"transient"}"#)
                .unwrap_err()
                .contains("\"t\"")
        );
        assert!(
            parse_request(r#"{"cmd":"solve","model":"m","lump":"fuzzy"}"#)
                .unwrap_err()
                .contains("lump")
        );
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn responses_render_the_status_trichotomy() {
        let ok = Response::Ok(OkBody {
            measure: 1.25,
            bounds: None,
            original_states: 8,
            lumped_states: 3,
            warm: true,
            elapsed_ms: 12,
            attempts: vec![AttemptRow {
                method: "jacobi".into(),
                kernel: Some("compiled".into()),
                outcome: "converged".into(),
                iterations: 41,
                elapsed_ms: 9,
            }],
        });
        let line = ok.render();
        let parsed = json::parse(&line).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("measure").and_then(Json::as_f64), Some(1.25));
        let attempts = parsed.get("attempts").and_then(Json::as_array).unwrap();
        assert_eq!(attempts.len(), 1);
        assert_eq!(
            attempts[0].get("outcome").and_then(Json::as_str),
            Some("converged")
        );

        let err = Response::Error {
            kind: ErrorKind::Interrupted,
            detail: "deadline of 5ms exceeded".into(),
        };
        let parsed = json::parse(&err.render()).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("interrupted")
        );

        let shed = Response::Shed {
            reason: ShedReason::QueueFull,
            retry_after_ms: 120,
        };
        let parsed = json::parse(&shed.render()).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("shed"));
        assert_eq!(
            parsed.get("retry_after_ms").and_then(Json::as_u64),
            Some(120)
        );
    }

    #[test]
    fn measure_survives_render_parse_bit_for_bit() {
        // The JSON layer must not perturb solve results: shortest
        // round-trip decimal in, exact f64 back out.
        for &m in &[1.0 / 3.0, 6.02e23, 1e-300, 0.1 + 0.2] {
            let ok = Response::Ok(OkBody {
                measure: m,
                bounds: None,
                original_states: 1,
                lumped_states: 1,
                warm: false,
                elapsed_ms: 0,
                attempts: vec![],
            });
            let parsed = json::parse(&ok.render()).unwrap();
            let back = parsed.get("measure").and_then(Json::as_f64).unwrap();
            assert_eq!(m.to_bits(), back.to_bits());
        }
    }
}
