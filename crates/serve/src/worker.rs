//! Request execution: the staged pipeline run by every worker thread,
//! wrapped in per-request fault isolation.
//!
//! A worker owns nothing; everything warm is in [`Shared`] — the
//! on-disk artifact store (crash-safe, advisory-locked) plus an
//! in-memory cache of compiled kernels keyed by lump-stage content key,
//! so concurrent requests for the same model share one compile.
//!
//! Isolation: [`run_job`] wraps the whole solve in `catch_unwind`, so a
//! panicking request (bug, or the `serve.request=panic` failpoint)
//! becomes a structured `internal` error instead of a dead worker; the
//! kernel cache is locked through [`crate::recover`], so a panic while
//! holding it poisons nothing permanently.
//!
//! Failpoints consulted here: `serve.request` (`err` → injected
//! internal error, `sleep:DUR` → deadline pressure, `panic` → the
//! catch_unwind path).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mdl_cli::commands::Measure;
use mdl_cli::error::CliError;
use mdl_core::{
    model_source_key, LumpKind, LumpRequest, Pipeline, SolveOutcome, SolveRequest, Staged,
};
use mdl_ctmc::{RunReport, SolverOptions, TransientOptions};
use mdl_md::CompiledMdMatrix;
use mdl_obs::{Budget, CancelToken};
use mdl_store::Store;

use crate::admission::Job;
use crate::protocol::{attempt_rows, ErrorKind, OkBody, Response, SolveParams};
use crate::recover;

/// How often checkpoint sinks snapshot long solves (iterations).
const CHECKPOINT_EVERY: usize = 256;

/// State shared by every worker: the artifact store and the in-memory
/// kernel cache. Cheap to share behind one `Arc`.
#[derive(Debug)]
pub struct Shared {
    /// The on-disk artifact store; `None` runs every stage in memory.
    pub store: Option<Store>,
    /// Threads each solve's kernel may use. Kept low by default — the
    /// server's parallelism axis is concurrent requests, not one solve.
    pub solve_threads: usize,
    /// Default deadline applied when a request names none.
    pub default_deadline: Option<Duration>,
    /// Upper bound any requested deadline is clamped to.
    pub max_deadline: Option<Duration>,
    /// Compiled kernels by lump-stage key: requests for the same model
    /// and lumping share one compiled product without touching disk.
    kernels: Mutex<HashMap<u64, Arc<CompiledMdMatrix>>>,
}

impl Shared {
    /// Shared state over `store` with the given solve limits.
    pub fn new(
        store: Option<Store>,
        solve_threads: usize,
        default_deadline: Option<Duration>,
        max_deadline: Option<Duration>,
    ) -> Self {
        Shared {
            store,
            solve_threads: solve_threads.max(1),
            default_deadline,
            max_deadline,
            kernels: Mutex::new(HashMap::new()),
        }
    }

    /// The effective deadline for a request asking for `requested_ms`.
    pub fn effective_deadline(&self, requested_ms: Option<u64>) -> Option<Duration> {
        let requested = requested_ms.map(Duration::from_millis);
        let wanted = requested.or(self.default_deadline);
        match (wanted, self.max_deadline) {
            (Some(w), Some(max)) => Some(w.min(max)),
            (Some(w), None) => Some(w),
            (None, max) => max,
        }
    }

    /// Number of kernels currently held warm in memory.
    pub fn warm_kernels(&self) -> usize {
        recover(&self.kernels).len()
    }
}

/// Executes one admitted job with full fault isolation and returns the
/// response to send. Never panics; never blocks past the request's
/// budget (modulo the cooperative check granularity of the phases).
pub fn run_job(shared: &Shared, job: &Job) -> Response {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        execute(shared, &job.params, &job.cancel, t0)
    }));
    let response = match result {
        Ok(response) => response,
        Err(payload) => {
            mdl_obs::counter("serve.panic_caught").inc();
            Response::Error {
                kind: ErrorKind::Internal,
                detail: format!("worker panicked: {}", panic_message(&payload)),
            }
        }
    };
    let elapsed = t0.elapsed();
    mdl_obs::counter("serve.requests").inc();
    mdl_obs::histogram("serve.latency_ms").record(elapsed.as_millis() as u64);
    match &response {
        Response::Ok(_) => mdl_obs::counter("serve.ok").inc(),
        Response::Error { kind, .. } => {
            mdl_obs::counter("serve.error").inc();
            if *kind == ErrorKind::Interrupted {
                mdl_obs::counter("serve.interrupted").inc();
            }
        }
        _ => {}
    }
    response
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies a CLI-layer error into the wire error kinds.
fn error_response(e: CliError) -> Response {
    match e {
        CliError::Interrupted(detail) => Response::Error {
            kind: ErrorKind::Interrupted,
            detail,
        },
        CliError::Failed(detail) => Response::Error {
            kind: ErrorKind::Failed,
            detail,
        },
    }
}

/// The staged solve itself: parse → build → lump → compile → solve →
/// measure, mirroring the one-shot CLI's orchestration so results are
/// bit-identical with it for the same model and measure.
fn execute(shared: &Shared, params: &SolveParams, cancel: &CancelToken, t0: Instant) -> Response {
    if let Some(injection) = mdl_obs::failpoint::hit("serve.request") {
        let _ = injection;
        return Response::Error {
            kind: ErrorKind::Internal,
            detail: "injected request failure (failpoint serve.request)".into(),
        };
    }
    let parsed = match mdl_cli::parse_model(&params.model) {
        Ok(p) => p,
        Err(e) => {
            return Response::Error {
                kind: ErrorKind::BadRequest,
                detail: format!("model: {e}"),
            }
        }
    };
    // The deadline budget; the client-disconnect token is layered on
    // via the request builders' `cancelled_by` so every phase (lump,
    // compile, solve) observes both.
    let deadline_budget = match shared.effective_deadline(params.deadline_ms) {
        Some(d) => Budget::unlimited().deadline_in(d),
        None => Budget::unlimited(),
    };
    let budget = deadline_budget.cancelled_by(cancel);

    let model_key = model_source_key(&params.model);
    let pipeline = match &shared.store {
        Some(store) => Pipeline::with_store(model_key, store.clone()),
        None => Pipeline::new(model_key),
    };

    let built = match pipeline.build(|| {
        parsed.build().map_err(|e| match e {
            mdl_models::ModelError::Core(c) => c,
            other => mdl_core::CoreError::Build {
                detail: other.to_string(),
            },
        })
    }) {
        Ok(b) => b,
        Err(e) => return error_response(e.into()),
    };

    // A bounds request takes its own path: a tolerance lump that records
    // the rate envelope, then certified lower/upper sweeps. The lump and
    // kernel are envelope-specific, so the warm caches do not apply.
    if params.bounds {
        let kernel_opts = mdl_core::KernelOptions {
            kind: mdl_core::KernelKind::Compiled,
            threads: shared.solve_threads,
        };
        return match mdl_cli::commands::certified_bounds(
            &built.value,
            params.measure,
            params.tolerance,
            &kernel_opts,
            &budget,
        ) {
            Ok(cb) => Response::Ok(OkBody {
                measure: 0.5 * (cb.bounds.lo + cb.bounds.hi),
                bounds: Some((cb.bounds.lo, cb.bounds.hi)),
                original_states: built.value.num_states() as u64,
                lumped_states: cb.lump.stats.lumped_states,
                warm: false,
                elapsed_ms: t0.elapsed().as_millis() as u64,
                attempts: attempt_rows(&cb.report),
            }),
            Err(e) => error_response(e),
        };
    }
    let lump_request = LumpRequest::new(params.kind)
        .tolerance(params.tolerance)
        .threads(shared.solve_threads)
        .budget(budget.clone())
        .cancelled_by(cancel);
    let lumped = match pipeline.lump(&built, &lump_request) {
        Ok(l) => l,
        Err(e) => return error_response(e.into()),
    };

    let (value, warm, report) = if params.kind == LumpKind::Exact {
        match solve_exact(&pipeline, &lumped, params.measure, &budget) {
            Ok((v, warm)) => (
                v,
                built.cached && lumped.cached && warm,
                RunReport::default(),
            ),
            Err(e) => return error_response(e),
        }
    } else {
        let lumped_mrp = Staged {
            value: lumped.value.mrp.clone(),
            key: lumped.key,
            cached: lumped.cached,
        };
        match solve_lumped(shared, &pipeline, &lumped_mrp, params, &budget, cancel) {
            Ok((v, warm, report)) => (v, built.cached && lumped.cached && warm, report),
            Err(e) => return error_response(e),
        }
    };

    Response::Ok(OkBody {
        measure: value,
        bounds: None,
        original_states: built.value.num_states() as u64,
        lumped_states: lumped.value.stats.lumped_states,
        warm,
        elapsed_ms: t0.elapsed().as_millis() as u64,
        attempts: attempt_rows(&report),
    })
}

fn solver_options(budget: &Budget) -> SolverOptions {
    SolverOptions {
        tolerance: 1e-12,
        budget: budget.clone(),
        ..SolverOptions::default()
    }
}

fn transient_options(budget: &Budget) -> TransientOptions {
    TransientOptions {
        budget: budget.clone(),
        ..TransientOptions::default()
    }
}

/// The exact-lump path: measures come from the lump's embedded
/// exit-rate measures; no kernel, no ladder.
fn solve_exact(
    pipeline: &Pipeline,
    lumped: &Staged<mdl_core::LumpResult>,
    measure: Measure,
    budget: &Budget,
) -> Result<(f64, bool), CliError> {
    let label = format!("exact:{measure:?}");
    let staged = pipeline.measure(lumped.key, &label, || {
        let measures = lumped
            .value
            .exact_measures()
            .expect("exact lump has exit rates");
        let sopts = solver_options(budget);
        let topts = transient_options(budget);
        let value = match measure {
            Measure::Stationary => measures.expected_stationary_reward(&sopts)?,
            Measure::Transient(t) => measures.expected_transient_reward(t, &topts)?,
            Measure::Accumulated(t) => measures.expected_accumulated_reward(t, &topts)?,
        };
        Ok(vec![value])
    })?;
    let value = staged
        .value
        .first()
        .copied()
        .ok_or_else(|| CliError::Failed("cached measure artifact is empty".into()))?;
    Ok((value, staged.cached))
}

/// The ordinary-lump path: compile (or reuse) the kernel, solve through
/// the ladder, checkpoint long solves into the store and resume from a
/// prior interrupted run's snapshot.
fn solve_lumped(
    shared: &Shared,
    pipeline: &Pipeline,
    lumped_mrp: &Staged<mdl_core::MdMrp>,
    params: &SolveParams,
    budget: &Budget,
    cancel: &CancelToken,
) -> Result<(f64, bool, RunReport), CliError> {
    let kernel_opts = mdl_core::KernelOptions {
        kind: mdl_core::KernelKind::Compiled,
        threads: shared.solve_threads,
    };
    let mut sopts = solver_options(budget);
    let mut topts = transient_options(budget);
    let base = request_for(params.measure, &sopts, &topts, &kernel_opts).fallback(params.fallback);
    let solve_key = pipeline.solve_key(lumped_mrp.key, &base);

    // Long solves snapshot into the store so a drain or deadline leaves
    // resumable progress; a finished solve clears its snapshot.
    if pipeline.store().is_some() {
        match params.measure {
            Measure::Stationary => {
                sopts.checkpoint = pipeline.stationary_checkpoint_sink(solve_key, CHECKPOINT_EVERY);
            }
            Measure::Transient(_) => {
                topts.checkpoint = pipeline.transient_checkpoint_sink(solve_key, CHECKPOINT_EVERY);
            }
            Measure::Accumulated(_) => {}
        }
        if let Some(ck) = pipeline.load_checkpoint(solve_key) {
            mdl_obs::counter("serve.resumed").inc();
            match params.measure {
                Measure::Stationary => sopts.warm_start = Some(ck.iterate),
                Measure::Transient(_) => topts.resume_from = mdl_core::transient_resume(&ck),
                Measure::Accumulated(_) => {}
            }
        }
    }

    // Kernel: in-memory cache first (shared across requests), then the
    // store (mapped kernel image preferred — concurrent workers share
    // one mmap(2) region through the process-wide mapping cache), then
    // a fresh compile. A compile failure under the fallback ladder is
    // survivable — the walk/flat-CSR rungs need no kernel.
    let cached_kernel = recover(&shared.kernels).get(&lumped_mrp.key).cloned();
    let (prebuilt, kernel_warm) = match cached_kernel {
        Some(k) => {
            mdl_obs::counter("serve.kernel_memory_hit").inc();
            (Some(k), true)
        }
        None => match pipeline.compile(lumped_mrp, shared.solve_threads, budget) {
            Ok(staged) => {
                recover(&shared.kernels).insert(lumped_mrp.key, staged.value.clone());
                (Some(staged.value), staged.cached)
            }
            Err(_) if params.fallback => {
                mdl_obs::counter("pipeline.compile.failed").inc();
                (None, false)
            }
            Err(e) => return Err(e.into()),
        },
    };

    let mut request = request_for(params.measure, &sopts, &topts, &kernel_opts)
        .fallback(params.fallback)
        .cancelled_by(cancel);
    if let Some(k) = prebuilt {
        request = request.prebuilt_kernel(k);
    }
    let (outcome, run_report) = pipeline.solve(lumped_mrp, &request);
    let staged = outcome.map_err(CliError::from)?;
    let value = expected_reward(&lumped_mrp.value, staged.value)?;
    if pipeline.store().is_some() {
        pipeline.clear_checkpoint(solve_key)?;
    }
    Ok((value, kernel_warm && staged.cached, run_report))
}

fn request_for(
    measure: Measure,
    sopts: &SolverOptions,
    topts: &TransientOptions,
    kernel: &mdl_core::KernelOptions,
) -> SolveRequest {
    let request = match measure {
        Measure::Stationary => SolveRequest::stationary(),
        Measure::Transient(t) => SolveRequest::transient(t),
        Measure::Accumulated(t) => SolveRequest::accumulated_reward(t),
    };
    request
        .solver_options(sopts.clone())
        .transient_options(topts.clone())
        .kernel(kernel.kind)
        .threads(kernel.threads)
}

fn expected_reward(mrp: &mdl_core::MdMrp, outcome: SolveOutcome) -> Result<f64, CliError> {
    match outcome {
        SolveOutcome::Distribution(sol) => Ok(sol.try_expected_reward(&mrp.reward_vector())?),
        SolveOutcome::Value(v) => Ok(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ShedReason;
    use std::sync::mpsc;

    pub(crate) const MODEL: &str = crate::EXAMPLE_MODEL;

    fn shared() -> Shared {
        Shared::new(None, 1, None, None)
    }

    fn solve_params(model: &str) -> SolveParams {
        SolveParams {
            model: model.to_string(),
            kind: LumpKind::Ordinary,
            measure: Measure::Stationary,
            deadline_ms: None,
            tenant: "test".into(),
            fallback: true,
            bounds: false,
            tolerance: mdl_linalg::Tolerance::default(),
        }
    }

    fn job_for(params: SolveParams) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                params,
                cancel: CancelToken::new(),
                respond: tx,
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn solve_job_returns_ok_with_ladder_log() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        let (job, _rx) = job_for(solve_params(MODEL));
        let shared = shared();
        match run_job(&shared, &job) {
            Response::Ok(body) => {
                assert!(body.measure.is_finite());
                assert!(body.lumped_states > 0);
                assert!(body.lumped_states <= body.original_states);
                assert!(!body.attempts.is_empty(), "ladder log rides along");
                assert_eq!(body.attempts.last().unwrap().outcome, "converged");
            }
            other => panic!("expected ok, got {other:?}"),
        }
        // Warm kernel is retained for the next request of this model.
        assert_eq!(shared.warm_kernels(), 1);
    }

    #[test]
    fn bounds_job_returns_an_enclosing_interval() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        let mut params = solve_params(MODEL);
        params.bounds = true;
        let (job, _rx) = job_for(params);
        let shared = shared();
        match run_job(&shared, &job) {
            Response::Ok(body) => {
                let (lo, hi) = body.bounds.expect("bounds solve returns an interval");
                assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
                assert!(lo <= body.measure && body.measure <= hi);
                assert!(!body.attempts.is_empty(), "sweep log rides along");
            }
            other => panic!("expected ok, got {other:?}"),
        }
        // The scalar solve of the same model agrees with the enclosure
        // up to its own iteration tolerance.
        let (job, _rx) = job_for(solve_params(MODEL));
        match run_job(&shared, &job) {
            Response::Ok(body) => assert!(body.bounds.is_none()),
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn malformed_model_is_a_bad_request_error() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        let (job, _rx) = job_for(solve_params("component only-half"));
        match run_job(&shared(), &job) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_is_caught_as_internal_error() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::set_enabled(true);
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("serve.request", "panic").unwrap();
        let (job, _rx) = job_for(solve_params(MODEL));
        let before = mdl_obs::counter("serve.panic_caught").get();
        match run_job(&shared(), &job) {
            Response::Error { kind, detail } => {
                assert_eq!(kind, ErrorKind::Internal);
                assert!(detail.contains("panicked"), "detail: {detail}");
            }
            other => panic!("expected internal error, got {other:?}"),
        }
        mdl_obs::failpoint::clear();
        assert!(mdl_obs::counter("serve.panic_caught").get() > before);
        // The worker is still usable after the panic.
        let (job, _rx) = job_for(solve_params(MODEL));
        assert!(matches!(run_job(&shared(), &job), Response::Ok(_)));
    }

    #[test]
    fn injected_failure_is_an_honest_internal_error() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("serve.request", "err").unwrap();
        let (job, _rx) = job_for(solve_params(MODEL));
        match run_job(&shared(), &job) {
            Response::Error { kind, detail } => {
                assert_eq!(kind, ErrorKind::Internal);
                assert!(detail.contains("failpoint"));
            }
            other => panic!("expected error, got {other:?}"),
        }
        mdl_obs::failpoint::clear();
    }

    #[test]
    fn expired_deadline_interrupts_with_distinct_kind() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        let mut params = solve_params(MODEL);
        params.deadline_ms = Some(0);
        let (job, _rx) = job_for(params);
        match run_job(&shared(), &job) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Interrupted),
            other => panic!("expected interrupted, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_interrupts_the_solve() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        let (mut job, _rx) = job_for(solve_params(MODEL));
        job.cancel.cancel();
        match run_job(&shared(), &job) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Interrupted),
            other => panic!("expected interrupted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_clamping_honors_default_and_max() {
        let s = Shared::new(
            None,
            1,
            Some(Duration::from_millis(100)),
            Some(Duration::from_millis(500)),
        );
        assert_eq!(s.effective_deadline(None), Some(Duration::from_millis(100)));
        assert_eq!(
            s.effective_deadline(Some(200)),
            Some(Duration::from_millis(200))
        );
        assert_eq!(
            s.effective_deadline(Some(10_000)),
            Some(Duration::from_millis(500))
        );
        let unbounded = Shared::new(None, 1, None, None);
        assert_eq!(unbounded.effective_deadline(None), None);
    }

    #[test]
    fn shed_reason_labels_are_wire_stable() {
        assert_eq!(ShedReason::QueueFull.label(), "queue-full");
        assert_eq!(ShedReason::TenantCap.label(), "tenant-cap");
        assert_eq!(ShedReason::Draining.label(), "draining");
    }
}
