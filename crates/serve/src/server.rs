//! The daemon: TCP accept loop, connection handlers, worker pool and
//! graceful drain.
//!
//! Thread anatomy (all std):
//!
//! * **acceptor** — nonblocking `TcpListener`, polls the shutdown flag
//!   between accepts; one handler thread per connection.
//! * **handlers** — read request lines (with a short read timeout so
//!   drain and disconnects are noticed promptly), run admission
//!   control, and wait for the worker's response while watching the
//!   socket for client disconnect (which cancels the in-flight solve's
//!   budget token).
//! * **workers** — pull jobs from the [`Admission`] queue, execute them
//!   with per-request `catch_unwind` isolation ([`worker::run_job`]),
//!   send the response back through the job's channel.
//!
//! Drain (SIGTERM or the `shutdown` command): the acceptor stops, the
//! admission gate sheds new work, queued and in-flight jobs run to
//! completion (their deadlines still bound them; interrupted solves
//! leave resumable checkpoints), handlers notice the drain flag and
//! close, workers exit on the empty queue, and [`Server::join`] sweeps
//! stale cache debris and flushes metrics before returning.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdl_obs::json::JsonObject;
use mdl_obs::CancelToken;
use mdl_store::Store;

use crate::admission::{Admission, AdmissionConfig, Job, Next};
use crate::protocol::{parse_request, ErrorKind, Request, Response};
use crate::worker::{run_job, Shared};

/// Poll period for the accept loop, handler reads and worker waits —
/// the latency bound on noticing drain or disconnect.
const POLL: Duration = Duration::from_millis(25);

/// Server configuration (see `mdl-serve --help` for the flag mapping).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7117` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing solves.
    pub workers: usize,
    /// Bounded queue length (admission control).
    pub queue_limit: usize,
    /// Per-tenant in-flight cap.
    pub tenant_cap: usize,
    /// Threads each individual solve may use.
    pub solve_threads: usize,
    /// Deadline applied to requests that name none.
    pub default_deadline: Option<Duration>,
    /// Clamp on requested deadlines.
    pub max_deadline: Option<Duration>,
    /// Artifact-store directory; `None` serves without persistence.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_limit: 32,
            tenant_cap: 8,
            solve_threads: 1,
            default_deadline: Some(Duration::from_secs(30)),
            max_deadline: Some(Duration::from_secs(300)),
            cache_dir: None,
        }
    }
}

/// A running daemon. Dropping without [`join`](Server::join) leaves the
/// threads detached; tests and `main` should always join.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    admission: Arc<Admission>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    store: Option<Store>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns the
    /// running server.
    ///
    /// # Errors
    ///
    /// Bind/store-open failures as `std::io::Error`.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let store = match &cfg.cache_dir {
            Some(dir) => Some(
                Store::open(dir).map_err(|e| std::io::Error::other(format!("cache dir: {e}")))?,
            ),
            None => None,
        };
        // Clear debris a previous crashed process may have left; our
        // own writers' fresh locks are never this old.
        if let Some(s) = &store {
            let _ = s.sweep_debris(false);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let admission = Arc::new(Admission::new(AdmissionConfig {
            queue_limit: cfg.queue_limit,
            tenant_cap: cfg.tenant_cap,
            workers: cfg.workers,
        }));
        let shared = Arc::new(Shared::new(
            store.clone(),
            cfg.solve_threads,
            cfg.default_deadline,
            cfg.max_deadline,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let admission = admission.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&admission, &shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let admission = admission.clone();
            let shutdown = shutdown.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(listener, &admission, &shutdown, &connections))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            admission,
            shutdown,
            connections,
            store,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether drain has been initiated.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates graceful drain: stop accepting, shed new admissions,
    /// let queued and in-flight work finish. Idempotent.
    pub fn drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.admission.drain();
    }

    /// Drains (if not already draining) and waits for every thread to
    /// finish, then sweeps cache debris and flushes metrics. Returns
    /// when the daemon is fully stopped.
    pub fn join(self) {
        self.drain();
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        // Handlers exit on drain/EOF within a poll period; give
        // stragglers a bounded grace window.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        if let Some(store) = &self.store {
            // Force: all our writers have exited, so any remaining
            // lock/tmp file is debris by construction.
            let _ = store.sweep_debris(true);
        }
        mdl_obs::flush();
    }
}

fn worker_loop(admission: &Admission, shared: &Shared) {
    loop {
        match admission.next(POLL) {
            Next::Job(job) => {
                let t0 = Instant::now();
                let response = run_job(shared, &job);
                admission.record_service(t0.elapsed());
                // A gone handler (client vanished mid-queue) is fine.
                let _ = job.respond.send(response);
                admission.finish(&job.params.tenant);
            }
            Next::Idle => continue,
            Next::Drained => break,
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    admission: &Arc<Admission>,
    shutdown: &Arc<AtomicBool>,
    connections: &Arc<AtomicUsize>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                mdl_obs::counter("serve.connections").inc();
                connections.fetch_add(1, Ordering::SeqCst);
                let admission = admission.clone();
                let shutdown = shutdown.clone();
                let conn_count = connections.clone();
                let spawned =
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &admission, &shutdown);
                            conn_count.fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Serves one connection: request lines in, response lines out, in
/// lockstep. Returns on EOF, I/O error, or drain.
fn handle_connection(
    stream: TcpStream,
    admission: &Arc<Admission>,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Read one line, tolerating read timeouts (partial data stays
        // in `line` across iterations of the inner loop).
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break false,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) && line.is_empty() {
                        // Draining and idle: close the connection.
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        };
        if eof {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line.trim()) {
            Err(detail) => Response::Error {
                kind: ErrorKind::BadRequest,
                detail,
            },
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(stats_body(admission)),
            Ok(Request::Shutdown) => {
                // Same path as SIGTERM: flag first (stops the acceptor),
                // then drain the admission gate.
                crate::signal::trigger();
                shutdown.store(true, Ordering::SeqCst);
                admission.drain();
                Response::Draining
            }
            Ok(Request::Solve(params)) => solve_on_connection(params, admission, reader.get_ref())?,
        };
        writer.write_all(response.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if matches!(response, Response::Draining) {
            return Ok(());
        }
    }
}

/// Admits and awaits one solve, cancelling it if the client vanishes.
fn solve_on_connection(
    params: crate::protocol::SolveParams,
    admission: &Arc<Admission>,
    stream: &TcpStream,
) -> std::io::Result<Response> {
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        params,
        cancel: cancel.clone(),
        respond: tx,
        enqueued: Instant::now(),
    };
    if let Err(shed) = admission.try_admit(job) {
        return Ok(shed.1);
    }
    loop {
        match rx.recv_timeout(POLL) {
            Ok(response) => return Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if client_gone(stream) {
                    // Cancel the in-flight solve; keep waiting for the
                    // worker's (now interrupted) response so tenant
                    // accounting stays exact, then drop it.
                    cancel.cancel();
                    mdl_obs::counter("serve.client_gone").inc();
                    let _ = rx.recv_timeout(Duration::from_secs(600));
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "client disconnected mid-solve",
                    ));
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Worker dropped the channel without responding — can
                // only happen if its thread died outside catch_unwind.
                return Ok(Response::Error {
                    kind: ErrorKind::Internal,
                    detail: "worker abandoned the request".into(),
                });
            }
        }
    }
}

/// Whether the peer has closed: a zero-byte peek means EOF. WouldBlock
/// (no data, still open) and other transient errors mean "alive".
fn client_gone(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    matches!(stream.peek(&mut probe), Ok(0))
}

/// The `stats` response body: queue/occupancy gauges plus the latency
/// histogram's quantiles from the obs registry.
fn stats_body(admission: &Admission) -> String {
    let mut obj = JsonObject::new();
    obj.u64("queue_depth", admission.depth() as u64)
        .bool("draining", admission.draining())
        .u64("queue_limit", admission.config().queue_limit as u64)
        .u64("tenant_cap", admission.config().tenant_cap as u64);
    let report = mdl_obs::snapshot();
    for name in [
        "serve.requests",
        "serve.ok",
        "serve.error",
        "serve.interrupted",
        "serve.shed",
        "serve.panic_caught",
        "serve.lock_poisoned",
        "serve.client_gone",
        "store.invalid",
    ] {
        let value = report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value);
        obj.u64(&name.replace('.', "_"), value);
    }
    if let Some(h) = report
        .histograms
        .iter()
        .find(|h| h.name == "serve.latency_ms")
    {
        obj.u64("latency_p50_ms", h.p50)
            .u64("latency_p90_ms", h.p90)
            .u64("latency_p99_ms", h.p99);
    }
    obj.close()
}
