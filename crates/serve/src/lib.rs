//! `mdl-serve`: a fault-tolerant solver daemon.
//!
//! The library half of the `mdl-serve` binary: a persistent,
//! multi-threaded TCP server that answers solve requests over a
//! line-delimited JSON protocol ([`protocol`]), shares one on-disk
//! artifact store plus an in-memory kernel cache across concurrent
//! requests ([`worker::Shared`]), and treats failure as the normal
//! case:
//!
//! * **admission control** ([`admission`]) — bounded queue, per-tenant
//!   in-flight caps, honest shed responses with retry-after hints;
//! * **per-request isolation** ([`worker`]) — `catch_unwind` around
//!   every solve, poisoned locks recovered ([`recover`]), deadlines and
//!   client-disconnect cancellation enforced through [`mdl_obs::Budget`];
//! * **graceful degradation** — retryable solver failures walk the
//!   jacobi→power→walk→flat-CSR ladder and the attempt log rides back
//!   to the client;
//! * **graceful drain** ([`server`], [`signal`]) — SIGTERM stops the
//!   accept loop, lets in-flight work finish (interrupted solves leave
//!   resumable checkpoints), flushes metrics and sweeps cache debris.
//!
//! Every request terminates in exactly one of: a correct result, a
//! structured error, or a shed-with-retry — the trichotomy the chaos
//! suite (`tests/serve.rs`) asserts under injected faults.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod worker;

use std::sync::{Mutex, MutexGuard};

/// The doc example model from `mdl_cli`: two components, three events,
/// a summed reward. Small enough to solve in microseconds, rich enough
/// to exercise lumping — the acceptance suite and `mdl-bench serve` use
/// it as their canonical request payload.
pub const EXAMPLE_MODEL: &str = "\
component ctrl 2 initial 0
component workers 4 initial 0

event toggle rate 0.2
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event work_high rate 1.5
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 1 2 1.0
  factor workers 2 3 1.0

event finish rate 1.0
  factor workers 1 0 1.0
  factor workers 2 1 1.0
  factor workers 3 2 1.0

reward sum
  value workers 1 1.0
  value workers 2 2.0
  value workers 3 3.0
";

/// Locks `m`, recovering from poisoning instead of propagating it: a
/// worker that panicked while holding a shared lock must not take the
/// daemon down with it. Recoveries are counted on
/// `serve.lock_poisoned`; the guarded state is designed so any
/// half-update a panicking holder left behind is safe (caches may lose
/// an entry's worth of warmth, never correctness — artifacts are
/// validated on read).
pub fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        mdl_obs::counter("serve.lock_poisoned").inc();
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recover_yields_the_inner_state_after_a_poisoning_panic() {
        let shared = Arc::new(Mutex::new(7u32));
        let clone = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.is_poisoned());
        // A plain lock() would error; recover() hands back the state.
        let mut guard = recover(&shared);
        assert_eq!(*guard, 7);
        *guard = 8;
        drop(guard);
        assert_eq!(*recover(&shared), 8);
    }
}
