//! Property-based tests for the sparse linear-algebra substrate.

use proptest::prelude::*;

use mdl_linalg::{kron, vec_ops, CooMatrix, CsrMatrix, RateMatrix, Tolerance};

fn matrix(n: usize, max_entries: usize) -> impl Strategy<Value = CsrMatrix> {
    let entry = (
        0..n,
        0..n,
        prop::sample::select(vec![0.25, 0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..max_entries).prop_map(move |entries| {
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in entries {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop::sample::select(vec![-1.0, 0.0, 0.5, 1.0, 2.0]), n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn transpose_is_involutive(m in matrix(6, 20)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_products(m in matrix(6, 20), x in vector(6)) {
        // x·M == Mᵀ·x
        let mut a = vec![0.0; 6];
        m.acc_vec_mat(&x, &mut a);
        let mut b = vec![0.0; 6];
        m.transpose().acc_mat_vec(&x, &mut b);
        prop_assert!(vec_ops::max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn coo_round_trip(m in matrix(5, 15)) {
        prop_assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn row_sums_match_ones_product(m in matrix(7, 25)) {
        let ones = vec![1.0; 7];
        let mut y = vec![0.0; 7];
        m.acc_mat_vec(&ones, &mut y);
        prop_assert!(vec_ops::max_abs_diff(&y, &m.row_sums_vec()) < 1e-12);
    }

    #[test]
    fn kron_mixed_product_with_vectors(a in matrix(3, 8), b in matrix(3, 8), x in vector(9)) {
        // (A ⊗ B)·x computed directly vs. via the Kronecker identity
        // reshaping x as a 3×3 matrix: (A ⊗ B)vec(X) = vec(A X Bᵀ)
        // — checked entrywise through the explicit product instead.
        let k = kron(&a, &b);
        let mut direct = vec![0.0; 9];
        k.acc_mat_vec(&x, &mut direct);
        let mut manual = vec![0.0; 9];
        for (i, j, av) in a.iter() {
            for (p, q, bv) in b.iter() {
                manual[i * 3 + p] += av * bv * x[j * 3 + q];
            }
        }
        prop_assert!(vec_ops::max_abs_diff(&direct, &manual) < 1e-12);
    }

    #[test]
    fn kron_row_sums_factor(a in matrix(3, 8), b in matrix(4, 10)) {
        // rs(A ⊗ B)(i·nb + p) = rs(A)(i) · rs(B)(p)
        let k = kron(&a, &b);
        let ka = a.row_sums_vec();
        let kb = b.row_sums_vec();
        let ks = k.row_sums_vec();
        for i in 0..3 {
            for p in 0..4 {
                prop_assert!((ks[i * 4 + p] - ka[i] * kb[p]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn max_abs_diff_is_a_metric(a in matrix(5, 15), b in matrix(5, 15)) {
        prop_assert_eq!(a.max_abs_diff(&a), 0.0);
        prop_assert_eq!(a.max_abs_diff(&b), b.max_abs_diff(&a));
    }

    #[test]
    fn tolerance_eq_is_reflexive_and_symmetric(v in -1e6f64..1e6, w in -1e6f64..1e6) {
        for tol in [Tolerance::Exact, Tolerance::Decimals(9), Tolerance::Decimals(3)] {
            prop_assert!(tol.eq(v, v));
            prop_assert_eq!(tol.eq(v, w), tol.eq(w, v));
        }
    }

    #[test]
    fn vec_ops_axpy_linear(x in vector(6), y in vector(6), alpha in -2.0f64..2.0) {
        let mut z = y.clone();
        vec_ops::axpy(alpha, &x, &mut z);
        for i in 0..6 {
            prop_assert!((z[i] - (y[i] + alpha * x[i])).abs() < 1e-12);
        }
    }
}
