use crate::{CooMatrix, RateMatrix};

/// A sparse matrix in compressed-sparse-row format.
///
/// `CsrMatrix` is the flat representation used for explicit CTMC analysis and
/// for the optimal state-level lumping baseline. Entries within a row are
/// sorted by column and duplicate-free (guaranteed by construction via
/// [`CooMatrix::to_csr`]).
///
/// # Example
///
/// ```
/// use mdl_linalg::{CooMatrix, CsrMatrix};
///
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 2, 1.0);
/// coo.push(1, 0, 3.0);
/// let m: CsrMatrix = coo.to_csr();
/// assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(0, 3.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix directly from raw CSR arrays.
    ///
    /// This is intended for format converters; most callers should assemble
    /// a [`CooMatrix`] and convert.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length must be nrows + 1");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must align");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must cover all entries"
        );
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(col_idx.iter().all(|&c| (c as usize) < ncols));
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// [`Self::from_raw_parts`] with full always-on validation, for input
    /// that crossed a serialization boundary and cannot be trusted.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural
    /// inconsistency: wrong `row_ptr` length, misaligned `col_idx`/`values`,
    /// non-monotonic `row_ptr`, out-of-range column, or non-finite value.
    pub fn try_from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if row_ptr.len() != nrows + 1 {
            return Err(format!(
                "row_ptr has length {}, expected nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            ));
        }
        if col_idx.len() != values.len() {
            return Err(format!(
                "col_idx has {} entries but values has {}",
                col_idx.len(),
                values.len()
            ));
        }
        if row_ptr[0] != 0 {
            return Err(format!("row_ptr must start at 0, found {}", row_ptr[0]));
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(format!(
                "row_ptr ends at {} but there are {} entries",
                row_ptr.last().unwrap(),
                col_idx.len()
            ));
        }
        if let Some(w) = row_ptr.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!("row_ptr is not monotonic ({} > {})", w[0], w[1]));
        }
        if let Some((i, &c)) = col_idx
            .iter()
            .enumerate()
            .find(|&(_, &c)| (c as usize) >= ncols)
        {
            return Err(format!(
                "column index {c} at entry {i} is out of range for {ncols} columns"
            ));
        }
        if let Some((i, &v)) = values.iter().enumerate().find(|&(_, &v)| !v.is_finite()) {
            return Err(format!("non-finite value {v} at entry {i}"));
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The raw row-pointer array (`nrows + 1` entries). Paired with
    /// [`Self::col_idx_raw`] / [`Self::values_raw`] for format converters.
    pub fn row_ptr_raw(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array, parallel to [`Self::values_raw`].
    pub fn col_idx_raw(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array, parallel to [`Self::col_idx_raw`].
    pub fn values_raw(&self) -> &[f64] {
        &self.values
    }

    /// Creates an empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(row, col)`, or `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored entries of one row as `(col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Sum of each row (`rs(A)` in the paper's notation, as a vector).
    pub fn row_sums_vec(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.nrows];
        for (r, s) in sums.iter_mut().enumerate() {
            *s = self.row(r).map(|(_, v)| v).sum();
        }
        sums
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.ncols + 1);
        row_ptr.push(0);
        for c in 0..self.ncols {
            row_ptr.push(row_ptr[c] + counts[c]);
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for (r, c, v) in self.iter() {
            let slot = next[c];
            col_idx[slot] = r as u32;
            values[slot] = v;
            next[c] += 1;
        }
        CsrMatrix::from_raw_parts(self.ncols, self.nrows, row_ptr, col_idx, values)
    }

    /// Converts back to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        coo.extend(self.iter());
        coo
    }

    /// Approximate memory footprint of the matrix in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Maximum absolute difference between two matrices of equal dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &CsrMatrix) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let mut diff: f64 = 0.0;
        for r in 0..self.nrows {
            let mut a: std::collections::HashMap<usize, f64> = self.row(r).collect();
            for (c, v) in other.row(r) {
                let e = a.entry(c).or_insert(0.0);
                *e -= v;
            }
            for (_, v) in a {
                diff = diff.max(v.abs());
            }
        }
        diff
    }
}

impl RateMatrix for CsrMatrix {
    fn num_states(&self) -> usize {
        debug_assert_eq!(self.nrows, self.ncols, "rate matrices are square");
        self.nrows
    }

    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr += acc;
        }
    }

    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[k] as usize] += self.values[k] * xr;
            }
        }
    }

    fn row_sums(&self) -> Vec<f64> {
        self.row_sums_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn get_present_and_absent() {
        let m = sample();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 4.0);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let id = CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        id.acc_mat_vec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn mat_vec_and_vec_mat_agree_with_transpose() {
        let m = sample();
        let t = m.transpose();
        let x = vec![1.0, -2.0, 0.5];
        let mut y1 = vec![0.0; 3];
        m.acc_vec_mat(&x, &mut y1); // y1 = x M
        let mut y2 = vec![0.0; 3];
        t.acc_mat_vec(&x, &mut y2); // y2 = M^T x = (x M)^T
        assert_eq!(y1, y2);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_sums_match_manual() {
        let m = sample();
        assert_eq!(m.row_sums_vec(), vec![5.0, 1.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let m = sample();
        assert_eq!(m.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let m = sample();
        let mut coo = m.to_coo();
        coo.push(1, 1, 0.25);
        let n = coo.to_csr();
        assert_eq!(m.max_abs_diff(&n), 0.25);
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(sample().memory_bytes() > 0);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.get(2, 1), 0.0);
    }
}
