//! Dense-vector kernels used by the iterative CTMC solvers.
//!
//! These are deliberately plain, allocation-free loops over slices: iteration
//! vectors are the memory bottleneck of symbolic CTMC analysis (the paper's
//! motivation), so the solver layer keeps exactly as many of them as the
//! algorithm requires and reuses them across iterations.

/// Sets every element of `x` to `value`.
pub fn fill(x: &mut [f64], value: f64) {
    for e in x.iter_mut() {
        *e = value;
    }
}

/// `y += alpha * x` for equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sum of all elements.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Multiplies every element by `alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for e in x.iter_mut() {
        *e *= alpha;
    }
}

/// Normalizes `x` so its elements sum to one; returns the original sum.
///
/// If the sum is zero the vector is left unchanged and `0.0` is returned.
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let s = sum(x);
    if s != 0.0 {
        scale(x, 1.0 / s);
    }
    s
}

/// Normalizes `x` to unit L1 sum (same arithmetic as [`normalize_l1`])
/// while computing the ∞-norm difference between the *normalized* `x` and
/// `reference` in the same pass; returns that difference.
///
/// This fuses the two vector passes an iterative solver performs per
/// iteration (normalize, then compare against the previous iterate), so
/// convergence can be checked every iteration at no extra traversal cost.
/// The result is bit-identical to `normalize_l1(x)` followed by
/// `max_abs_diff(x, reference)`. A zero-sum `x` is left unscaled, exactly
/// like [`normalize_l1`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalize_l1_max_diff(x: &mut [f64], reference: &[f64]) -> f64 {
    normalize_l1_max_diff_guarded(x, reference).0
}

/// The guarded form of [`normalize_l1_max_diff`]: identical arithmetic,
/// but the pre-normalization L1 sum is returned alongside the residual
/// as `(diff, sum)`.
///
/// The sum is the right divergence sentinel: `f64::max` propagates a
/// *finite* result past NaN operands, so a poisoned iterate can leave
/// the ∞-norm residual looking healthy — but any non-finite element
/// makes the sum non-finite (NaN contaminates addition, and infinities
/// cannot cancel back to a finite value: `inf + (-inf)` is NaN). Callers
/// should treat a non-finite sum as a diverged iterate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalize_l1_max_diff_guarded(x: &mut [f64], reference: &[f64]) -> (f64, f64) {
    assert_eq!(
        x.len(),
        reference.len(),
        "normalize_l1_max_diff length mismatch"
    );
    let s = sum(x);
    let mut diff = 0.0f64;
    if s != 0.0 {
        let inv = 1.0 / s;
        for (xi, r) in x.iter_mut().zip(reference) {
            *xi *= inv;
            diff = f64::max(diff, (r - *xi).abs());
        }
    } else {
        for (xi, r) in x.iter().zip(reference) {
            diff = f64::max(diff, (r - xi).abs());
        }
    }
    (diff, s)
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Maximum absolute value of a slice (`‖x‖∞`).
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().map(|a| a.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalize_l1_sums_to_one() {
        let mut x = vec![1.0, 3.0];
        let s = normalize_l1(&mut x);
        assert_eq!(s, 4.0);
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize_l1(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_l1_max_diff_matches_two_pass() {
        let reference = vec![0.2, 0.3, 0.5];
        let mut fused = vec![1.0, 3.0, 4.0];
        let mut two_pass = fused.clone();
        let d = normalize_l1_max_diff(&mut fused, &reference);
        normalize_l1(&mut two_pass);
        assert_eq!(fused, two_pass, "bit-identical normalization");
        assert_eq!(d, max_abs_diff(&two_pass, &reference));
    }

    #[test]
    fn normalize_l1_max_diff_zero_sum_skips_scaling() {
        let mut x = vec![0.0, 0.0];
        let d = normalize_l1_max_diff(&mut x, &[0.25, 0.75]);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(d, 0.75);
    }

    #[test]
    fn guarded_pass_returns_sum_and_matches_unguarded() {
        let mut a = vec![1.0, 3.0];
        let mut b = a.clone();
        let reference = [0.5, 0.5];
        let d = normalize_l1_max_diff(&mut a, &reference);
        let (dg, s) = normalize_l1_max_diff_guarded(&mut b, &reference);
        assert_eq!(a, b);
        assert_eq!(d, dg);
        assert_eq!(s, 4.0);
    }

    #[test]
    fn guarded_pass_exposes_nan_masked_by_max() {
        // A NaN in the iterate: f64::max skips it, so the residual can
        // come out finite — the sum is the reliable sentinel.
        let mut x = vec![0.5, f64::NAN];
        let (d, s) = normalize_l1_max_diff_guarded(&mut x, &[0.5, 0.5]);
        assert!(s.is_nan());
        assert!(d == 0.0 || d.is_nan()); // max masked the NaN lane
    }

    #[test]
    fn guarded_pass_exposes_infinite_iterate() {
        let mut x = vec![f64::INFINITY, 1.0];
        let (_, s) = normalize_l1_max_diff_guarded(&mut x, &[0.5, 0.5]);
        assert!(!s.is_finite());
        let mut y = vec![f64::INFINITY, f64::NEG_INFINITY];
        let (_, s) = normalize_l1_max_diff_guarded(&mut y, &[0.5, 0.5]);
        assert!(s.is_nan(), "opposing infinities cannot cancel to finite");
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn fill_and_scale() {
        let mut x = vec![0.0; 3];
        fill(&mut x, 2.0);
        scale(&mut x, 3.0);
        assert_eq!(x, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }
}
