//! Dense-vector kernels used by the iterative CTMC solvers.
//!
//! These are deliberately plain, allocation-free loops over slices: iteration
//! vectors are the memory bottleneck of symbolic CTMC analysis (the paper's
//! motivation), so the solver layer keeps exactly as many of them as the
//! algorithm requires and reuses them across iterations.

/// Sets every element of `x` to `value`.
pub fn fill(x: &mut [f64], value: f64) {
    for e in x.iter_mut() {
        *e = value;
    }
}

/// `y += alpha * x` for equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sum of all elements.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Multiplies every element by `alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for e in x.iter_mut() {
        *e *= alpha;
    }
}

/// Normalizes `x` so its elements sum to one; returns the original sum.
///
/// If the sum is zero the vector is left unchanged and `0.0` is returned.
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let s = sum(x);
    if s != 0.0 {
        scale(x, 1.0 / s);
    }
    s
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Maximum absolute value of a slice (`‖x‖∞`).
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().map(|a| a.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalize_l1_sums_to_one() {
        let mut x = vec![1.0, 3.0];
        let s = normalize_l1(&mut x);
        assert_eq!(s, 4.0);
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize_l1(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn fill_and_scale() {
        let mut x = vec![0.0; 3];
        fill(&mut x, 2.0);
        scale(&mut x, 3.0);
        assert_eq!(x, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }
}
