use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable wrapper around `f64`.
///
/// Partition-refinement keys (the paper's "data type `T`" in Fig. 1) must
/// support equality testing and grouping; `OrderedF64` provides `Eq`,
/// `Ord` and `Hash` for finite floating-point rate values. `-0.0` is
/// normalized to `0.0` so the two compare and hash equal.
///
/// # Panics
///
/// Construction panics on NaN — rate matrices are validated to be finite
/// before refinement runs.
///
/// # Example
///
/// ```
/// use mdl_linalg::OrderedF64;
///
/// let a = OrderedF64::new(0.0);
/// let b = OrderedF64::new(-0.0);
/// assert_eq!(a, b);
/// assert!(OrderedF64::new(1.0) < OrderedF64::new(2.0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "OrderedF64 cannot hold NaN");
        // Normalize -0.0 so that bit-level hashing agrees with ==.
        OrderedF64(if value == 0.0 { 0.0 } else { value })
    }

    /// Returns the wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedF64 {
    fn from(value: f64) -> Self {
        OrderedF64::new(value)
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for OrderedF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn zero_and_negative_zero_unify() {
        let mut set = HashSet::new();
        set.insert(OrderedF64::new(0.0));
        set.insert(OrderedF64::new(-0.0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = [
            OrderedF64::new(2.0),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.5),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|x| x.get()).collect::<Vec<_>>(),
            vec![-1.0, 0.5, 2.0]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(OrderedF64::default(), OrderedF64::new(0.0));
    }
}
