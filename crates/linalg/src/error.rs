use std::fmt;

/// Errors produced by matrix construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// An entry was pushed outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand `(rows, cols)`.
        right: (usize, usize),
    },
    /// A value that must be finite (and in some contexts non-negative) was not.
    InvalidValue {
        /// Description of where the invalid value appeared.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside a {nrows}x{ncols} matrix"
            ),
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidValue { context, value } => {
                write!(f, "invalid value {value} in {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
