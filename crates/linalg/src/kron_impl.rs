use crate::{CooMatrix, CsrMatrix};

/// Kronecker product `A ⊗ B` of two sparse matrices.
///
/// The result has dimensions `(A.nrows · B.nrows) × (A.ncols · B.ncols)` and
/// entry `(A ⊗ B)((i·Br + k), (j·Bc + l)) = A(i,j) · B(k,l)`. Kronecker
/// products are how compositional Markov models express the joint
/// state-transition rate matrix of synchronized components, and the flat
/// baseline against which matrix diagrams are verified.
///
/// # Example
///
/// ```
/// use mdl_linalg::{CooMatrix, kron};
///
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 1, 2.0);
/// let mut b = CooMatrix::new(2, 2);
/// b.push(1, 0, 3.0);
/// let k = kron(&a.to_csr(), &b.to_csr());
/// // entry at (0*2+1, 1*2+0) = 2.0 * 3.0
/// assert_eq!(k.get(1, 2), 6.0);
/// ```
pub fn kron(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    // Every (a, b) entry pair produces exactly one product entry.
    let mut out = CooMatrix::with_capacity(
        a.nrows() * b.nrows(),
        a.ncols() * b.ncols(),
        a.nnz() * b.nnz(),
    );
    for (i, j, av) in a.iter() {
        for (k, l, bv) in b.iter() {
            out.push(i * b.nrows() + k, j * b.ncols() + l, av * bv);
        }
    }
    out.to_csr()
}

/// Kronecker product of a sequence of factors, scaled by `rate`:
/// `rate · (F₁ ⊗ F₂ ⊗ … ⊗ F_L)`.
///
/// An empty factor list yields the 1×1 matrix `[rate]`.
pub fn kron_many(rate: f64, factors: &[CsrMatrix]) -> CsrMatrix {
    let mut scaled = CooMatrix::with_capacity(1, 1, 1);
    scaled.push(0, 0, rate);
    let mut acc = scaled.to_csr();
    for f in factors {
        acc = kron(&acc, f);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: &[&[f64]]) -> CsrMatrix {
        let mut coo =
            CooMatrix::with_capacity(rows.len(), rows[0].len(), rows.len() * rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn kron_with_identity_left() {
        let a = CsrMatrix::identity(2);
        let b = dense(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let k = kron(&a, &b);
        assert_eq!(k.get(0, 0), 1.0);
        assert_eq!(k.get(1, 1), 4.0);
        assert_eq!(k.get(2, 2), 1.0);
        assert_eq!(k.get(3, 2), 3.0);
        assert_eq!(k.get(0, 2), 0.0);
    }

    #[test]
    fn kron_dimensions() {
        let a = dense(&[&[1.0, 0.0, 2.0]]);
        let b = dense(&[&[1.0], &[5.0]]);
        let k = kron(&a, &b);
        assert_eq!(k.nrows(), 2);
        assert_eq!(k.ncols(), 3);
        assert_eq!(k.get(1, 0), 5.0);
        assert_eq!(k.get(1, 2), 10.0);
    }

    #[test]
    fn kron_many_scales() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        let k = kron_many(2.5, &[a, b]);
        assert_eq!(k.nrows(), 6);
        for i in 0..6 {
            assert_eq!(k.get(i, i), 2.5);
        }
    }

    #[test]
    fn kron_many_empty_is_scalar() {
        let k = kron_many(7.0, &[]);
        assert_eq!((k.nrows(), k.ncols()), (1, 1));
        assert_eq!(k.get(0, 0), 7.0);
    }

    #[test]
    fn kron_mixed_rectangular() {
        // (A ⊗ B)(i·Br+k, j·Bc+l) = A(i,j)·B(k,l) checked exhaustively.
        let a = dense(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let b = dense(&[&[4.0, 0.0, 5.0]]);
        let k = kron(&a, &b);
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..3 {
                    assert_eq!(k.get(i, j * 3 + l), a.get(i, j) * b.get(0, l));
                }
            }
        }
    }
}
