//! The [`Weight`] abstraction: the scalar type the numeric stack is
//! generic over.
//!
//! The workspace's kernels were written against `f64`. Certified bounds
//! for tolerance (inexact) lumps need the same kernels over a second
//! scalar: a closed interval `[lo, hi]` with **outward-rounded**
//! arithmetic, so that every computed interval is guaranteed to contain
//! the exact real-arithmetic result (the enclosure discipline of interval
//! analysis, applied here to the imprecise-CTMC constructions of
//! Erreygers & De Bock, arXiv:1804.01020).
//!
//! Two deliberate design points:
//!
//! * The trait is **sealed** to exactly `f64` and [`Interval`]. The `f64`
//!   impl is `#[inline]` pass-through arithmetic, so a kernel
//!   instantiated at `f64` compiles to the same floating-point expression
//!   tree as the pre-generic code — the existing bit-identity proptests
//!   (any thread count, image round trips) remain valid oracles.
//! * Rust gives no portable access to the FPU rounding mode, so outward
//!   rounding is done by **ulp-nudging**: a correctly rounded (nearest)
//!   result is within half an ulp of the true value, hence
//!   [`next_down`]`(fl(x ∘ y)) ≤ x ∘ y ≤ `[`next_up`]`(fl(x ∘ y))` for
//!   every finite operation. One ulp of slack per operation is a few
//!   parts in 2⁵² — invisible next to the rate envelopes the bounds
//!   solver propagates, and sound.
//!
//! The storage layout of [`Interval`] (two consecutive little-endian
//! doubles, 16-byte POD) lives in `mdl-arena` so interval slabs can be
//! memory-mapped exactly like `f64` slabs; this module owns the
//! arithmetic.

/// A closed interval of doubles, re-exported from `mdl-arena` (which owns
/// the 16-byte POD storage layout for slabs and images).
pub use mdl_arena::Interval;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for mdl_arena::Interval {}
}

/// The next representable double strictly above `v` (saturating at
/// `+∞`; NaN is returned unchanged). `-0.0` and `+0.0` both step to the
/// smallest positive subnormal.
#[inline]
pub fn next_up(v: f64) -> f64 {
    if v.is_nan() || v == f64::INFINITY {
        return v;
    }
    if v == 0.0 {
        return f64::from_bits(1);
    }
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// The next representable double strictly below `v` (saturating at
/// `-∞`; NaN is returned unchanged).
#[inline]
pub fn next_down(v: f64) -> f64 {
    -next_up(-v)
}

/// Whether `s == fl(x + y)` is the *exact* real sum, decided by the
/// 2Sum error term (Knuth; exact in IEEE-754 when `s` is finite). Exact
/// sums must not be nudged: the envelope builders rely on "all members
/// aggregate to bit-identical exact sums ⇒ zero-width hull" so that an
/// exactly lumpable model under a tolerance run produces an **empty**
/// envelope, which is what lets the bounds path return degenerate
/// `[x, x]` answers there.
#[inline]
fn sum_is_exact(x: f64, y: f64, s: f64) -> bool {
    if !s.is_finite() {
        return false;
    }
    let yp = s - x;
    let xp = s - yp;
    (x - xp) + (y - yp) == 0.0
}

/// `x + y` rounded toward `-∞`: the nearest-rounded sum when that is
/// exact, one ulp below it otherwise.
#[inline]
pub fn add_down(x: f64, y: f64) -> f64 {
    let s = x + y;
    if sum_is_exact(x, y, s) {
        s
    } else {
        next_down(s)
    }
}

/// `x + y` rounded toward `+∞`.
#[inline]
pub fn add_up(x: f64, y: f64) -> f64 {
    let s = x + y;
    if sum_is_exact(x, y, s) {
        s
    } else {
        next_up(s)
    }
}

/// `x - y` rounded toward `-∞`.
#[inline]
pub fn sub_down(x: f64, y: f64) -> f64 {
    add_down(x, -y)
}

/// `x - y` rounded toward `+∞`.
#[inline]
pub fn sub_up(x: f64, y: f64) -> f64 {
    add_up(x, -y)
}

/// `x * y` rounded toward `-∞`.
#[inline]
pub fn mul_down(x: f64, y: f64) -> f64 {
    next_down(x * y)
}

/// `x * y` rounded toward `+∞`.
#[inline]
pub fn mul_up(x: f64, y: f64) -> f64 {
    next_up(x * y)
}

/// The scalar type of the numeric stack. Sealed — exactly `f64` (exact
/// reproduction of the historical kernels, bit for bit) and [`Interval`]
/// (guaranteed enclosures via outward rounding).
///
/// `Pod` is a supertrait so generic kernels can keep their arrays in
/// [`mdl_arena::Slab`]s (owned or memory-mapped) at either instantiation.
pub trait Weight:
    sealed::Sealed + mdl_arena::Pod + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Embeds a double as a weight (a point interval for [`Interval`]).
    fn from_f64(v: f64) -> Self;

    /// Addition. For `f64` this is IEEE `+` verbatim; for [`Interval`] it
    /// is outward-rounded endpoint addition.
    fn add(self, rhs: Self) -> Self;

    /// Multiplication, with the same contract as [`Weight::add`].
    fn mul(self, rhs: Self) -> Self;

    /// Whether every component is finite.
    fn is_finite(self) -> bool;

    /// A representative double (the value itself, or the interval
    /// midpoint) — diagnostics only, never fed back into certified
    /// arithmetic. Named `rep` rather than `midpoint` to stay clear of
    /// `f64`'s inherent two-argument `midpoint`.
    fn rep(self) -> f64;

    /// Appends an image section of this weight type (an `f64` or interval
    /// section respectively) — what lets generic kernels serialize their
    /// weight arrays without knowing the concrete scalar.
    fn put_section(w: &mut mdl_arena::ImageWriter, tag: u32, values: &[Self]);

    /// Materializes an image section of this weight type as a slab,
    /// zero-copy when the source is a compatible mapping.
    ///
    /// # Errors
    ///
    /// Propagates the arena's missing-section / wrong-element errors.
    fn read_section(
        view: &mdl_arena::ImageView<'_>,
        tag: u32,
        source: mdl_arena::SlabSource<'_>,
    ) -> Result<mdl_arena::Slab<Self>, mdl_arena::ArenaError>;
}

impl Weight for f64 {
    #[inline]
    fn zero() -> f64 {
        0.0
    }

    #[inline]
    fn one() -> f64 {
        1.0
    }

    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }

    #[inline]
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }

    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self * rhs
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn rep(self) -> f64 {
        self
    }

    fn put_section(w: &mut mdl_arena::ImageWriter, tag: u32, values: &[f64]) {
        w.put_f64(tag, values);
    }

    fn read_section(
        view: &mdl_arena::ImageView<'_>,
        tag: u32,
        source: mdl_arena::SlabSource<'_>,
    ) -> Result<mdl_arena::Slab<f64>, mdl_arena::ArenaError> {
        view.slab_f64(tag, source)
    }
}

impl Weight for Interval {
    #[inline]
    fn zero() -> Interval {
        Interval { lo: 0.0, hi: 0.0 }
    }

    #[inline]
    fn one() -> Interval {
        Interval { lo: 1.0, hi: 1.0 }
    }

    #[inline]
    fn from_f64(v: f64) -> Interval {
        Interval::point(v)
    }

    #[inline]
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: add_down(self.lo, rhs.lo),
            hi: add_up(self.hi, rhs.hi),
        }
    }

    #[inline]
    fn mul(self, rhs: Interval) -> Interval {
        // Full sign-safe interval product: the true product of any
        // x ∈ self, y ∈ rhs lies between the min and max of the four
        // endpoint products; outward rounding keeps the enclosure sound.
        let a = self.lo * rhs.lo;
        let b = self.lo * rhs.hi;
        let c = self.hi * rhs.lo;
        let d = self.hi * rhs.hi;
        Interval {
            lo: next_down(a.min(b).min(c).min(d)),
            hi: next_up(a.max(b).max(c).max(d)),
        }
    }

    #[inline]
    fn is_finite(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    #[inline]
    fn rep(self) -> f64 {
        self.lo + 0.5 * (self.hi - self.lo)
    }

    fn put_section(w: &mut mdl_arena::ImageWriter, tag: u32, values: &[Interval]) {
        w.put_interval(tag, values);
    }

    fn read_section(
        view: &mdl_arena::ImageView<'_>,
        tag: u32,
        source: mdl_arena::SlabSource<'_>,
    ) -> Result<mdl_arena::Slab<Interval>, mdl_arena::ArenaError> {
        view.slab_interval(tag, source)
    }
}

/// The lower/upper transition operators of an **imprecise CTMC** whose
/// off-diagonal rates live in per-transition intervals (the credal-set
/// construction of Erreygers & De Bock, arXiv:1804.01020).
///
/// For a gamble `f` over the state space, the lower operator is
///
/// ```text
/// (Q̲f)(s) = Σ_{s'} min_{q ∈ [lo,hi]} q(s,s') · (f(s') − f(s))
///         = Σ_{s'} (if f(s') ≥ f(s) { lo } else { hi }) · (f(s') − f(s))
/// ```
///
/// and the upper operator flips the endpoint choice. Self-loops
/// contribute zero (`f(s) − f(s) = 0`), so the diagonal of the rate
/// matrix never needs representing — exactly like the scalar solvers.
/// Implementations must round **toward the bound** (down for the lower
/// operator, up for the upper), so the ctmc bounds solver's iterates stay
/// certified enclosures.
///
/// Implemented by `CompiledMdMatrix<Interval>` in `mdl-md`; defined here
/// so `mdl-ctmc` (which never sees the symbolic layers) can drive the
/// sweeps generically, mirroring [`RateMatrix`](crate::RateMatrix).
pub trait IntervalRateMatrix: Sync {
    /// Dimension of the state space.
    fn num_states(&self) -> usize;

    /// Accumulates `out[s] += (Q̲f)(s)` (`upper == false`) or
    /// `out[s] += (Q̄f)(s)` (`upper == true`), rounded toward the bound.
    fn acc_bound_operator(&self, f: &[f64], out: &mut [f64], upper: bool);

    /// An upper bound on every state's exit rate `Σ_{s'≠s} hi(s, s')`,
    /// rounded up — the basis of the uniformization constant.
    fn max_exit_rate_hi(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_down_step_one_ulp() {
        assert_eq!(next_up(1.0), 1.0 + f64::EPSILON);
        assert_eq!(next_down(1.0 + f64::EPSILON), 1.0);
        assert!(next_up(0.0) > 0.0);
        assert!(next_down(0.0) < 0.0);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_up(f64::MAX), f64::INFINITY);
        assert_eq!(next_down(f64::MIN), f64::NEG_INFINITY);
        assert!(next_up(f64::NAN).is_nan());
        // Strict bracketing of the rounded result.
        for v in [1.0, -3.5, 1e-300, 2.2e18, -0.0] {
            assert!(next_down(v) < v || v == f64::NEG_INFINITY);
            assert!(next_up(v) > v || v == f64::INFINITY);
        }
    }

    #[test]
    fn directed_ops_bracket_the_nearest_result() {
        let pairs = [(0.1, 0.2), (1e16, -1.0), (3.0, 7.0), (-2.5, 1e-17)];
        for (x, y) in pairs {
            assert!(add_down(x, y) <= x + y && x + y <= add_up(x, y));
            assert!(sub_down(x, y) <= x - y && x - y <= sub_up(x, y));
            assert!(mul_down(x, y) <= x * y && x * y <= mul_up(x, y));
        }
    }

    #[test]
    fn exact_sums_are_not_nudged() {
        // Exactly representable sums come back verbatim — the envelope
        // builders rely on this for zero-width hulls on exact lumps.
        assert_eq!(add_down(0.0, 2.5), 2.5);
        assert_eq!(add_up(0.0, 2.5), 2.5);
        assert_eq!(add_down(1.5, 0.25), 1.75);
        assert_eq!(add_up(1.5, 0.25), 1.75);
        assert_eq!(sub_down(3.0, 3.0), 0.0);
        assert_eq!(sub_up(3.0, 3.0), 0.0);
        // Inexact sums strictly bracket.
        assert!(add_down(0.1, 0.2) < 0.1 + 0.2);
        assert!(add_up(0.1, 0.2) > 0.1 + 0.2);
        // Overflow still yields sound directed bounds.
        assert_eq!(add_down(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(add_up(f64::MAX, f64::MAX), f64::INFINITY);
    }

    #[test]
    fn f64_weight_is_plain_ieee() {
        assert_eq!(Weight::add(0.1f64, 0.2), 0.1 + 0.2);
        assert_eq!(Weight::mul(0.1f64, 0.3), 0.1 * 0.3);
        assert_eq!(<f64 as Weight>::zero(), 0.0);
        assert_eq!(<f64 as Weight>::one(), 1.0);
        assert_eq!(Weight::rep(3.5f64), 3.5);
    }

    #[test]
    fn interval_ops_enclose_f64_ops() {
        let cases = [
            (Interval { lo: 0.1, hi: 0.3 }, Interval { lo: 0.2, hi: 0.4 }),
            (
                Interval { lo: -1.5, hi: 2.0 },
                Interval { lo: -3.0, hi: 0.5 },
            ),
            (Interval::point(1e100), Interval::point(1e-100)),
        ];
        for (a, b) in cases {
            let s = a.add(b);
            // Endpoint combinations of the operands stay inside.
            for x in [a.lo, a.hi] {
                for y in [b.lo, b.hi] {
                    assert!(s.lo <= x + y && x + y <= s.hi, "{s:?} vs {x} + {y}");
                    let p = a.mul(b);
                    assert!(p.lo <= x * y && x * y <= p.hi, "{p:?} vs {x} * {y}");
                }
            }
            // The enclosure never shrinks; it stays tight (no nudge) when
            // the endpoint sums are exact.
            assert!(s.width() >= a.width() + b.width());
        }
    }

    #[test]
    fn interval_point_and_midpoint() {
        let p = Interval::from_f64(2.5);
        assert!(p.is_point());
        assert_eq!(Weight::rep(p), 2.5);
        let w = Interval { lo: 1.0, hi: 3.0 };
        assert_eq!(Weight::rep(w), 2.0);
        assert!(
            Interval {
                lo: 0.0,
                hi: f64::INFINITY
            }
            .is_finite()
                == false
        );
        assert!(w.is_finite());
    }

    #[test]
    fn interval_mul_handles_mixed_signs() {
        let a = Interval { lo: -2.0, hi: 3.0 };
        let b = Interval { lo: -5.0, hi: 7.0 };
        let p = a.mul(b);
        // Extremes: 3·(−5) = −15 and (−2)·(−5) = 10 ∨ 3·7 = 21.
        assert!(p.lo <= -15.0 && p.hi >= 21.0);
        assert!(p.lo >= -15.5 && p.hi <= 21.5, "one-ulp slack only: {p:?}");
    }
}
