use crate::{CsrMatrix, LinalgError, Result};

/// A sparse matrix in coordinate (triplet) format.
///
/// `CooMatrix` is the assembly format: entries can be pushed in any order and
/// duplicates are allowed (they are summed on conversion to
/// [`CsrMatrix`]). It is used when flattening matrix diagrams, when
/// constructing rate matrices from model descriptions, and in tests.
///
/// # Example
///
/// ```
/// use mdl_linalg::CooMatrix;
///
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 1, 1.5);
/// m.push(0, 1, 0.5); // duplicate — summed on conversion
/// let csr = m.to_csr();
/// assert_eq!(csr.get(0, 1), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows` × `ncols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty `nrows` × `ncols` matrix with room for `capacity`
    /// entries before reallocating. Useful when the producer knows the
    /// entry count up front (e.g. `MdMatrix::count_entries`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`.
    pub fn with_capacity(nrows: usize, ncols: usize, capacity: usize) -> Self {
        let mut m = CooMatrix::new(nrows, ncols);
        m.entries.reserve_exact(capacity);
        m
    }

    /// Number of entries the matrix can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (possibly duplicate) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends an entry; duplicates are summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if the entry lies outside the matrix. Use [`try_push`] for a
    /// fallible variant.
    ///
    /// [`try_push`]: CooMatrix::try_push
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        self.try_push(row, col, value).expect("entry within bounds");
    }

    /// Appends an entry, returning an error on out-of-bounds indices or
    /// non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] or
    /// [`LinalgError::InvalidValue`].
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(LinalgError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::InvalidValue {
                context: "CooMatrix::push",
                value,
            });
        }
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
        Ok(())
    }

    /// Iterates over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to compressed sparse rows, summing duplicate entries and
    /// dropping entries that cancel to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());

        row_ptr.push(0usize);
        let mut current_row = 0u32;
        for (r, c, v) in sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if last_c == c && row_ptr.last() != Some(&col_idx.len()) {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while (current_row as usize) < self.nrows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        // Drop exact zeros produced by cancellation.
        let mut kept_col: Vec<u32> = Vec::with_capacity(col_idx.len());
        let mut kept_val: Vec<f64> = Vec::with_capacity(values.len());
        let mut new_row_ptr = Vec::with_capacity(row_ptr.len());
        new_row_ptr.push(0usize);
        for r in 0..self.nrows {
            for k in row_ptr[r]..row_ptr[r + 1] {
                if values[k] != 0.0 {
                    kept_col.push(col_idx[k]);
                    kept_val.push(values[k]);
                }
            }
            new_row_ptr.push(kept_col.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, new_row_ptr, kept_col, kept_val)
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let m = CooMatrix::new(4, 5);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 5);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn with_capacity_reserves() {
        let mut m = CooMatrix::with_capacity(3, 3, 7);
        assert!(m.capacity() >= 7);
        for i in 0..3 {
            m.push(i, i, 1.0);
        }
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_csr().nnz(), 3);
    }

    #[test]
    fn push_skips_zero_values() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(
            m.try_push(2, 0, 1.0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            m.try_push(0, 5, 1.0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn non_finite_errors() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.try_push(0, 0, f64::NAN).is_err());
        assert!(m.try_push(0, 0, f64::INFINITY).is_err());
    }

    #[test]
    fn duplicates_summed_in_csr() {
        let mut m = CooMatrix::new(3, 3);
        m.push(1, 2, 1.0);
        m.push(1, 2, 2.5);
        m.push(0, 0, 4.0);
        let csr = m.to_csr();
        assert_eq!(csr.get(1, 2), 3.5);
        assert_eq!(csr.get(0, 0), 4.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn cancellation_dropped_in_csr() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.push(0, 1, -1.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn empty_rows_handled() {
        let mut m = CooMatrix::new(5, 5);
        m.push(4, 4, 1.0);
        let csr = m.to_csr();
        assert_eq!(csr.get(4, 4), 1.0);
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(4).count(), 1);
    }

    #[test]
    fn extend_collects_triples() {
        let mut m = CooMatrix::new(2, 2);
        m.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }
}
