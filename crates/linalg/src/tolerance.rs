/// How floating-point rate sums are compared when used as
/// partition-refinement keys.
///
/// The paper compares rates exactly (its "data type `T`" equality). In
/// floating-point arithmetic, two mathematically equal sums accumulated in
/// different orders can differ in the last ulp, which would split states
/// that are genuinely equivalent. `Tolerance` controls the mapping from a
/// rate sum to the integer key actually compared:
///
/// * [`Tolerance::Exact`] — bit-exact comparison (the paper's semantics;
///   appropriate when rates are combinations of a few shared constants);
/// * [`Tolerance::Decimals`] — round to a fixed number of decimal digits
///   first, trading a provably-safe comparison for robustness against
///   accumulation order.
///
/// # Example
///
/// ```
/// use mdl_linalg::Tolerance;
///
/// let a = 0.1 + 0.2; // 0.30000000000000004
/// let b = 0.3;
/// assert_ne!(Tolerance::Exact.key(a), Tolerance::Exact.key(b));
/// assert_eq!(Tolerance::Decimals(9).key(a), Tolerance::Decimals(9).key(b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tolerance {
    /// Compare rate values bit-for-bit (with `-0.0` normalized to `0.0`).
    Exact,
    /// Round to this many decimal digits before comparing.
    Decimals(u32),
}

impl Default for Tolerance {
    /// Nine decimal digits — tight enough to distinguish any humanly
    /// distinct rate constants, loose enough to absorb accumulation-order
    /// noise.
    fn default() -> Self {
        Tolerance::Decimals(9)
    }
}

impl Tolerance {
    /// Maps a rate value to the integer key compared during refinement.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (rate matrices are validated to be finite
    /// before refinement runs).
    pub fn key(self, value: f64) -> i128 {
        assert!(!value.is_nan(), "rate keys cannot be NaN");
        match self {
            Tolerance::Exact => {
                let v = if value == 0.0 { 0.0 } else { value };
                v.to_bits() as i128
            }
            Tolerance::Decimals(d) => {
                let scale = 10f64.powi(d as i32);
                let scaled = value * scale;
                // Saturate rather than wrap for extreme magnitudes.
                if scaled >= i128::MAX as f64 {
                    i128::MAX
                } else if scaled <= i128::MIN as f64 {
                    i128::MIN
                } else {
                    scaled.round() as i128
                }
            }
        }
    }

    /// `true` when two values compare equal under this tolerance.
    pub fn eq(self, a: f64, b: f64) -> bool {
        self.key(a) == self.key(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_distinguishes_ulps() {
        let a = 0.1 + 0.2;
        assert!(!Tolerance::Exact.eq(a, 0.3));
        assert!(Tolerance::Exact.eq(a, a));
    }

    #[test]
    fn exact_unifies_signed_zero() {
        assert!(Tolerance::Exact.eq(0.0, -0.0));
    }

    #[test]
    fn decimals_absorb_noise() {
        assert!(Tolerance::Decimals(9).eq(0.1 + 0.2, 0.3));
        assert!(!Tolerance::Decimals(9).eq(0.3, 0.3 + 1e-6));
    }

    #[test]
    fn decimals_scale_with_digits() {
        assert!(Tolerance::Decimals(2).eq(0.301, 0.302));
        assert!(!Tolerance::Decimals(4).eq(0.301, 0.302));
    }

    #[test]
    fn extreme_values_saturate() {
        assert_eq!(Tolerance::Decimals(9).key(1e300), i128::MAX);
        assert_eq!(Tolerance::Decimals(9).key(-1e300), i128::MIN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Tolerance::Exact.key(f64::NAN);
    }
}
