/// The matrix-vector product interface iterative CTMC solvers are written
/// against.
///
/// A state-transition rate matrix `R` only needs to support accumulating
/// products in both orientations; this is what lets the solvers in
/// `mdl-ctmc` run unchanged over a flat [`CsrMatrix`](crate::CsrMatrix) or
/// over a symbolic matrix-diagram representation (`mdl-md`), which is the
/// whole point of the paper's setting: lumping shrinks the vectors that
/// iterative solvers carry, whatever the matrix representation.
pub trait RateMatrix {
    /// Number of states (the matrix is square: `|S| × |S|`).
    fn num_states(&self) -> usize;

    /// Accumulates the matrix-vector product: `y += R x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` or `y` have length different from
    /// [`num_states`](RateMatrix::num_states).
    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]);

    /// Accumulates the vector-matrix product: `y += x R`.
    ///
    /// This is the orientation stationary solvers use (`π Q = 0`).
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` or `y` have length different from
    /// [`num_states`](RateMatrix::num_states).
    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]);

    /// Row sums of `R` (the exit rates `R(s, S)`, i.e. the diagonal of
    /// `rs(R)` in the paper's notation).
    ///
    /// The default implementation multiplies by the all-ones vector.
    fn row_sums(&self) -> Vec<f64> {
        let n = self.num_states();
        let ones = vec![1.0; n];
        let mut sums = vec![0.0; n];
        self.acc_mat_vec(&ones, &mut sums);
        sums
    }

    /// Column sums of `R` (the entry rates `R(S, s)`).
    ///
    /// The default implementation multiplies the all-ones vector from the
    /// left.
    fn col_sums(&self) -> Vec<f64> {
        let n = self.num_states();
        let ones = vec![1.0; n];
        let mut sums = vec![0.0; n];
        self.acc_vec_mat(&ones, &mut sums);
        sums
    }
}

impl<T: RateMatrix + ?Sized> RateMatrix for &T {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }

    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]) {
        (**self).acc_mat_vec(x, y)
    }

    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]) {
        (**self).acc_vec_mat(x, y)
    }

    fn row_sums(&self) -> Vec<f64> {
        (**self).row_sums()
    }

    fn col_sums(&self) -> Vec<f64> {
        (**self).col_sums()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn default_row_and_col_sums() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let m = coo.to_csr();
        assert_eq!(RateMatrix::row_sums(&m), vec![2.0, 4.0]);
        assert_eq!(m.col_sums(), vec![3.0, 3.0]);
    }
}
