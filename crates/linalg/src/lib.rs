//! Sparse linear-algebra substrate for the `mdlump` workspace.
//!
//! This crate provides the small set of numerical building blocks the rest of
//! the stack is written against:
//!
//! * [`CooMatrix`] — a coordinate-format accumulation matrix, convenient for
//!   assembling state-transition rate matrices entry by entry;
//! * [`CsrMatrix`] — compressed sparse rows, the workhorse format for flat
//!   continuous-time Markov chain (CTMC) analysis and for the state-level
//!   lumping baseline;
//! * [`RateMatrix`] — the matrix-vector product abstraction that lets
//!   iterative CTMC solvers run unchanged over a flat [`CsrMatrix`] *or* over
//!   a symbolic matrix-diagram representation (implemented in `mdl-md`);
//! * [`kron`] — Kronecker products, used by tests and by the
//!   flat baseline for compositional models;
//! * [`vec_ops`] — the handful of dense-vector kernels iterative solvers
//!   need;
//! * [`OrderedF64`] — a total-order, hashable wrapper for `f64` used as a
//!   partition-refinement key (the "data type `T`" of the paper's Fig. 1).
//!
//! # Example
//!
//! ```
//! use mdl_linalg::{CooMatrix, RateMatrix};
//!
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 1, 2.0);
//! coo.push(1, 2, 1.0);
//! coo.push(2, 0, 0.5);
//! let csr = coo.to_csr();
//!
//! // y += R x
//! let mut y = vec![0.0; 3];
//! csr.acc_mat_vec(&[1.0, 1.0, 1.0], &mut y);
//! assert_eq!(y, vec![2.0, 1.0, 0.5]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coo;
mod csr;
mod error;
mod kron_impl;
mod ordered;
mod rate_matrix;
mod tolerance;
pub mod vec_ops;
pub mod weight;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::LinalgError;
pub use kron_impl::{kron, kron_many};
pub use ordered::OrderedF64;
pub use rate_matrix::RateMatrix;
pub use tolerance::Tolerance;
pub use weight::{Interval, IntervalRateMatrix, Weight};

/// Convenience alias used across the workspace for fallible operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
