//! Structural invariants of the benchmark models, checked over every
//! reachable state and transition (not just sampled trajectories).

use mdlump::models::tandem::{ServerPhase, TandemConfig, TandemModel};

#[test]
fn tandem_every_reachable_state_is_internally_consistent() {
    let model = TandemModel::new(TandemConfig {
        jobs: 2,
        ..TandemConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    let reach = mrp.matrix().reach();
    let jobs = model.config().jobs as u32;

    reach.for_each_tuple(|t, _| {
        // Job conservation.
        let (pm, ph) = model.pools().state(t[0]);
        let hyper = model.hypercube().state(t[1]);
        let msmq = model.msmq().state(t[2]);
        let total: u32 = pm
            + ph
            + hyper.queues.iter().map(|&q| q as u32).sum::<u32>()
            + msmq.queues.iter().map(|&q| q as u32).sum::<u32>();
        assert_eq!(total, jobs);

        // Failure cap.
        let down = hyper.up.iter().filter(|&&u| !u).count();
        assert!(down <= model.config().max_down);

        // MSMQ claim validity: serving servers never exceed queued jobs.
        for q in 0..model.config().msmq_queues as u8 {
            let serving = msmq
                .servers
                .iter()
                .filter(|s| s.phase == ServerPhase::Serving && s.queue == q)
                .count();
            assert!(serving <= msmq.queues[q as usize] as usize);
        }
    });
}

#[test]
fn tandem_transitions_move_at_most_one_job() {
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    let reach = mrp.matrix().reach();
    let flat = mrp.matrix().flatten();

    let job_positions = |t: &[u32]| -> (u32, u32, u32, u32) {
        let (pm, ph) = model.pools().state(t[0]);
        let hyper: u32 = model
            .hypercube()
            .state(t[1])
            .queues
            .iter()
            .map(|&q| q as u32)
            .sum();
        let msmq: u32 = model
            .msmq()
            .state(t[2])
            .queues
            .iter()
            .map(|&q| q as u32)
            .sum();
        (pm, ph, hyper, msmq)
    };

    let mut tuples = Vec::new();
    reach.for_each_tuple(|t, idx| tuples.push((t.to_vec(), idx)));
    for (t, idx) in &tuples {
        let from = job_positions(t);
        for (c, rate) in flat.row(*idx as usize) {
            assert!(rate > 0.0, "stored rates are positive");
            let to = job_positions(&tuples[c].0);
            // Total conserved and per-place change bounded by 1.
            let diffs = [
                from.0 as i64 - to.0 as i64,
                from.1 as i64 - to.1 as i64,
                from.2 as i64 - to.2 as i64,
                from.3 as i64 - to.3 as i64,
            ];
            assert_eq!(diffs.iter().sum::<i64>(), 0);
            assert!(
                diffs.iter().all(|d| d.abs() <= 1),
                "{t:?} -> {:?}",
                tuples[c].0
            );
        }
    }
}

#[test]
fn tandem_chain_has_no_dead_states() {
    // Every reachable state has at least one outgoing transition (the
    // closed system never deadlocks: walks and failures are always
    // possible somewhere).
    use mdlump::linalg::RateMatrix;
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    let sums = mrp.matrix().row_sums();
    assert!(sums.iter().all(|&s| s > 0.0));
}

#[test]
fn simulator_transitions_match_flat_matrix_rows() {
    // The simulator's transition enumeration and the MD pipeline must
    // describe the same chain: compare per-state total exit rates on a
    // small tandem instance.
    use mdlump::linalg::RateMatrix;
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        msmq_servers: 1,
        cube_dim: 1,
        ..TandemConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    let reach = mrp.matrix().reach();
    let sums = mrp.matrix().row_sums();
    reach.for_each_tuple(|t, idx| {
        let sim_total: f64 = model
            .composed()
            .transitions(t)
            .iter()
            .map(|&(ref succ, w)| {
                // Transitions to unreachable syntactic states cannot occur
                // from reachable ones (guard consistency).
                assert!(reach.contains(succ), "{t:?} -> {succ:?}");
                w
            })
            .sum();
        assert!(
            (sim_total - sums[idx as usize]).abs() < 1e-9,
            "state {t:?}: simulator {sim_total} vs matrix {}",
            sums[idx as usize]
        );
    });
}
