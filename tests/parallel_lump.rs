//! End-to-end determinism and interruption contracts of the parallel
//! lumping engine (DESIGN.md §12).
//!
//! The engine owes two guarantees for any worker count:
//!
//! 1. **Bit-identity** — the per-level partitions, the lumped MD and the
//!    exact exit rates are *bitwise* equal to the serial run (block
//!    workers own contiguous output index ranges and walk contributions
//!    in serial iteration order, so no floating-point sum is reordered);
//! 2. **Interruptibility** — a `Budget` is honored at block granularity
//!    inside the formal-sum key phase, surfacing as
//!    `CoreError::Interrupted { phase: "lump.keys", .. }`.
//!
//! Both are checked on random planted-symmetry models large enough
//! (≥ 64 local states per level) to take the parallel path.

use std::time::Duration;

use proptest::prelude::*;

use mdlump::core::{verify, CoreError, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::linalg::Tolerance;
use mdlump::md::MdMatrix;
use mdlump::mdd::Mdd;
use mdlump::models::random::{planted_model, LevelSpec};
use mdlump::obs::Budget;

/// Builds an `MdMrp` over the full product space of a planted model.
fn build_mrp(expr: &mdlump::md::KroneckerExpr) -> MdMrp {
    let sizes = expr.sizes().to_vec();
    let md = expr.to_md().expect("md builds");
    let reach = Mdd::full(sizes.clone()).expect("full mdd");
    let matrix = MdMatrix::new(md, reach).expect("level pairing");
    let reward = DecomposableVector::constant(&sizes, 1.0).expect("reward");
    let count: usize = sizes.iter().product();
    let initial = DecomposableVector::uniform(&sizes, count as u64).expect("initial");
    MdMrp::new(matrix, reward, initial).expect("mrp")
}

/// A two-level planted model whose first level is wide enough (80 local
/// states) to cross the engine's parallel threshold.
fn wide_planted(seed: u64, kind: LumpKind) -> MdMrp {
    let pm = planted_model(
        seed,
        &[LevelSpec::uniform(16, 5), LevelSpec::uniform(3, 2)],
        kind,
        2,
        1,
    );
    build_mrp(&pm.expr)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Partitions, the lumped MD and exit rates are bitwise identical
    /// across 1/2/4 workers on random planted-symmetry models.
    #[test]
    fn parallel_lump_bit_identical_across_thread_counts(seed in 0u64..512) {
        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let mrp = wide_planted(seed, kind);
            let serial = LumpRequest::new(kind).run(&mrp).unwrap();
            for threads in [2usize, 4] {
                let par = LumpRequest::new(kind).threads(threads).run(&mrp).unwrap();
                prop_assert_eq!(&par.partitions, &serial.partitions,
                    "partitions differ: seed {}, {:?}, {} threads", seed, kind, threads);
                prop_assert_eq!(
                    par.mrp.matrix().flatten().max_abs_diff(&serial.mrp.matrix().flatten()),
                    0.0,
                    "lumped MD not bitwise equal: seed {}, {:?}, {} threads", seed, kind, threads
                );
                prop_assert_eq!(&par.exact_exit_rates, &serial.exact_exit_rates);
            }
        }
    }
}

/// The parallel result is not just self-consistent — it still satisfies
/// the lumpability conditions the serial verifier checks.
#[test]
fn parallel_lump_verifies_against_original_model() {
    let mrp = wide_planted(7, LumpKind::Ordinary);
    let result = LumpRequest::new(LumpKind::Ordinary)
        .threads(4)
        .run(&mrp)
        .unwrap();
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
}

/// A deadline that expires *inside* the key phase (forced by a `sleep`
/// failpoint at the `lump.keys` site) interrupts the parallel run with
/// the documented phase label.
#[test]
fn deadline_interrupts_parallel_key_phase() {
    let _guard = mdlump::obs::testing::guard();
    mdlump::obs::failpoint::set("lump.keys", "sleep:100ms").unwrap();
    let mrp = wide_planted(11, LumpKind::Ordinary);
    let err = LumpRequest::new(LumpKind::Ordinary)
        .threads(2)
        .budget(Budget::unlimited().deadline_in(Duration::from_millis(50)))
        .run(&mrp)
        .unwrap_err();
    mdlump::obs::failpoint::clear();
    match err {
        CoreError::Interrupted { phase, .. } => assert_eq!(phase, "lump.keys"),
        other => panic!("expected keys-phase interruption, got {other:?}"),
    }
}

/// An injected fault at the `lump.keys` failpoint surfaces through the
/// same interruption channel (only consulted under a limited budget, so
/// the unconfigured path stays guaranteed error-free).
#[test]
fn injected_fault_surfaces_as_keys_interruption() {
    let _guard = mdlump::obs::testing::guard();
    mdlump::obs::failpoint::set("lump.keys", "err").unwrap();
    let mrp = wide_planted(13, LumpKind::Ordinary);
    let err = LumpRequest::new(LumpKind::Ordinary)
        .threads(2)
        .budget(Budget::unlimited().deadline_in(Duration::from_secs(3600)))
        .run(&mrp)
        .unwrap_err();
    mdlump::obs::failpoint::clear();
    match err {
        CoreError::Interrupted { phase, .. } => assert_eq!(phase, "lump.keys"),
        other => panic!("expected injected keys fault, got {other:?}"),
    }

    // With the failpoint cleared the same request succeeds.
    let result = LumpRequest::new(LumpKind::Ordinary)
        .threads(2)
        .budget(Budget::unlimited().deadline_in(Duration::from_secs(3600)))
        .run(&mrp)
        .unwrap();
    assert!(result.stats.lumped_states > 0);
}
