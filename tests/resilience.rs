//! End-to-end resilience: deterministic fault injection and deadlines
//! driving the fallback ladder on the paper's tandem model.

use std::time::Duration;

use mdlump::core::{KernelRung, LumpKind, LumpRequest, MdResilientOptions};
use mdlump::ctmc::{AttemptOutcome, SolverOptions, StationaryMethod};
use mdlump::linalg::vec_ops;
use mdlump::models::tandem::{TandemConfig, TandemModel};
use mdlump::obs::Budget;

fn tandem_mrp() -> mdlump::core::MdMrp {
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = model.build_md_mrp().expect("tandem model builds");
    LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("tandem model lumps")
        .mrp
}

#[test]
fn faulted_jacobi_falls_back_to_power_and_matches_unfaulted_run() {
    let _g = mdlump::obs::testing::guard();
    mdlump::obs::failpoint::clear();
    let mrp = tandem_mrp();
    let options = MdResilientOptions {
        options: SolverOptions {
            tolerance: 1e-13,
            ..SolverOptions::default()
        },
        ..MdResilientOptions::default()
    };

    // Unfaulted reference: the first rung (Jacobi on the compiled
    // kernel) converges.
    let (reference, clean_report) = mrp.solve_resilient(&options);
    let reference = reference.expect("clean solve converges");
    assert_eq!(clean_report.attempts.len(), 1);

    // Poison the first Jacobi iterate: the divergence guard catches the
    // NaN, the ladder falls back to power, and the answer matches the
    // unfaulted run.
    mdlump::obs::failpoint::set("solver.iterate", "nan@1").unwrap();
    let (result, report) = mrp.solve_resilient(&options);
    mdlump::obs::failpoint::clear();

    let sol = result.expect("fallback run converges");
    assert_eq!(report.attempts.len(), 2, "{}", report.render());
    assert_eq!(report.attempts[0].method, "jacobi");
    assert_eq!(report.attempts[0].outcome, AttemptOutcome::Diverged);
    assert_eq!(report.attempts[1].method, "power");
    assert_eq!(report.attempts[1].outcome, AttemptOutcome::Converged);
    assert!(report.converged());
    assert!(
        vec_ops::max_abs_diff(&sol.probabilities, &reference.probabilities) < 1e-10,
        "fallback answer drifted from the unfaulted run"
    );
}

#[test]
fn expired_deadline_interrupts_every_rung() {
    let _g = mdlump::obs::testing::guard();
    let mrp = tandem_mrp();
    let options = MdResilientOptions {
        ladder: vec![
            (StationaryMethod::Jacobi, KernelRung::Compiled),
            (StationaryMethod::Power, KernelRung::Walk),
            (StationaryMethod::Power, KernelRung::FlatCsr),
        ],
        options: SolverOptions {
            budget: Budget::unlimited().deadline_in(Duration::ZERO),
            ..SolverOptions::default()
        },
        ..MdResilientOptions::default()
    };
    let (result, report) = mrp.solve_resilient(&options);
    assert!(result.is_err());
    assert!(!report.converged());
    assert_eq!(report.attempts.len(), 3, "{}", report.render());
    for attempt in &report.attempts {
        assert_eq!(attempt.outcome, AttemptOutcome::Interrupted, "{attempt:?}");
    }
}
