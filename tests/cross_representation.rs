//! Cross-representation consistency: the same chain analyzed as a flat
//! sparse matrix and as a matrix diagram must give identical results, and
//! degenerate cases must collapse to the classical algorithms.

use mdlump::core::{Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::ctmc::{
    stationary_gauss_seidel, Mrp, SolverOptions, StationaryMethod, TransientOptions,
};
use mdlump::linalg::{vec_ops, CooMatrix, CsrMatrix, Tolerance};
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;
use mdlump::statelump::{ordinary_lump, LumpOptions};

/// A deterministic 8-state chain with a 2-fold planted symmetry.
fn flat_chain() -> (CsrMatrix, Vec<f64>) {
    let mut coo = CooMatrix::new(8, 8);
    // Pairs {2k, 2k+1} behave identically.
    for k in 0..4usize {
        let (a, b) = (2 * k, 2 * k + 1);
        let (na, nb) = ((2 * (k + 1)) % 8, (2 * (k + 1) + 1) % 8);
        for &s in &[a, b] {
            coo.push(s, na, 0.75);
            coo.push(s, nb, 0.75);
            coo.push(s, (s + 2) % 8, 0.5); // extra asymmetric-looking edge
        }
    }
    let reward = vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0, 0.0, 0.0];
    (coo.to_csr(), reward)
}

/// Wraps a flat matrix as a single-level MD over the full state space.
fn as_single_level_md(r: &CsrMatrix, reward: &[f64]) -> MdMrp {
    let n = r.nrows();
    let mut expr = KroneckerExpr::new(vec![n]);
    let mut f = SparseFactor::new(n);
    for (i, j, v) in r.iter() {
        f.push(i, j, v);
    }
    expr.add_term(1.0, vec![Some(f)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![n]).unwrap()).unwrap();
    let rv = DecomposableVector::new(vec![reward.to_vec()], Combiner::Product).unwrap();
    let init = DecomposableVector::uniform(&[n], n as u64).unwrap();
    MdMrp::new(matrix, rv, init).unwrap()
}

#[test]
fn single_level_compositional_lumping_equals_state_level_lumping() {
    // On a 1-level MD the "local" conditions are the global ones, so the
    // compositional algorithm must find exactly the optimal partition of
    // the flat state-level algorithm.
    let (r, reward) = flat_chain();
    let flat = ordinary_lump(&r, &reward, &LumpOptions::default());
    let mrp = as_single_level_md(&r, &reward);
    let comp = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert_eq!(
        flat.partition.num_classes() as u64,
        comp.stats.lumped_states,
        "single-level compositional == optimal flat"
    );
    let mut flat_partition = flat.partition.clone();
    flat_partition.canonicalize();
    assert_eq!(flat_partition, comp.partitions[0]);
}

#[test]
fn all_three_stationary_solvers_agree_on_flat_chain() {
    let (r, _) = flat_chain();
    let opts = SolverOptions::default();
    let p = mdlump::ctmc::stationary_power(&r, &opts)
        .unwrap()
        .probabilities;
    let j = mdlump::ctmc::stationary_jacobi(&r, &opts)
        .unwrap()
        .probabilities;
    let g = stationary_gauss_seidel(&r, &opts).unwrap().probabilities;
    assert!(vec_ops::max_abs_diff(&p, &j) < 1e-7);
    assert!(vec_ops::max_abs_diff(&p, &g) < 1e-7);
}

#[test]
fn md_and_flat_transient_agree() {
    let (r, reward) = flat_chain();
    let md_mrp = as_single_level_md(&r, &reward);
    let n = r.nrows();
    let flat_mrp = Mrp::new(r, reward, vec![1.0 / n as f64; n]).unwrap();
    let opts = TransientOptions::default();
    for &t in &[0.25, 1.0, 4.0] {
        let a = md_mrp.transient(t, &opts).unwrap().probabilities;
        let b = flat_mrp.transient(t, &opts).unwrap().probabilities;
        assert!(vec_ops::max_abs_diff(&a, &b) < 1e-12, "t = {t}");
    }
}

#[test]
fn lumped_chain_measures_match_flat_lumped_measures() {
    let (r, reward) = flat_chain();
    let mrp = as_single_level_md(&r, &reward);
    let comp = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    let flat = ordinary_lump(&r, &reward, &LumpOptions::default());
    let opts = SolverOptions {
        method: StationaryMethod::Power,
        ..Default::default()
    };

    let symbolic = comp.mrp.expected_stationary_reward(&opts).unwrap();
    let flat_sol = mdlump::ctmc::stationary_power(&flat.rates, &opts).unwrap();
    let explicit = flat_sol.try_expected_reward(&flat.reward).unwrap();
    assert!((symbolic - explicit).abs() < 1e-8);
}

#[test]
fn restricting_reachability_projects_consistently() {
    // Build a 2-level expression, restrict to a reachable subset, and
    // check the projected flat matrix equals the submatrix of the full one.
    let mut up = SparseFactor::new(3);
    up.push(0, 1, 1.0);
    up.push(1, 2, 1.0);
    let mut expr = KroneckerExpr::new(vec![3, 2]);
    expr.add_term(1.0, vec![Some(up), None]);
    let mut toggle = SparseFactor::new(2);
    toggle.push(0, 1, 2.0);
    toggle.push(1, 0, 2.0);
    expr.add_term(1.0, vec![None, Some(toggle)]);

    let md = expr.to_md().unwrap();
    let reach = Mdd::from_tuples(
        vec![3, 2],
        vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
    )
    .unwrap();
    let restricted = MdMatrix::new(md.clone(), reach.clone()).unwrap().flatten();
    let full = MdMatrix::new(md, Mdd::full(vec![3, 2]).unwrap())
        .unwrap()
        .flatten();

    reach.for_each_tuple(|rt, ri| {
        let rfull = (rt[0] * 2 + rt[1]) as usize;
        reach.for_each_tuple(|ct, ci| {
            let cfull = (ct[0] * 2 + ct[1]) as usize;
            assert_eq!(
                restricted.get(ri as usize, ci as usize),
                full.get(rfull, cfull)
            );
        });
    });
}

#[test]
fn tolerance_modes_agree_on_exact_arithmetic() {
    let (r, reward) = flat_chain();
    let exact = ordinary_lump(
        &r,
        &reward,
        &LumpOptions {
            tolerance: Tolerance::Exact,
            ..Default::default()
        },
    );
    let rounded = ordinary_lump(
        &r,
        &reward,
        &LumpOptions {
            tolerance: Tolerance::Decimals(9),
            ..Default::default()
        },
    );
    assert_eq!(
        exact.partition.num_classes(),
        rounded.partition.num_classes()
    );
}
