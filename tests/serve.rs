//! Acceptance suite for the `mdl-serve` daemon: concurrent clients
//! against a failpoint-injected in-process server.
//!
//! The contract under test is the trichotomy: every request terminates
//! in exactly one of a correct result (`"ok"`), an honest structured
//! error (`"error"`), or a shed-with-retry (`"shed"`) — never a hang,
//! never a corrupt cache. Success responses are additionally checked
//! bit-for-bit against a direct library solve of the same model, so
//! the daemon can never drift from the one-shot pipeline.
//!
//! Failpoints and the shutdown signal are process-global, so every
//! test serializes on `mdl_obs::testing::guard()`.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

use mdl_cli::commands::Measure;
use mdl_core::{
    model_source_key, KernelKind, LumpKind, LumpRequest, Pipeline, SolveOutcome, SolveRequest,
    Staged,
};
use mdl_ctmc::{SolverOptions, TransientOptions};
use mdl_obs::json::{self, Json};
use mdl_serve::client::{Client, SolveLine};
use mdl_serve::server::{Server, ServerConfig};
use mdl_serve::EXAMPLE_MODEL;

/// A per-test scratch cache directory (no tempdir crate; the daemon's
/// drain sweep and the debris assertions need a real path).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdl-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cfg: ServerConfig) -> Server {
    mdl_obs::set_enabled(true);
    Server::start(cfg).expect("server starts")
}

fn connect(server: &Server) -> Client {
    let mut c = Client::connect(&server.local_addr().to_string()).expect("connect");
    // No request in this suite should take anywhere near this long;
    // the bound turns a hang into a loud test failure.
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

/// Parses a response line and asserts the status trichotomy plus the
/// per-status structural invariants. Returns the parsed JSON.
fn assert_trichotomy(line: &str) -> Json {
    let parsed = json::parse(line).unwrap_or_else(|e| panic!("bad response JSON {line:?}: {e}"));
    let status = parsed
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response without status: {line}"));
    match status {
        "ok" => {}
        "error" => {
            let kind = parsed
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("error without kind: {line}"));
            assert!(
                ["bad-request", "interrupted", "failed", "internal"].contains(&kind),
                "unknown error kind {kind:?}"
            );
            let detail = parsed.get("detail").and_then(Json::as_str).unwrap_or("");
            assert!(!detail.is_empty(), "error without detail: {line}");
        }
        "shed" => {
            let reason = parsed
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("shed without reason: {line}"));
            assert!(
                ["queue-full", "tenant-cap", "draining"].contains(&reason),
                "unknown shed reason {reason:?}"
            );
            assert!(
                parsed
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .is_some(),
                "shed without retry_after_ms: {line}"
            );
        }
        other => panic!("status {other:?} violates the trichotomy: {line}"),
    }
    parsed
}

/// The one-shot library solve the daemon must match bit-for-bit: the
/// same staged pipeline (build → lump → compile → solve → expected
/// reward) with the same solver options the server uses.
fn library_measure(measure: Measure) -> f64 {
    let parsed = mdl_cli::parse_model(EXAMPLE_MODEL).unwrap();
    let pipeline = Pipeline::new(model_source_key(EXAMPLE_MODEL));
    let built = pipeline
        .build(|| {
            parsed.build().map_err(|e| match e {
                mdl_models::ModelError::Core(c) => c,
                other => mdl_core::CoreError::Build {
                    detail: other.to_string(),
                },
            })
        })
        .unwrap();
    let lumped = pipeline
        .lump(&built, &LumpRequest::new(LumpKind::Ordinary))
        .unwrap();
    let lumped_mrp = Staged {
        value: lumped.value.mrp.clone(),
        key: lumped.key,
        cached: lumped.cached,
    };
    let sopts = SolverOptions {
        tolerance: 1e-12,
        ..SolverOptions::default()
    };
    let request = match measure {
        Measure::Stationary => SolveRequest::stationary(),
        Measure::Transient(t) => SolveRequest::transient(t),
        Measure::Accumulated(t) => SolveRequest::accumulated_reward(t),
    }
    .solver_options(sopts)
    .transient_options(TransientOptions::default())
    .kernel(KernelKind::Compiled)
    .threads(1)
    .fallback(true);
    let (outcome, _report) = pipeline.solve(&lumped_mrp, &request);
    match outcome.unwrap().value {
        SolveOutcome::Distribution(sol) => sol
            .try_expected_reward(&lumped_mrp.value.reward_vector())
            .unwrap(),
        SolveOutcome::Value(v) => v,
    }
}

#[test]
fn ping_stats_and_protocol_shutdown_round_trip() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    let server = start(ServerConfig::default());
    let mut c = connect(&server);

    let pong = assert_trichotomy(&c.request(r#"{"cmd":"ping"}"#).unwrap());
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    let stats = assert_trichotomy(&c.request(r#"{"cmd":"stats"}"#).unwrap());
    let body = stats.get("stats").expect("stats body");
    assert!(body.get("queue_depth").and_then(Json::as_u64).is_some());
    assert_eq!(body.get("draining").and_then(Json::as_bool), Some(false));

    // Protocol shutdown shares the SIGTERM path: drain acknowledged,
    // then the daemon stops cleanly.
    let bye = assert_trichotomy(&c.request(r#"{"cmd":"shutdown"}"#).unwrap());
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    server.join();
    mdl_serve::signal::reset();
}

#[test]
fn successful_solves_match_the_library_bit_for_bit() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    let server = start(ServerConfig::default());
    let mut c = connect(&server);

    for (measure, line) in [
        (
            Measure::Stationary,
            SolveLine::new(EXAMPLE_MODEL).measure("stationary").build(),
        ),
        (
            Measure::Transient(0.5),
            SolveLine::new(EXAMPLE_MODEL)
                .measure("transient")
                .t(0.5)
                .build(),
        ),
        (
            Measure::Accumulated(1.5),
            SolveLine::new(EXAMPLE_MODEL)
                .measure("accumulated")
                .t(1.5)
                .build(),
        ),
    ] {
        let reply = assert_trichotomy(&c.request(&line).unwrap());
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("ok"),
            "solve failed: {reply:?}"
        );
        let wire = reply.get("measure").and_then(Json::as_f64).unwrap();
        let reference = library_measure(measure);
        assert_eq!(
            wire.to_bits(),
            reference.to_bits(),
            "daemon {wire} != library {reference} for {measure:?}"
        );
        assert_eq!(reply.get("original_states").and_then(Json::as_u64), Some(8));
        let lumped = reply.get("lumped_states").and_then(Json::as_u64).unwrap();
        assert!(
            (1..=8).contains(&lumped),
            "lumped_states out of range: {lumped}"
        );
    }
    server.drain();
    server.join();
}

#[test]
fn deadline_expiry_is_an_honest_interrupted_error() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    // Each solver iteration stalls long enough that a short deadline
    // expires mid-solve; the cooperative budget check turns that into
    // a structured `interrupted` error, never a hang.
    mdl_obs::failpoint::set("solver.iterate", "sleep:100ms").unwrap();
    let server = start(ServerConfig::default());
    let mut c = connect(&server);

    let line = SolveLine::new(EXAMPLE_MODEL).deadline_ms(30).build();
    let reply = assert_trichotomy(&c.request(&line).unwrap());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        reply.get("kind").and_then(Json::as_str),
        Some("interrupted"),
        "want interrupted, got {reply:?}"
    );

    mdl_obs::failpoint::clear();
    // The same request without the deadline pressure succeeds — the
    // daemon recovered fully.
    let ok = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    server.drain();
    server.join();
}

#[test]
fn mid_solve_faults_are_structured_errors_and_the_daemon_survives() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    let server = start(ServerConfig::default());
    let mut c = connect(&server);

    // A NaN injected into every solver iteration defeats the whole
    // fallback ladder: the response is an honest `failed`, with the
    // per-attempt ladder log showing what was tried.
    mdl_obs::failpoint::set("solver.iterate", "nan").unwrap();
    let reply = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("failed"));
    mdl_obs::failpoint::clear();

    // A panic inside the worker is caught, reported as `internal`, and
    // the worker keeps serving.
    mdl_obs::failpoint::set("serve.request", "panic@1").unwrap();
    let reply = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("internal"));
    assert!(reply
        .get("detail")
        .and_then(Json::as_str)
        .unwrap()
        .contains("panicked"));

    // Same connection, same worker pool: next request is fine.
    let ok = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    mdl_obs::failpoint::clear();
    server.drain();
    server.join();
}

#[test]
fn overload_sheds_honestly_with_retry_hints() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    // One worker, held busy 300ms per request: with a queue of one and
    // a tenant cap of two, most of a 6-way burst must be shed.
    mdl_obs::failpoint::set("serve.request", "sleep:300ms").unwrap();
    let server = start(ServerConfig {
        workers: 1,
        queue_limit: 1,
        tenant_cap: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let clients: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let line = SolveLine::new(EXAMPLE_MODEL)
                    .tenant(&format!("burst-{}", i % 2))
                    .build();
                c.request(&line).unwrap()
            })
        })
        .collect();
    let replies: Vec<String> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    mdl_obs::failpoint::clear();

    let mut statuses = HashSet::new();
    let mut sheds = 0;
    for line in &replies {
        let parsed = assert_trichotomy(line);
        let status = parsed.get("status").and_then(Json::as_str).unwrap();
        statuses.insert(status.to_string());
        if status == "shed" {
            sheds += 1;
            // The hint is a usable back-off, not garbage.
            let hint = parsed.get("retry_after_ms").and_then(Json::as_u64).unwrap();
            assert!(hint <= 30_000, "retry hint {hint}ms exceeds the clamp");
        } else {
            assert_eq!(status, "ok", "unexpected status in {line}");
        }
    }
    assert!(sheds >= 1, "a 6-way burst against queue=1 must shed");
    assert!(
        statuses.contains("ok"),
        "admitted requests must still succeed: {replies:?}"
    );
    server.drain();
    server.join();
}

#[test]
fn client_disconnect_cancels_the_inflight_solve() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    // Stretch each solve so the disconnect lands mid-flight.
    mdl_obs::failpoint::set("solver.iterate", "sleep:50ms").unwrap();
    let server = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let before = mdl_obs::counter("serve.client_gone").get();

    // Fire a long solve and vanish without reading the response.
    {
        let mut doomed = connect(&server);
        doomed
            .send(&SolveLine::new(EXAMPLE_MODEL).deadline_ms(60_000).build())
            .unwrap();
        std::thread::sleep(Duration::from_millis(150));
    } // dropped: connection closed mid-solve

    // The lone worker must notice the disconnect, cancel the orphaned
    // solve, and serve the next client promptly.
    mdl_obs::failpoint::clear();
    let mut c = connect(&server);
    let reply = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));

    // The cancellation was observed and counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while mdl_obs::counter("serve.client_gone").get() == before
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        mdl_obs::counter("serve.client_gone").get() > before,
        "client disconnect was never detected"
    );
    server.drain();
    server.join();
}

#[test]
fn concurrent_chaos_clients_terminate_in_the_trichotomy_without_corrupting_the_cache() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    // Periodic injected faults plus jitter, a shared on-disk cache, and
    // more clients than workers: the closest this suite gets to the
    // production failure soup.
    mdl_obs::failpoint::set("serve.request", "sleep:10ms").unwrap();
    mdl_obs::failpoint::set("solver.iterate", "nan@7").unwrap();
    mdl_obs::failpoint::set("store.write", "err@3").unwrap();
    let dir = temp_dir("chaos");
    let server = start(ServerConfig {
        workers: 2,
        queue_limit: 4,
        tenant_cap: 4,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut c = Client::connect(&addr).unwrap();
                c.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for round in 0..3 {
                    let line = SolveLine::new(EXAMPLE_MODEL)
                        .tenant(&format!("chaos-{}", i % 3))
                        .deadline_ms(10_000)
                        .build();
                    got.push((i, round, c.request(&line).unwrap()));
                }
                got
            })
        })
        .collect();
    let mut oks = 0;
    for t in clients {
        for (i, round, line) in t.join().unwrap() {
            let parsed = assert_trichotomy(&line);
            if parsed.get("status").and_then(Json::as_str) == Some("ok") {
                oks += 1;
                // Under chaos a success may come off a lower ladder rung
                // (different method, same converged answer): correct to
                // solver tolerance, not necessarily the same bits.
                let wire = parsed.get("measure").and_then(Json::as_f64).unwrap();
                let reference = library_measure(Measure::Stationary);
                assert!(
                    (wire - reference).abs() <= 1e-6 * reference.abs().max(1.0),
                    "client {i} round {round} got a wrong answer: {wire} vs {reference}"
                );
            }
        }
    }
    assert!(oks >= 1, "chaos must not defeat every request");
    mdl_obs::failpoint::clear();

    // No hidden corruption: the store never served an invalid artifact.
    let mut c = connect(&server);
    let stats = assert_trichotomy(&c.request(r#"{"cmd":"stats"}"#).unwrap());
    let invalid = stats
        .get("stats")
        .and_then(|b| b.get("store_invalid"))
        .and_then(Json::as_u64);
    assert_eq!(invalid, Some(0), "store served a corrupt artifact");
    drop(c);
    server.drain();
    server.join();

    // Drain swept every lock and temp file; only artifacts remain.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".lock") && !name.contains(".tmp."),
            "drain left debris behind: {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_solves_report_warm_and_resume_survives_a_drain() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::failpoint::clear();
    let dir = temp_dir("warm");

    // First daemon: populate the cache, then drain.
    let server = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut c = connect(&server);
    let cold = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    drop(c);
    server.drain();
    server.join();

    // Second daemon over the same cache: every stage restores, the
    // response says so, and the measure is still bit-identical.
    let server = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut c = connect(&server);
    let warm = assert_trichotomy(&c.request(&SolveLine::new(EXAMPLE_MODEL).build()).unwrap());
    assert_eq!(warm.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(warm.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("measure")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        cold.get("measure")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
    );
    drop(c);
    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
