//! Documented limitations of the compositional approach, demonstrated:
//! the paper is explicit that level-local conditions are only *sufficient*
//! and "the resulting lumped CTMC could possibly be lumped to a smaller
//! CTMC by a state-level lumping algorithm that has a flat (i.e., global)
//! view". These tests pin down two concrete mechanisms.

use mdlump::core::{DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;
use mdlump::statelump::{ordinary_partition, LumpOptions};

/// Two *identical* components on separate MD levels: the global symmetry
/// that swaps the levels (state (a, b) ≈ (b, a)) is invisible to per-level
/// lumping, but the flat state-level algorithm finds it.
#[test]
fn cross_level_symmetry_is_out_of_scope() {
    let mut flip = SparseFactor::new(2);
    flip.push(0, 1, 1.0);
    flip.push(1, 0, 2.0);
    let mut expr = KroneckerExpr::new(vec![2, 2]);
    expr.add_term(1.0, vec![Some(flip.clone()), None]);
    expr.add_term(1.0, vec![None, Some(flip)]);

    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[2, 2], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[2, 2], 4).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();

    // Per-level: each 2-state component is asymmetric (rates 1 vs 2), so
    // the compositional algorithm cannot reduce anything.
    let comp = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert_eq!(comp.stats.lumped_states, 4);

    // Flat state-level lumping sees (0,1) ≈ (1,0) and finds 3 classes.
    let flat = mrp.matrix().flatten();
    let optimal = ordinary_partition(&flat, &mrp.reward_vector(), &LumpOptions::default());
    assert_eq!(optimal.num_classes(), 3);
    let i01 = mrp.matrix().reach().index_of(&[0, 1]).unwrap() as usize;
    let i10 = mrp.matrix().reach().index_of(&[1, 0]).unwrap() as usize;
    assert!(optimal.same_class(i01, i10));
}

/// Aggregate-only symmetries *within* a level that hold for the flat rows
/// but not per (node, child) formal sums: the sufficient condition of
/// Section 4 misses them, and the paper's Section 4 discussion predicts
/// exactly this.
#[test]
fn formal_sum_condition_is_only_sufficient() {
    use mdlump::md::{ChildId, MdBuilder, Term};
    // Level-0 states 1 and 2 reach the same *flat* block matrix through
    // different child structures: state 1 via child A = identity with
    // coefficient 2, state 2 via children B + C (which sum to twice the
    // identity) with coefficient 1 each.
    let mut b = MdBuilder::new(vec![3, 2]).unwrap();
    let node_b = b
        .intern_node(
            1,
            vec![
                (0, 0, vec![Term::new(2.0, ChildId::Terminal)]),
                (1, 1, vec![Term::new(1.0, ChildId::Terminal)]),
            ],
        )
        .unwrap();
    let node_c = b
        .intern_node(1, vec![(1, 1, vec![Term::new(1.0, ChildId::Terminal)])])
        .unwrap();
    let node_a = b
        .intern_node(
            1,
            vec![
                (0, 0, vec![Term::new(1.0, ChildId::Terminal)]),
                (1, 1, vec![Term::new(1.0, ChildId::Terminal)]),
            ],
        )
        .unwrap();
    let root = b
        .intern_node(
            0,
            vec![
                (1, 0, vec![Term::new(2.0, ChildId::Node(node_a))]),
                (
                    2,
                    0,
                    vec![
                        Term::new(1.0, ChildId::Node(node_b)),
                        Term::new(1.0, ChildId::Node(node_c)),
                    ],
                ),
                // Give state 0 some behaviour so the chain is not trivial.
                (0, 1, vec![Term::new(1.0, ChildId::Node(node_a))]),
            ],
        )
        .unwrap();
    let md = b.finish(root).unwrap();
    let matrix = MdMatrix::new(md, Mdd::full(vec![3, 2]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[3, 2], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[3, 2], 6).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();

    // Compositional: states 1 and 2 stay apart (different formal sums).
    let comp = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert!(!comp.partitions[0].same_class(1, 2));

    // Flat: rows of (1, *) and (2, *) are equal (2·I = B + C), so the
    // state-level optimum merges them.
    let flat = mrp.matrix().flatten();
    let optimal = ordinary_partition(&flat, &mrp.reward_vector(), &LumpOptions::default());
    let reach = mrp.matrix().reach();
    for s2 in 0..2u32 {
        let a = reach.index_of(&[1, s2]).unwrap() as usize;
        let b = reach.index_of(&[2, s2]).unwrap() as usize;
        assert!(
            optimal.same_class(a, b),
            "flat view merges (1,{s2}) and (2,{s2})"
        );
    }
    assert!(optimal.num_classes() < comp.stats.lumped_states as usize);

    // The expanded-matrix ablation key recovers this case (at its cost).
    let expanded = mdlump::core::ablation::comp_lumping_level_expanded(
        mrp.matrix().md(),
        0,
        mdlump::partition::Partition::single_class(3),
        LumpKind::Ordinary,
        mdlump::linalg::Tolerance::default(),
    );
    assert!(expanded.partition.same_class(1, 2));
}
