//! End-to-end bit-identity contract of the parameter-sweep engine
//! (DESIGN.md §15).
//!
//! On random composed models, a sweep that re-rates one event must
//! produce, at every grid point, per-level partitions and a lumped
//! matrix **bitwise identical** to a full from-scratch re-lump of the
//! re-rated model — even though the sweep reuses the unchanged levels'
//! partitions as seeds and skips their refinement entirely.
//!
//! Event rates fold into the root level's coefficients when the
//! Kronecker expression is aggregated into an MD, so re-rating any
//! event perturbs exactly one level: the sweep must re-lump the root
//! and reuse every deeper level's partition.

use proptest::prelude::*;

use mdlump::core::{
    model_source_key, sweep_grid, CoreError, LumpKind, LumpRequest, Pipeline, SolveRequest,
    SweepRequest,
};
use mdlump::md::SparseFactor;
use mdlump::models::ComposedModel;

/// The swept event's rates: three well-separated grid points.
const GRID: [f64; 3] = [0.5, 1.25, 2.0];

/// A cyclic factor `s -> s+1 (mod n)` with the given per-step weights —
/// keeps every local space (and thus the product chain) irreducible, so
/// the stationary solve inside the sweep always converges.
fn cycle(n: usize, weights: &[f64]) -> SparseFactor {
    let mut f = SparseFactor::new(n);
    for s in 0..n {
        f.push(s, (s + 1) % n, weights[s % weights.len()]);
    }
    f
}

#[derive(Debug, Clone)]
struct Spec {
    sizes: [usize; 2],
    /// Extra local transitions per level: `(row, col, weight)` scaled
    /// into range by the level size.
    extras: Vec<(usize, usize, f64)>,
    /// Whether a synchronized two-level event is present.
    sync: bool,
    /// Rates of the fixed (non-swept) events.
    rates: [f64; 2],
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        (2usize..=4, 3usize..=5),
        prop::collection::vec(
            (
                0usize..20,
                0usize..20,
                prop::sample::select(vec![0.5, 1.0, 2.0]),
            ),
            0..6,
        ),
        any::<bool>(),
        (
            prop::sample::select(vec![0.3, 0.7, 1.1]),
            prop::sample::select(vec![0.4, 0.9, 1.6]),
        ),
    )
        .prop_map(|((a, b), extras, sync, (r0, r1))| Spec {
            sizes: [a, b],
            extras,
            sync,
            rates: [r0, r1],
        })
}

/// Builds the composed model at the swept event's base rate 1.0.
fn model(spec: &Spec) -> ComposedModel {
    let [a, b] = spec.sizes;
    let mut m = ComposedModel::new();
    m.add_component("alpha", a, 0);
    m.add_component("beta", b, 0);
    // The swept event: a level-1 cycle whose rate the grid re-rates.
    m.add_event("swept", 1.0, vec![Some(cycle(a, &[1.0, 2.0])), None])
        .unwrap();
    // A fixed cycle on level 2 keeps it irreducible.
    m.add_event(
        "beta_cycle",
        spec.rates[0],
        vec![None, Some(cycle(b, &[1.0, 1.0, 0.5]))],
    )
    .unwrap();
    // Random extra local structure on level 2 (level 1's structure stays
    // fixed so only the swept *rate* distinguishes grid points).
    let mut extra = SparseFactor::new(b);
    for &(r, c, w) in &spec.extras {
        extra.push(r % b, c % b, w);
    }
    if extra.iter().next().is_some() {
        m.add_event("beta_extra", spec.rates[1], vec![None, Some(extra)])
            .unwrap();
    }
    if spec.sync {
        m.add_event(
            "sync",
            0.6,
            vec![Some(cycle(a, &[1.0])), Some(cycle(b, &[1.0]))],
        )
        .unwrap();
    }
    m
}

fn reward(sizes: &[usize]) -> mdlump::core::DecomposableVector {
    mdlump::core::DecomposableVector::constant(sizes, 1.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every sweep point's partitions and lumped matrix are bitwise
    /// equal to a full re-lump of the re-rated model, and only the root
    /// level (where rates fold) is ever re-lumped after the first point.
    #[test]
    fn sweep_is_bit_identical_to_full_relump(spec in spec()) {
        let base = model(&spec);
        let sizes = base.sizes();
        let reach = base.reachable().unwrap();

        let pipeline = Pipeline::new(model_source_key(&format!("sweep-proptest {spec:?}")));
        let points = sweep_grid(&[("swept".to_string(), GRID.to_vec())]);
        let request = SweepRequest::new(
            LumpRequest::new(LumpKind::Ordinary),
            SolveRequest::stationary(),
        )
        .warm_start(false);
        let outcome = pipeline
            .sweep(&points, &request, |pt| {
                let mut m = base.clone();
                m.set_event_rate("swept", pt.params[0].1)
                    .map_err(|e| CoreError::Build { detail: e.to_string() })?;
                m.build_md_mrp_with_reach(reward(&sizes), reach.clone())
                    .map_err(|e| CoreError::Build { detail: e.to_string() })
            })
            .unwrap();

        for (i, (mu, r)) in GRID.iter().zip(&outcome.points).enumerate() {
            // The naive path: re-rate, re-explore, re-lump from scratch.
            let mut m = base.clone();
            m.set_event_rate("swept", *mu).unwrap();
            let mrp = m.build_md_mrp(reward(&sizes)).unwrap();
            let naive = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();

            prop_assert_eq!(&r.lump.partitions, &naive.partitions,
                "partitions at point {} (mu={})", i, mu);
            prop_assert_eq!(
                r.lump.mrp.matrix().flatten().max_abs_diff(&naive.mrp.matrix().flatten()),
                0.0,
                "lumped matrix at point {} (mu={})", i, mu
            );
            // Rates fold into the root level's coefficients: after the
            // first point only that level re-lumps.
            if i == 0 {
                prop_assert_eq!(r.levels_relumped, 2);
            } else {
                prop_assert_eq!(r.levels_reused, 1, "deeper level reused at point {}", i);
                prop_assert_eq!(r.levels_relumped, 1);
            }
        }
    }
}
