//! Property-based tests over randomly generated compositional models:
//! representation equivalences and lumping soundness on arbitrary inputs.

use proptest::prelude::*;

use mdlump::core::{verify, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::linalg::{vec_ops, RateMatrix, Tolerance};
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;
use mdlump::models::random::{planted_model, LevelSpec};

/// Strategy: a random sparse factor over `size` states with rates drawn
/// from a small constant set (keeping bit-exact arithmetic meaningful).
fn factor(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (
        0..size,
        0..size,
        prop::sample::select(vec![0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..size * 2).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r, c, v);
        }
        f
    })
}

/// Strategy: a random 2-level Kronecker expression.
fn expr(s1: usize, s2: usize) -> impl Strategy<Value = KroneckerExpr> {
    let term = (
        prop::sample::select(vec![0.5, 1.0, 1.5]),
        prop::option::of(factor(s1)),
        prop::option::of(factor(s2)),
    );
    prop::collection::vec(term, 1..5).prop_map(move |terms| {
        let mut e = KroneckerExpr::new(vec![s1, s2]);
        for (rate, f1, f2) in terms {
            e.add_term(rate, vec![f1, f2]);
        }
        e
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The MD of a Kronecker expression represents exactly the same matrix
    /// (flattened over the full product space).
    #[test]
    fn md_flatten_equals_kronecker_flatten(e in expr(3, 4)) {
        let md = e.to_md().expect("md builds");
        let full = Mdd::full(vec![3, 4]).expect("full mdd");
        let m = MdMatrix::new(md, full).expect("pairs");
        let diff = m.flatten().max_abs_diff(&e.flatten_full());
        prop_assert_eq!(diff, 0.0);
    }

    /// Term aggregation never changes the represented matrix.
    #[test]
    fn aggregation_preserves_matrix(e in expr(3, 3)) {
        let diff = e.flatten_full().max_abs_diff(&e.aggregate().flatten_full());
        prop_assert!(diff < 1e-12);
    }

    /// Symbolic and flat matrix-vector products agree in both
    /// orientations.
    #[test]
    fn symbolic_matvec_matches_flat(e in expr(4, 3), seed in 0u64..1000) {
        let md = e.to_md().expect("md builds");
        let full = Mdd::full(vec![4, 3]).expect("full mdd");
        let m = MdMatrix::new(md, full).expect("pairs");
        let flat = m.flatten();
        let n = m.num_states();
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 11) as f64 * 0.1).collect();

        let mut y1 = vec![0.0; n];
        m.acc_mat_vec(&x, &mut y1);
        let mut y2 = vec![0.0; n];
        flat.acc_mat_vec(&x, &mut y2);
        prop_assert!(vec_ops::max_abs_diff(&y1, &y2) < 1e-10);

        let mut z1 = vec![0.0; n];
        m.acc_vec_mat(&x, &mut z1);
        let mut z2 = vec![0.0; n];
        flat.acc_vec_mat(&x, &mut z2);
        prop_assert!(vec_ops::max_abs_diff(&z1, &z2) < 1e-10);
    }

    /// Ordinary compositional lumping of any random model passes the
    /// independent Theorem 1/2 verification.
    #[test]
    fn ordinary_lump_always_verifies(e in expr(4, 4)) {
        let sizes = vec![4usize, 4];
        let md = e.to_md().expect("md builds");
        let full = Mdd::full(sizes.clone()).expect("full mdd");
        let matrix = MdMatrix::new(md, full).expect("pairs");
        let reward = DecomposableVector::constant(&sizes, 1.0).expect("reward");
        let initial = DecomposableVector::uniform(&sizes, 16).expect("initial");
        let mrp = MdMrp::new(matrix, reward, initial).expect("mrp");
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).expect("lumps");
        prop_assert!(verify::verify_ordinary(&mrp, &result, Tolerance::default()).is_ok());
    }

    /// Exact compositional lumping of any random model passes the
    /// independent verification.
    #[test]
    fn exact_lump_always_verifies(e in expr(3, 4)) {
        let sizes = vec![3usize, 4];
        let md = e.to_md().expect("md builds");
        let full = Mdd::full(sizes.clone()).expect("full mdd");
        let matrix = MdMatrix::new(md, full).expect("pairs");
        let reward = DecomposableVector::constant(&sizes, 1.0).expect("reward");
        let initial = DecomposableVector::uniform(&sizes, 12).expect("initial");
        let mrp = MdMrp::new(matrix, reward, initial).expect("mrp");
        let result = LumpRequest::new(LumpKind::Exact).run(&mrp).expect("lumps");
        prop_assert!(verify::verify_exact(&mrp, &result, Tolerance::default()).is_ok());
    }

    /// On planted-symmetry models the algorithm recovers at least the
    /// planted partition, for both lumping kinds and varying shapes.
    #[test]
    fn planted_symmetries_recovered(
        seed in 0u64..500,
        copies in 2usize..4,
        classes in 2usize..4,
    ) {
        for kind in [LumpKind::Ordinary, LumpKind::Exact] {
            let pm = planted_model(
                seed,
                &[LevelSpec::uniform(classes, copies), LevelSpec::uniform(2, 2)],
                kind,
                2,
                1,
            );
            let sizes = pm.expr.sizes().to_vec();
            let count: usize = sizes.iter().product();
            let md = pm.expr.to_md().expect("md builds");
            let matrix = MdMatrix::new(md, Mdd::full(sizes.clone()).expect("mdd"))
                .expect("pairs");
            let reward = DecomposableVector::constant(&sizes, 1.0).expect("reward");
            let initial =
                DecomposableVector::uniform(&sizes, count as u64).expect("initial");
            let mrp = MdMrp::new(matrix, reward, initial).expect("mrp");
            let result = LumpRequest::new(kind).run(&mrp).expect("lumps");
            for (l, planted) in pm.planted.iter().enumerate() {
                prop_assert!(
                    planted.is_refinement_of(&result.partitions[l]),
                    "kind {:?} level {} seed {}", kind, l, seed
                );
            }
        }
    }

    /// Lumping is idempotent: re-lumping a lumped chain finds nothing new.
    #[test]
    fn lumping_is_idempotent(e in expr(4, 4)) {
        let sizes = vec![4usize, 4];
        let md = e.to_md().expect("md builds");
        let matrix = MdMatrix::new(md, Mdd::full(sizes.clone()).expect("mdd")).expect("pairs");
        let reward = DecomposableVector::constant(&sizes, 1.0).expect("reward");
        let initial = DecomposableVector::uniform(&sizes, 16).expect("initial");
        let mrp = MdMrp::new(matrix, reward, initial).expect("mrp");
        let once = LumpRequest::new(LumpKind::Ordinary).run(&mrp).expect("lumps");
        let twice = LumpRequest::new(LumpKind::Ordinary).run(&once.mrp).expect("lumps again");
        prop_assert_eq!(once.stats.lumped_states, twice.stats.lumped_states);
    }
}
