//! Edge cases and degenerate inputs across the stack.

use mdlump::core::{verify, Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::linalg::Tolerance;
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;

fn sym_level2() -> SparseFactor {
    // States 1 and 2 symmetric against 0 (with 1↔2 exchange).
    let mut w = SparseFactor::new(3);
    w.push(0, 1, 1.0);
    w.push(0, 2, 1.0);
    w.push(1, 0, 2.0);
    w.push(2, 0, 2.0);
    w.push(1, 2, 0.5);
    w.push(2, 1, 0.5);
    w
}

fn cyc2() -> SparseFactor {
    let mut f = SparseFactor::new(2);
    f.push(0, 1, 3.0);
    f.push(1, 0, 3.0);
    f
}

#[test]
fn asymmetric_reachability_blocks_matrix_symmetry() {
    // The rate matrix is symmetric in level-2 states 1 and 2, but the
    // reachable set contains (0,1) and not (0,2): the structural
    // MDD-compatibility condition (DESIGN.md §4.2) must keep them apart,
    // and the result must still verify on the flat chains.
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc2()), None]);
    expr.add_term(1.0, vec![None, Some(sym_level2())]);
    let md = expr.to_md().unwrap();

    let reach = Mdd::from_tuples(
        vec![2, 3],
        vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1], vec![1, 2]],
    )
    .unwrap();
    let matrix = MdMatrix::new(md, reach).unwrap();
    let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
    let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0]).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();

    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert!(
        !result.partitions[1].same_class(1, 2),
        "reachability asymmetry must block the merge"
    );
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
}

#[test]
fn symmetric_reachability_allows_matrix_symmetry() {
    // Same matrix, but with a reachable set closed under the 1↔2 swap:
    // now the merge is allowed.
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc2()), None]);
    expr.add_term(1.0, vec![None, Some(sym_level2())]);
    let md = expr.to_md().unwrap();
    let reach = Mdd::from_tuples(
        vec![2, 3],
        vec![
            vec![0, 0],
            vec![0, 1],
            vec![0, 2],
            vec![1, 0],
            vec![1, 1],
            vec![1, 2],
        ],
    )
    .unwrap();
    let matrix = MdMatrix::new(md, reach).unwrap();
    let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
    let initial = DecomposableVector::point_mass(&[2, 3], &[0, 0]).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert!(result.partitions[1].same_class(1, 2));
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
}

#[test]
fn minimal_chain_lumps_to_itself() {
    // A fully asymmetric chain: lumping is the identity.
    let mut a = SparseFactor::new(2);
    a.push(0, 1, 1.0);
    a.push(1, 0, 2.0);
    let mut b = SparseFactor::new(2);
    b.push(0, 1, 4.0);
    b.push(1, 0, 8.0);
    let mut expr = KroneckerExpr::new(vec![2, 2]);
    expr.add_term(1.0, vec![Some(a), None]);
    expr.add_term(1.0, vec![None, Some(b)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap();
    // Distinguish every local state by reward so nothing can merge.
    let reward =
        DecomposableVector::new(vec![vec![1.0, 2.0], vec![1.0, 5.0]], Combiner::Product).unwrap();
    let initial = DecomposableVector::uniform(&[2, 2], 4).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert_eq!(result.stats.lumped_states, 4);
    assert_eq!(result.stats.reduction_factor(), 1.0);
    // Flat matrices are identical up to state order (here: identical).
    assert_eq!(
        mrp.matrix()
            .flatten()
            .max_abs_diff(&result.mrp.matrix().flatten()),
        0.0
    );
}

#[test]
fn zero_matrix_collapses_completely() {
    // An MD representing the zero matrix: every state is trivially
    // equivalent under a constant reward.
    let expr = KroneckerExpr::new(vec![2, 3]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert_eq!(result.stats.lumped_states, 1);
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
}

#[test]
fn single_state_levels_are_harmless() {
    let mut f = SparseFactor::new(3);
    f.push(0, 1, 1.0);
    f.push(1, 2, 1.0);
    f.push(2, 0, 1.0);
    let mut expr = KroneckerExpr::new(vec![1, 3, 1]);
    expr.add_term(2.0, vec![None, Some(f), None]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![1, 3, 1]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[1, 3, 1], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[1, 3, 1], 3).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert_eq!(result.partitions[0].num_classes(), 1);
    assert_eq!(result.partitions[2].num_classes(), 1);
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
}

#[test]
fn self_loops_in_r_are_preserved_by_lumping() {
    // R may carry self-loops (they cancel in Q); the quotient must keep
    // class-internal rates consistent.
    let mut f = SparseFactor::new(3);
    f.push(0, 0, 7.0); // self-loop
    f.push(0, 1, 1.0);
    f.push(0, 2, 1.0);
    f.push(1, 0, 2.0);
    f.push(2, 0, 2.0);
    f.push(1, 2, 0.5);
    f.push(2, 1, 0.5);
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc2()), None]);
    expr.add_term(1.0, vec![None, Some(f)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
    assert!(result.partitions[1].same_class(1, 2));
    verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();

    // Self-loop rate survives into the lumped R (row sums preserved).
    use mdlump::linalg::RateMatrix;
    let lumped_sums = result.mrp.matrix().row_sums();
    assert!(lumped_sums.iter().any(|&s| s > 7.0));
}

#[test]
fn tolerant_lumping_merges_noisy_rates() {
    // Rates equal only up to accumulation noise: Exact keys keep them
    // apart, Decimals(9) merges them, and the merged result verifies
    // under the same tolerance.
    let mut w = SparseFactor::new(3);
    w.push(0, 1, 1.0);
    w.push(0, 2, 1.0);
    w.push(1, 0, 0.1 + 0.2); // 0.30000000000000004
    w.push(2, 0, 0.3); // mathematically equal, bitwise different
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc2()), None]);
    expr.add_term(1.0, vec![None, Some(w)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let reward = DecomposableVector::constant(&[2, 3], 1.0).unwrap();
    let initial = DecomposableVector::uniform(&[2, 3], 6).unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();

    let exact = LumpRequest::new(LumpKind::Ordinary)
        .tolerance(Tolerance::Exact)
        .run(&mrp)
        .unwrap();
    let tolerant = LumpRequest::new(LumpKind::Ordinary)
        .tolerance(Tolerance::Decimals(9))
        .run(&mrp)
        .unwrap();
    assert!(tolerant.stats.lumped_states < exact.stats.lumped_states);
    verify::verify_ordinary(&mrp, &tolerant, Tolerance::Decimals(9)).unwrap();
}
