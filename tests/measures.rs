//! Measure-preservation integration tests: every measure class the stack
//! supports (stationary, transient, accumulated) must be preserved by both
//! kinds of compositional lumping.

use mdlump::core::{Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::ctmc::{SolverOptions, TransientOptions};
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;
use mdlump::models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdlump::models::tandem::{TandemConfig, TandemModel, TandemReward};

fn tandem_mrp() -> MdMrp {
    TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    })
    .build_md_mrp_with_reward(TandemReward::Availability)
    .expect("tandem builds")
}

#[test]
fn ordinary_lump_preserves_transient_reward() {
    let mrp = tandem_mrp();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let opts = TransientOptions::default();
    for &t in &[0.5, 2.0, 10.0] {
        let full = mrp
            .expected_transient_reward(t, &opts)
            .expect("full transient");
        let lumped = result
            .mrp
            .expected_transient_reward(t, &opts)
            .expect("lumped transient");
        assert!((full - lumped).abs() < 1e-9, "t={t}: {full} vs {lumped}");
    }
}

#[test]
fn ordinary_lump_preserves_accumulated_reward() {
    let mrp = tandem_mrp();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let opts = TransientOptions::default();
    for &t in &[1.0, 5.0] {
        let full = mrp
            .expected_accumulated_reward(t, &opts)
            .expect("full accumulated");
        let lumped = result
            .mrp
            .expected_accumulated_reward(t, &opts)
            .expect("lumped accumulated");
        assert!(
            (full - lumped).abs() < 1e-8,
            "t={t}: {full} vs {lumped} (expected downtime over mission time)"
        );
    }
}

#[test]
fn shared_repair_interval_of_time_measures_preserved() {
    let model = SharedRepairModel::new(SharedRepairConfig {
        machines: 6,
        ..SharedRepairConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let opts = TransientOptions::default();
    // Expected machine-uptime accumulated over a mission of length 20.
    let full = mrp.expected_accumulated_reward(20.0, &opts).expect("full");
    let lumped = result
        .mrp
        .expected_accumulated_reward(20.0, &opts)
        .expect("lumped");
    assert!((full - lumped).abs() < 1e-7, "{full} vs {lumped}");
    // Sanity: at most M × t machine-time units.
    assert!(full > 0.0 && full < 6.0 * 20.0);
}

#[test]
fn exact_lump_preserves_accumulated_reward() {
    // Ring model with a planted half-turn exact symmetry (as in the
    // exact_transient example).
    let mut phase = SparseFactor::new(3);
    phase.push(0, 1, 1.0);
    phase.push(1, 2, 1.0);
    phase.push(2, 0, 1.0);
    let mut ring = SparseFactor::new(6);
    for i in 0..6 {
        ring.push(i, (i + 1) % 6, 2.0);
        ring.push(i, (i + 5) % 6, 1.0);
    }
    let mut expr = KroneckerExpr::new(vec![3, 6]);
    expr.add_term(1.0, vec![Some(phase), None]);
    expr.add_term(1.0, vec![None, Some(ring)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![3, 6]).unwrap()).unwrap();
    let reward = DecomposableVector::new(
        vec![vec![1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]],
        Combiner::Product,
    )
    .unwrap();
    let initial = DecomposableVector::new(
        vec![vec![1.0, 0.0, 0.0], vec![0.5, 0.0, 0.0, 0.5, 0.0, 0.0]],
        Combiner::Product,
    )
    .unwrap();
    let mrp = MdMrp::new(matrix, reward, initial).unwrap();

    let result = LumpRequest::new(LumpKind::Exact).run(&mrp).expect("lumps");
    let measures = result.exact_measures().expect("exact");
    let opts = TransientOptions::default();
    for &t in &[0.5, 2.0, 8.0] {
        let full = mrp.expected_accumulated_reward(t, &opts).expect("full");
        let lumped = measures
            .expected_accumulated_reward(t, &opts)
            .expect("lumped");
        assert!((full - lumped).abs() < 1e-8, "t={t}: {full} vs {lumped}");
    }
}

#[test]
fn accumulated_reward_consistent_with_transient_derivative() {
    // d/dt of the accumulated reward at t is the instantaneous expected
    // reward at t: finite-difference check on the tandem chain.
    let mrp = tandem_mrp();
    let opts = TransientOptions::default();
    let (t, h) = (2.0, 1e-4);
    let upper = mrp.expected_accumulated_reward(t + h, &opts).unwrap();
    let lower = mrp.expected_accumulated_reward(t - h, &opts).unwrap();
    let derivative = (upper - lower) / (2.0 * h);
    let instantaneous = mrp.expected_transient_reward(t, &opts).unwrap();
    assert!(
        (derivative - instantaneous).abs() < 1e-5,
        "{derivative} vs {instantaneous}"
    );
}

#[test]
fn parallel_matrix_solves_lumped_tandem_identically() {
    use mdlump::ctmc::ParCsr;
    use mdlump::linalg::vec_ops;
    let mrp = tandem_mrp();
    let flat = mrp.matrix().flatten();
    let serial = mdlump::ctmc::stationary_power(&flat, &SolverOptions::default()).unwrap();
    let par = ParCsr::new(flat, 4);
    let parallel = mdlump::ctmc::stationary_power(&par, &SolverOptions::default()).unwrap();
    assert!(vec_ops::max_abs_diff(&serial.probabilities, &parallel.probabilities) < 1e-12);
}
