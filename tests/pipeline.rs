//! End-to-end integration tests spanning the whole stack: model → matrix
//! diagram + MDD → compositional lumping → verification → numerical
//! solution → measures.

use mdlump::core::{verify, LumpKind, LumpRequest};
use mdlump::ctmc::{SolverOptions, StationaryMethod};
use mdlump::linalg::Tolerance;
use mdlump::models::shared_repair::{SharedRepairConfig, SharedRepairModel};
use mdlump::models::tandem::{TandemConfig, TandemModel, TandemReward};

fn tandem_j1() -> mdlump::core::MdMrp {
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    model.build_md_mrp().expect("tandem builds")
}

#[test]
fn tandem_lump_verifies_against_flat_theorems() {
    let mrp = tandem_j1();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    verify::verify_ordinary(&mrp, &result, Tolerance::default())
        .expect("independent Theorem 1/2 verification");
}

#[test]
fn tandem_lumped_chain_gives_same_availability_with_both_solvers() {
    let mrp = tandem_j1();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let power = SolverOptions {
        method: StationaryMethod::Power,
        ..Default::default()
    };
    let jacobi = SolverOptions {
        method: StationaryMethod::Jacobi,
        ..Default::default()
    };
    let a = result
        .mrp
        .expected_stationary_reward(&power)
        .expect("power solves");
    let b = result
        .mrp
        .expected_stationary_reward(&jacobi)
        .expect("jacobi solves");
    assert!((a - b).abs() < 1e-7, "{a} vs {b}");
}

#[test]
fn tandem_lumped_flat_and_symbolic_solutions_agree() {
    let mrp = tandem_j1();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let opts = SolverOptions::default();
    let symbolic = result.mrp.stationary(&opts).expect("symbolic solve");
    let flat = result.mrp.to_flat_mrp().expect("flattens");
    let explicit = flat.stationary(&opts).expect("flat solve");
    let diff =
        mdlump::linalg::vec_ops::max_abs_diff(&symbolic.probabilities, &explicit.probabilities);
    assert!(diff < 1e-9, "max diff {diff}");
}

#[test]
fn tandem_quasi_reduce_changes_nothing_semantically() {
    let mrp = tandem_j1();
    let plain = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let reduced = LumpRequest::new(LumpKind::Ordinary)
        .quasi_reduce(true)
        .run(&mrp)
        .expect("lumps");
    assert_eq!(plain.stats.lumped_states, reduced.stats.lumped_states);
    let diff = plain
        .mrp
        .matrix()
        .flatten()
        .max_abs_diff(&reduced.mrp.matrix().flatten());
    assert_eq!(diff, 0.0);
}

#[test]
fn tandem_rewards_constrain_lumping_monotonically() {
    // A constant reward imposes no constraints; the availability reward
    // can only refine the result.
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let free = LumpRequest::new(LumpKind::Ordinary)
        .run(
            &model
                .build_md_mrp_with_reward(TandemReward::Constant)
                .unwrap(),
        )
        .unwrap();
    let avail = LumpRequest::new(LumpKind::Ordinary)
        .run(
            &model
                .build_md_mrp_with_reward(TandemReward::Availability)
                .unwrap(),
        )
        .unwrap();
    assert!(free.stats.lumped_states <= avail.stats.lumped_states);
    let qlen = LumpRequest::new(LumpKind::Ordinary)
        .run(
            &model
                .build_md_mrp_with_reward(TandemReward::MsmqQueueLength)
                .unwrap(),
        )
        .unwrap();
    assert!(free.stats.lumped_states <= qlen.stats.lumped_states);
}

#[test]
fn tandem_lump_stats_are_consistent() {
    let mrp = tandem_j1();
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    // Per-level class counts multiply up to at least the lumped count
    // (reachability can only prune the product).
    let product: u64 = result
        .stats
        .per_level
        .iter()
        .map(|l| l.lumped_size as u64)
        .product();
    assert!(result.stats.lumped_states <= product);
    // Class sizes over the lumped space must sum to the original count.
    let total: u64 = result.class_sizes().iter().sum();
    assert_eq!(total, result.stats.original_states);
    // Memory shrinks.
    assert!(result.stats.memory_after < result.stats.memory_before);
}

#[test]
fn shared_repair_scales_past_the_unlumped_horizon() {
    // M = 14 machines: 2^14 = 16384 configurations per controller mode;
    // the lumped chain has 2 × 15 states and solves instantly.
    let model = SharedRepairModel::new(SharedRepairConfig {
        machines: 14,
        ..SharedRepairConfig::default()
    });
    let mrp = model.build_md_mrp().expect("builds");
    assert_eq!(mrp.num_states(), 2 * (1 << 14));
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    assert_eq!(result.stats.lumped_states, 2 * 15);
    let mean_up = result
        .mrp
        .expected_stationary_reward(&SolverOptions::default())
        .expect("solves");
    assert!(mean_up > 0.0 && mean_up < 14.0);
}

#[test]
fn exact_lump_of_tandem_verifies() {
    // Exact lumping conditions columns; the uniform-dispatch symmetry
    // still yields reductions, and the result must verify.
    let model = TandemModel::new(TandemConfig {
        jobs: 1,
        ..TandemConfig::default()
    });
    let mrp = model
        .build_md_mrp_with_reward(TandemReward::Constant)
        .expect("builds");
    let result = LumpRequest::new(LumpKind::Exact).run(&mrp).expect("lumps");
    verify::verify_exact(&mrp, &result, Tolerance::default()).expect("verifies");
}
