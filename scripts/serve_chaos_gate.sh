#!/usr/bin/env bash
# CI chaos gate for the mdl-serve daemon.
#
# Phase 1 starts the real binary on a free port with a scratch cache,
# drives it with the concurrent bench client, sends SIGTERM, and asserts
# the robustness contract:
#
#   * the daemon exits 0 (graceful drain, never a crash or hang),
#   * it logs "drained cleanly",
#   * the cache directory holds no leftover writer sidecar debris
#     (.lock / .tmp.* for classic artifacts, .maplock / .new.* for
#     mapped arena images).
#
# Phase 2 starts TWO daemons over ONE shared cache directory and drives
# them concurrently: both processes persist the same content-addressed
# artifacts and restore kernels through the shared mmap(2) path. Both
# must drain cleanly, both must report `store_invalid == 0` (no daemon
# ever observed a corrupt artifact from the other's writes), and the
# shared cache must hold no sidecar debris.
#
# Runs under whatever MDL_FAILPOINTS the environment provides; CI calls
# it once without failpoints and once with fault injection, and the
# contract must hold either way.
#
# Usage: scripts/serve_chaos_gate.sh [requests-per-client]

set -euo pipefail

REQUESTS="${1:-10}"
CACHE=$(mktemp -d)
SHARED=$(mktemp -d)
OUTDIR=$(mktemp -d)
trap 'rm -rf "$CACHE" "$SHARED" "$OUTDIR"' EXIT

echo "chaos gate: MDL_FAILPOINTS='${MDL_FAILPOINTS:-}' cache=$CACHE shared=$SHARED"

# Starts a daemon over $2's cache; logs to $OUTDIR/$1.{out,err} and
# sets DAEMON_PID / DAEMON_ADDR once it is accepting connections. Runs
# in the calling shell so the pid stays wait(1)-able.
start_daemon() {
  local name=$1 cache=$2
  cargo run --release -p mdl-serve --bin mdl-serve -- \
    --addr 127.0.0.1:0 --cache-dir "$cache" --metrics \
    > "$OUTDIR/$name.out" 2> "$OUTDIR/$name.err" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$OUTDIR/$name.out" 2>/dev/null && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "chaos gate: daemon $name died during startup" >&2
      cat "$OUTDIR/$name.err" >&2
      return 1
    fi
    sleep 0.1
  done
  DAEMON_ADDR=$(sed -n 's/^mdl-serve: listening on //p' "$OUTDIR/$name.out")
  if [ -z "$DAEMON_ADDR" ]; then
    echo "chaos gate: daemon $name never reported its address" >&2
    cat "$OUTDIR/$name.err" >&2
    return 1
  fi
}

# Asserts a cache directory holds none of the four writer sidecar
# patterns the store's crash-recovery sweep owns.
assert_no_debris() {
  local dir=$1 label=$2 debris
  debris=$(find "$dir" \( -name '*.lock' -o -name '*.tmp.*' \
    -o -name '*.maplock' -o -name '*.new.*' \) | wc -l)
  echo "chaos gate: $label debris files: $debris"
  test "$debris" -eq 0
}

# Queries one stats field from a running daemon over the line protocol.
stats_field() {
  python3 - "$1" "$2" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=10) as s:
    s.sendall(b'{"cmd":"stats"}\n')
    line = s.makefile().readline()
print(json.loads(line)["stats"][sys.argv[2]])
PY
}

# ---------------------------------------------------------------------
# Phase 1: single daemon, SIGTERM drain.
# ---------------------------------------------------------------------
start_daemon solo "$CACHE"
SERVE_PID=$DAEMON_PID
ADDR=$DAEMON_ADDR
echo "chaos gate: daemon up on $ADDR (pid $SERVE_PID)"

# The bench client must complete against the (possibly fault-injected)
# daemon — its own smoke-less mode asserts nothing about latency, just
# that every request terminates. Client-side failpoints would corrupt
# the drive, so the client runs clean.
MDL_FAILPOINTS='' cargo run --release -p mdl-bench --bin serve -- \
  --addr "$ADDR" --requests "$REQUESTS"

kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
echo "chaos gate: daemon exit status $STATUS"
test "$STATUS" -eq 0

grep -q 'drained cleanly' "$OUTDIR/solo.err"

assert_no_debris "$CACHE" "cache"

# ---------------------------------------------------------------------
# Phase 2: two daemons over one shared (mapped) store.
# ---------------------------------------------------------------------
start_daemon a "$SHARED"
PID_A=$DAEMON_PID
ADDR_A=$DAEMON_ADDR
start_daemon b "$SHARED"
PID_B=$DAEMON_PID
ADDR_B=$DAEMON_ADDR
echo "chaos gate: shared-store daemons up on $ADDR_A (pid $PID_A) and $ADDR_B (pid $PID_B)"

MDL_FAILPOINTS='' cargo run --release -p mdl-bench --bin serve -- \
  --addr "$ADDR_A" --requests "$REQUESTS" &
CLIENT_A=$!
MDL_FAILPOINTS='' cargo run --release -p mdl-bench --bin serve -- \
  --addr "$ADDR_B" --requests "$REQUESTS" &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

INVALID_A=$(stats_field "$ADDR_A" store_invalid)
INVALID_B=$(stats_field "$ADDR_B" store_invalid)
echo "chaos gate: store_invalid a=$INVALID_A b=$INVALID_B"
test "$INVALID_A" -eq 0
test "$INVALID_B" -eq 0

for pid in "$PID_A" "$PID_B"; do
  kill -TERM "$pid"
  STATUS=0
  wait "$pid" || STATUS=$?
  echo "chaos gate: shared-store daemon (pid $pid) exit status $STATUS"
  test "$STATUS" -eq 0
done
grep -q 'drained cleanly' "$OUTDIR/a.err"
grep -q 'drained cleanly' "$OUTDIR/b.err"

assert_no_debris "$SHARED" "shared cache"

echo "chaos gate: OK"
