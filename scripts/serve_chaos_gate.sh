#!/usr/bin/env bash
# CI chaos gate for the mdl-serve daemon.
#
# Starts the real binary on a free port with a scratch cache, drives it
# with the concurrent bench client, sends SIGTERM, and asserts the
# robustness contract:
#
#   * the daemon exits 0 (graceful drain, never a crash or hang),
#   * it logs "drained cleanly",
#   * the cache directory holds no leftover .lock or .tmp.* debris.
#
# Runs under whatever MDL_FAILPOINTS the environment provides; CI calls
# it once without failpoints and once with fault injection, and the
# contract must hold either way.
#
# Usage: scripts/serve_chaos_gate.sh [requests-per-client]

set -euo pipefail

REQUESTS="${1:-10}"
CACHE=$(mktemp -d)
OUT=$(mktemp)
ERR=$(mktemp)
trap 'rm -rf "$CACHE" "$OUT" "$ERR"' EXIT

echo "chaos gate: MDL_FAILPOINTS='${MDL_FAILPOINTS:-}' cache=$CACHE"

cargo run --release -p mdl-serve --bin mdl-serve -- \
  --addr 127.0.0.1:0 --cache-dir "$CACHE" --metrics > "$OUT" 2> "$ERR" &
SERVE_PID=$!

for _ in $(seq 1 100); do
  grep -q 'listening on' "$OUT" 2>/dev/null && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "chaos gate: daemon died during startup" >&2
    cat "$ERR" >&2
    exit 1
  fi
  sleep 0.1
done
ADDR=$(sed -n 's/^mdl-serve: listening on //p' "$OUT")
if [ -z "$ADDR" ]; then
  echo "chaos gate: daemon never reported its address" >&2
  cat "$ERR" >&2
  exit 1
fi
echo "chaos gate: daemon up on $ADDR (pid $SERVE_PID)"

# The bench client must complete against the (possibly fault-injected)
# daemon — its own smoke-less mode asserts nothing about latency, just
# that every request terminates. Client-side failpoints would corrupt
# the drive, so the client runs clean.
MDL_FAILPOINTS='' cargo run --release -p mdl-bench --bin serve -- \
  --addr "$ADDR" --requests "$REQUESTS"

kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
echo "chaos gate: daemon exit status $STATUS"
test "$STATUS" -eq 0

grep -q 'drained cleanly' "$ERR"

DEBRIS=$(find "$CACHE" \( -name '*.lock' -o -name '*.tmp.*' \) | wc -l)
echo "chaos gate: cache debris files: $DEBRIS"
test "$DEBRIS" -eq 0

echo "chaos gate: OK"
