//! Quickstart: build a small compositional Markov model, represent it as a
//! matrix diagram, lump it compositionally, and check that a stationary
//! measure is preserved.
//!
//! Run with `cargo run --release --example quickstart`.

use mdlump::core::{Combiner, DecomposableVector, LumpKind, LumpRequest};
use mdlump::ctmc::SolverOptions;
use mdlump::md::SparseFactor;
use mdlump::models::ComposedModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-component model: a 2-state power controller and a farm of
    // three identical workers (state = number of busy workers is NOT
    // modelled — each worker is an explicit bit, so the level has 2^3
    // states and the lumping algorithm gets symmetry to discover).
    let mut model = ComposedModel::new();
    model.add_component("controller", 2, 0);
    model.add_component("workers", 8, 0);

    // Controller toggles between high (0) and low (1) power.
    let mut toggle = SparseFactor::new(2);
    toggle.push(0, 1, 1.0);
    toggle.push(1, 0, 1.0);
    model.add_event("toggle", 0.2, vec![Some(toggle), None])?;

    // Workers start jobs (rate depends on controller mode) and finish them.
    let mut high_gate = SparseFactor::new(2);
    high_gate.push(0, 0, 1.0);
    let mut low_gate = SparseFactor::new(2);
    low_gate.push(1, 1, 1.0);
    let mut start = SparseFactor::new(8);
    let mut finish = SparseFactor::new(8);
    for mask in 0..8usize {
        for w in 0..3 {
            if mask & (1 << w) == 0 {
                start.push(mask, mask | (1 << w), 1.0);
            } else {
                finish.push(mask, mask & !(1 << w), 1.0);
            }
        }
    }
    model.add_event(
        "start_high",
        2.0,
        vec![Some(high_gate), Some(start.clone())],
    )?;
    model.add_event("start_low", 0.5, vec![Some(low_gate), Some(start)])?;
    model.add_event("finish", 1.0, vec![None, Some(finish)])?;

    // Reward: number of busy workers (sum-combined over levels).
    let busy: Vec<f64> = (0..8).map(|mask: u32| mask.count_ones() as f64).collect();
    let reward = DecomposableVector::new(vec![vec![0.0, 0.0], busy], Combiner::Sum)?;

    // Build the symbolic MRP: matrix diagram + MDD-indexed state space.
    let mrp = model.build_md_mrp(reward)?;
    println!("unlumped states: {}", mrp.num_states());

    // Compositionally lump it (the DSN 2005 algorithm).
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp)?;
    println!(
        "lumped states:   {}  (x{:.1} reduction, lump took {:?})",
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        result.stats.elapsed
    );
    // The 2^3 worker bits collapse to the 4 busy-counts.
    assert_eq!(result.partitions[1].num_classes(), 4);

    // Measures agree between the full and the lumped chain.
    let opts = SolverOptions::default();
    let full = mrp.expected_stationary_reward(&opts)?;
    let lumped = result.mrp.expected_stationary_reward(&opts)?;
    println!("mean busy workers: full chain {full:.6}, lumped chain {lumped:.6}");
    assert!((full - lumped).abs() < 1e-6);

    Ok(())
}
