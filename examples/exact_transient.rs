//! Exact lumping and transient analysis: exact lumpability (Theorem 1b)
//! conditions columns instead of rows and — with a class-uniform initial
//! distribution — preserves the *transient* class probabilities. The
//! quotient chain's diagonal needs the representatives' exit rates, which
//! `LumpResult` records and `exact_measures()` uses (see
//! `mdl_core::exact`).
//!
//! Run with `cargo run --release --example exact_transient`.

use mdlump::core::{Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
use mdlump::ctmc::TransientOptions;
use mdlump::md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdlump::mdd::Mdd;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-level model: a 3-state phase process × a ring of 6 positions.
    // Ring positions are exactly lumpable by the planted pairing
    // {i, i+3}: columns and exit rates match under the half-turn.
    let mut phase = SparseFactor::new(3);
    phase.push(0, 1, 1.0);
    phase.push(1, 2, 1.0);
    phase.push(2, 0, 1.0);

    let mut ring = SparseFactor::new(6);
    for i in 0..6 {
        ring.push(i, (i + 1) % 6, 2.0);
        ring.push(i, (i + 5) % 6, 1.0);
    }

    let mut expr = KroneckerExpr::new(vec![3, 6]);
    expr.add_term(1.0, vec![Some(phase), None]);
    expr.add_term(1.0, vec![None, Some(ring)]);

    let matrix = MdMatrix::new(expr.to_md()?, Mdd::full(vec![3, 6])?)?;
    let reward = DecomposableVector::new(
        // Observe the ring with a half-turn-symmetric reward.
        vec![vec![1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]],
        Combiner::Product,
    )?;
    // Start in phase 0 with the ring mass concentrated on the class
    // {0, 3}: class-uniform (as exact lumping requires) but far from
    // stationary, so the transient measure actually evolves.
    let initial = DecomposableVector::new(
        vec![vec![1.0, 0.0, 0.0], vec![0.5, 0.0, 0.0, 0.5, 0.0, 0.0]],
        Combiner::Product,
    )?;
    let mrp = MdMrp::new(matrix, reward, initial)?;
    println!("unlumped states: {}", mrp.num_states());

    let result = LumpRequest::new(LumpKind::Exact).run(&mrp)?;
    println!(
        "exactly lumped:  {} states (ring partition: {} classes)",
        result.stats.lumped_states,
        result.partitions[1].num_classes()
    );

    let measures = result
        .exact_measures()
        .expect("exact lump carries exit rates");
    let opts = TransientOptions::default();
    println!("\n  t    E[r] full chain   E[r] exact-lumped   |Δ|");
    for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
        let full = mrp.expected_transient_reward(t, &opts)?;
        let lumped = measures.expected_transient_reward(t, &opts)?;
        println!(
            "{t:>5}  {full:>16.10}  {lumped:>18.10}  {:.2e}",
            (full - lumped).abs()
        );
        assert!((full - lumped).abs() < 1e-8);
    }

    Ok(())
}
