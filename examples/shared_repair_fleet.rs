//! Exponential-to-linear collapse: a fleet of `M` identical machines with
//! a shared repair facility has `2^M` failure configurations, but the
//! compositional lumping algorithm reduces the machine level to the
//! `M + 1` down-counts — making fleets solvable far beyond the reach of
//! the unlumped chain.
//!
//! Run with `cargo run --release --example shared_repair_fleet -- [M]`
//! (default `M = 12`).

use mdlump::core::{LumpKind, LumpRequest};
use mdlump::ctmc::SolverOptions;
use mdlump::models::shared_repair::{SharedRepairConfig, SharedRepairModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machines: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);

    println!(
        "machine-repair fleet, M = {machines} machines (2^M = {} configs)",
        1u64 << machines
    );
    let model = SharedRepairModel::new(SharedRepairConfig {
        machines,
        ..SharedRepairConfig::default()
    });

    let t0 = std::time::Instant::now();
    let mrp = model.build_md_mrp()?;
    println!(
        "  unlumped states: {} (built in {:?})",
        mrp.num_states(),
        t0.elapsed()
    );

    let t1 = std::time::Instant::now();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp)?;
    println!(
        "  lumped states:   {} (x{:.0} reduction in {:?})",
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        t1.elapsed()
    );
    assert_eq!(
        result.partitions[1].num_classes(),
        machines + 1,
        "machine level collapses to down-counts"
    );

    let opts = SolverOptions::default();
    let mean_up = result.mrp.expected_stationary_reward(&opts)?;
    println!("  mean machines up at steady state: {mean_up:.4} of {machines}");

    // For moderate fleets, cross-check against the unlumped solve.
    if mrp.num_states() <= 1 << 15 {
        let full = mrp.expected_stationary_reward(&opts)?;
        println!(
            "  cross-check vs unlumped solve: |Δ| = {:.3e}",
            (full - mean_up).abs()
        );
    } else {
        println!("  (unlumped chain too large to cross-check — exactly the point)");
    }

    Ok(())
}
