//! Dependability analysis of a fault-tolerant multiprocessor: steady-state
//! availability, mission reliability (expected operational fraction of a
//! mission), and the effect of redundancy — all computed on the
//! compositionally lumped chain.
//!
//! Run with `cargo run --release --example ftmp_dependability`.

use mdlump::core::{LumpKind, LumpRequest};
use mdlump::ctmc::{SolverOptions, TransientOptions};
use mdlump::models::ftmp::{FtmpConfig, FtmpModel};

fn analyze(label: &str, config: FtmpConfig) -> Result<(), Box<dyn std::error::Error>> {
    let model = FtmpModel::new(config);
    let mrp = model.build_md_mrp()?;
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp)?;
    let avail = result
        .mrp
        .expected_stationary_reward(&SolverOptions::default())?;
    let mission = 100.0;
    let operational = result
        .mrp
        .expected_accumulated_reward(mission, &TransientOptions::default())?;
    println!(
        "{label:<28} states {:>6} -> {:>4}  availability {:.6}  E[uptime]/{mission} = {:.4}",
        result.stats.original_states,
        result.stats.lumped_states,
        avail,
        operational / mission,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fault-tolerant multiprocessor: redundancy sweep");
    for (label, processors, memories) in [
        ("4 CPUs / 3 memories", 4, 3),
        ("6 CPUs / 4 memories", 6, 4),
        ("8 CPUs / 5 memories", 8, 5),
        ("10 CPUs / 6 memories", 10, 6),
    ] {
        analyze(
            label,
            FtmpConfig {
                processors,
                memories,
                ..FtmpConfig::default()
            },
        )?;
    }
    println!();
    println!("(each bitmask bank of 2^k states lumps to its k+1 up-counts; the");
    println!(" unlumped chain grows exponentially, the lumped one linearly)");
    Ok(())
}
