//! The paper's Section 5 scenario end-to-end: build the tandem
//! MSMQ + hypercube model, lump its matrix diagram compositionally, solve
//! the lumped chain symbolically, and report dependability and performance
//! measures.
//!
//! Run with `cargo run --release --example tandem_availability -- [J]`
//! (default `J = 1`).

use mdlump::core::{LumpKind, LumpRequest};
use mdlump::ctmc::SolverOptions;
use mdlump::models::tandem::{TandemConfig, TandemModel, TandemReward};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let config = TandemConfig {
        jobs,
        ..TandemConfig::default()
    };

    println!("tandem multi-processor system, J = {jobs}");
    let t0 = std::time::Instant::now();
    let model = TandemModel::new(config);
    println!(
        "  component sizes: pools {}, hypercube {}, MSMQ {}",
        model.pools().len(),
        model.hypercube().len(),
        model.msmq().len()
    );

    let mrp = model.build_md_mrp_with_reward(TandemReward::Availability)?;
    println!(
        "  reachable states: {} ({} MD nodes, built in {:?})",
        mrp.num_states(),
        mrp.matrix().md().num_nodes(),
        t0.elapsed()
    );

    let t1 = std::time::Instant::now();
    let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp)?;
    println!(
        "  lumped states:    {} (x{:.1} in {:?})",
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        t1.elapsed()
    );
    for l in &result.stats.per_level {
        println!(
            "    level {}: {} -> {} local states",
            l.level + 1,
            l.original_size,
            l.lumped_size
        );
    }

    // Solve the lumped chain for each reward structure; for the measures
    // other than availability, rebuild the lumped MRP with that reward by
    // re-lumping (rewards constrain the partitions, so each reward gets
    // its own lump).
    let opts = SolverOptions {
        tolerance: 1e-12,
        ..SolverOptions::default()
    };
    let availability = result.mrp.expected_stationary_reward(&opts)?;
    println!("  steady-state availability (< 2 servers down): {availability:.6}");

    let throughput_mrp = model.build_md_mrp_with_reward(TandemReward::Throughput)?;
    let throughput_lump = LumpRequest::new(LumpKind::Ordinary).run(&throughput_mrp)?;
    let throughput = throughput_lump.mrp.expected_stationary_reward(&opts)?;
    println!(
        "  hypercube throughput: {throughput:.6} jobs/time  (lumped to {} states)",
        throughput_lump.stats.lumped_states
    );

    let qlen_mrp = model.build_md_mrp_with_reward(TandemReward::MsmqQueueLength)?;
    let qlen_lump = LumpRequest::new(LumpKind::Ordinary).run(&qlen_mrp)?;
    let qlen = qlen_lump.mrp.expected_stationary_reward(&opts)?;
    println!(
        "  mean MSMQ queue length: {qlen:.6}  (lumped to {} states)",
        qlen_lump.stats.lumped_states
    );

    // On chains this size we can still afford the cross-check against the
    // unlumped solve.
    if mrp.num_states() <= 600_000 {
        let full = mrp.expected_stationary_reward(&opts)?;
        println!(
            "  cross-check vs unlumped solve: |Δ availability| = {:.3e}",
            (full - availability).abs()
        );
    }

    Ok(())
}
